//! Cross-crate integration test: the full bursty-document search pipeline on
//! the synthetic Topix corpus — generation, mining, indexing, Threshold
//! Algorithm retrieval, and precision against the generator's ground truth.

use std::collections::HashSet;

use stburst::core::{STComb, STCombConfig, STLocal, STLocalConfig};
use stburst::datagen::{TopixConfig, TopixCorpus};
use stburst::search::{BurstySearchEngine, EngineConfig, Query};

fn corpus() -> TopixCorpus {
    TopixCorpus::generate(TopixConfig::small())
}

/// Index of a localized event (15: Tsvangirai / Zimbabwe) — small enough to
/// mine quickly in debug builds.
const EVENT_IDX: usize = 14;

#[test]
fn stcomb_backed_search_finds_relevant_documents() {
    let corpus = corpus();
    let collection = corpus.collection();
    let query = corpus.query_terms(EVENT_IDX).to_vec();
    let relevant: HashSet<_> = corpus.relevant_docs(EVENT_IDX).clone();
    assert!(!relevant.is_empty());

    let miner = STComb::with_config(STCombConfig {
        min_interval_score: 0.2,
        ..Default::default()
    });
    let mut engine = BurstySearchEngine::new(collection, EngineConfig::default());
    for &term in &query {
        engine.set_patterns(term, &miner.mine_collection(collection, term));
    }
    let hits = engine
        .query(&Query::terms(query.iter().copied()).top_k(10))
        .unwrap()
        .results;
    assert!(!hits.is_empty(), "the engine returned no documents");
    let precision =
        hits.iter().filter(|h| relevant.contains(&h.doc)).count() as f64 / hits.len() as f64;
    assert!(
        precision >= 0.8,
        "precision@{} = {precision} is below 0.8",
        hits.len()
    );
}

#[test]
fn stlocal_backed_search_focuses_on_the_epicenter_region() {
    let corpus = corpus();
    let collection = corpus.collection();
    let event = &corpus.events()[EVENT_IDX];
    let query = corpus.query_terms(EVENT_IDX).to_vec();

    let mut engine = BurstySearchEngine::new(collection, EngineConfig::default());
    for &term in &query {
        let (patterns, _) = STLocal::mine_collection(collection, term, STLocalConfig::default());
        assert!(
            !patterns.is_empty(),
            "STLocal found no patterns for the event term"
        );
        engine.set_patterns(term, &patterns);
    }
    let hits = engine
        .query(&Query::terms(query.iter().copied()).top_k(10))
        .unwrap()
        .results;
    assert!(!hits.is_empty());

    // Every returned document must mention the query term and fall inside
    // the event's burst period (including the local-coverage tail).
    for hit in &hits {
        let doc = collection.document(hit.doc);
        assert!(query.iter().any(|&t| doc.freq(t) > 0));
        assert!(doc.timestamp >= event.start_week);
        assert!(doc.timestamp <= event.start_week + 2 * event.duration_weeks);
    }
}

#[test]
fn results_are_ranked_and_deterministic() {
    let corpus = corpus();
    let collection = corpus.collection();
    let query = corpus.query_terms(EVENT_IDX).to_vec();
    let miner = STComb::new();
    let mut engine = BurstySearchEngine::new(collection, EngineConfig::default());
    for &term in &query {
        engine.set_patterns(term, &miner.mine_collection(collection, term));
    }
    let a = engine
        .query(&Query::terms(query.iter().copied()).top_k(10))
        .unwrap()
        .results;
    let b = engine
        .query(&Query::terms(query.iter().copied()).top_k(10))
        .unwrap()
        .results;
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.doc, y.doc);
        assert_eq!(x.score, y.score);
    }
    for w in a.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
}
