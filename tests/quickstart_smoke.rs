//! Smoke test mirroring `examples/quickstart.rs` end-to-end, then extending
//! it through the search engine: build a collection, mine STComb and
//! STLocal patterns, and retrieve the bursty documents — the full
//! datagen → mine → search path of the public API.

use std::collections::HashMap;

use stburst::core::{Pattern, STComb, STLocal, STLocalConfig};
use stburst::corpus::{CollectionBuilder, StreamId};
use stburst::datagen::{GeneratorConfig, PatternGenerator, StreamSelection};
use stburst::geo::GeoPoint;
use stburst::search::{BurstySearchEngine, EngineConfig, Query};

/// The quickstart scenario: five city streams, 30 days, an earthquake burst
/// injected into the two Costa Rican cities on days 12–16.
fn quickstart_collection() -> (
    stburst::corpus::Collection,
    stburst::corpus::TermId,
    Vec<StreamId>,
) {
    let mut builder = CollectionBuilder::new(30);
    let quake = builder.dict_mut().intern("earthquake");
    let weather = builder.dict_mut().intern("weather");

    let cities = [
        ("San Jose (CR)", 9.9, -84.1),
        ("Alajuela (CR)", 10.0, -84.2),
        ("Lima", -12.0, -77.0),
        ("Athens", 38.0, 23.7),
        ("Tokyo", 35.7, 139.7),
    ];
    let streams: Vec<StreamId> = cities
        .iter()
        .map(|(name, lat, lon)| builder.add_stream(name, GeoPoint::new(*lat, *lon)))
        .collect();

    for day in 0..30 {
        for &s in &streams {
            let mut counts = HashMap::new();
            counts.insert(weather, 5);
            if day % 9 == 0 {
                counts.insert(quake, 1);
            }
            builder.add_document(s, day, counts);
        }
    }
    for day in 12..=16 {
        for &s in &streams[..2] {
            let mut counts = HashMap::new();
            counts.insert(quake, 25);
            builder.add_document(s, day, counts);
        }
    }
    (builder.build(), quake, streams)
}

#[test]
fn quickstart_pipeline_finds_the_event_and_ranks_its_documents_first() {
    let (collection, quake, streams) = quickstart_collection();

    // STComb recovers a combinatorial pattern covering both Costa Rican
    // streams somewhere inside the injected window.
    let comb = STComb::new().mine_collection(&collection, quake);
    assert!(!comb.is_empty(), "STComb found no pattern");
    let top = &comb[0];
    assert!(top.streams.contains(&streams[0]) && top.streams.contains(&streams[1]));
    assert!(
        top.timeframe.start >= 10 && top.timeframe.end <= 18,
        "timeframe {:?} should be near the injected days 12..=16",
        top.timeframe
    );

    // STLocal finds a regional pattern whose top result overlaps San Jose
    // during the event but not Tokyo.
    let (regional, _stats) = STLocal::mine_collection(&collection, quake, STLocalConfig::default());
    assert!(!regional.is_empty(), "STLocal found no pattern");
    let best = &regional[0];
    assert!(best.score > 0.0);
    assert!(
        best.overlaps(streams[0], 14),
        "San Jose day 14 must overlap"
    );
    assert!(
        !best.overlaps(streams[4], 14),
        "Tokyo day 14 must not overlap"
    );

    // Search: register the mined patterns and query for "earthquake". Every
    // top-ranked hit must be an event document (Costa Rica, days 12..=16).
    let mut engine = BurstySearchEngine::new(&collection, EngineConfig::default());
    engine.set_patterns(quake, &comb);
    let hits = engine
        .query(&Query::terms([quake]).top_k(5))
        .unwrap()
        .results;
    assert!(!hits.is_empty(), "search returned no hits");
    for hit in &hits {
        let doc = collection.document(hit.doc);
        assert!(hit.score > 0.0);
        assert!(
            doc.stream == streams[0] || doc.stream == streams[1],
            "top hit from unexpected stream {:?}",
            doc.stream
        );
        assert!(
            (12..=16).contains(&doc.timestamp),
            "top hit outside event window"
        );
    }
}

#[test]
fn synthetic_datagen_feeds_the_miners() {
    // datagen → mine: a generated dataset's strongest injected pattern is
    // recovered by STComb on the merged per-stream series.
    let config = GeneratorConfig {
        n_streams: 40,
        timeline: 90,
        n_terms: 20,
        n_patterns: 6,
        selection: StreamSelection::DistGen {
            decay_fraction: 0.08,
        },
        seed: 2012,
        ..Default::default()
    };
    let dataset = PatternGenerator::generate(config);
    let term = dataset.patterned_terms()[0];
    let series: Vec<(StreamId, Vec<f64>)> = (0..dataset.n_streams())
        .map(|s| (StreamId(s as u32), dataset.series(term, s)))
        .collect();
    let mined = STComb::new().mine_series(&series);
    assert!(!mined.is_empty(), "no patterns mined from synthetic data");

    // At least one mined pattern overlaps a ground-truth pattern of the term
    // in both time and stream membership.
    let truths = dataset.patterns_of_term(term);
    let recovered = mined.iter().any(|p| {
        truths.iter().any(|&pid| {
            let truth = &dataset.patterns()[pid];
            let time_overlap =
                p.timeframe.start <= truth.interval.end && truth.interval.start <= p.timeframe.end;
            let stream_overlap = p
                .streams
                .iter()
                .any(|s| truth.streams.contains(&(s.index())));
            time_overlap && stream_overlap
        })
    });
    assert!(
        recovered,
        "no mined pattern matches any injected ground truth"
    );
}
