//! Integration tests asserting the qualitative findings of the paper's
//! evaluation at a miniature scale, so the key experimental claims are
//! continuously checked by `cargo test --workspace`.

use stburst::core::{STComb, STCombConfig, STLocal, STLocalConfig};
use stburst::datagen::{TopixConfig, TopixCorpus};
use stburst::geo::Mbr;

fn corpus() -> TopixCorpus {
    TopixCorpus::generate(TopixConfig::small())
}

/// Section 6.2 / Table 1: for a *global* event both miners report patterns
/// spanning a large share of the available sources.
#[test]
fn global_events_cover_most_of_the_world() {
    let corpus = corpus();
    let collection = corpus.collection();
    // Event 5 (index 4): the swine-flu pandemic.
    let term = corpus.query_terms(4)[0];

    let comb = STComb::with_config(STCombConfig {
        min_interval_score: 0.2,
        ..Default::default()
    })
    .top_pattern(collection, term)
    .expect("a global event must produce a combinatorial pattern");
    assert!(
        comb.n_streams() > collection.n_streams() / 2,
        "STComb covered only {}/{} countries for a global event",
        comb.n_streams(),
        collection.n_streams()
    );

    let (local, _) = STLocal::mine_collection(collection, term, STLocalConfig::default());
    let top = local.first().expect("a regional pattern must exist");
    assert!(
        top.n_streams() > collection.n_streams() / 2,
        "STLocal covered only {}/{} countries for a global event",
        top.n_streams(),
        collection.n_streams()
    );
}

/// Section 6.2 / Table 1: for a *localized* event the regional pattern stays
/// small while the MBR of the combinatorial pattern spans a large part of
/// the map.
#[test]
fn localized_events_stay_local_for_stlocal() {
    let corpus = corpus();
    let collection = corpus.collection();
    // Event 16 (index 15): Rajoelina / Madagascar.
    let term = corpus.query_terms(15)[0];
    let n = collection.n_streams();

    let (local, _) = STLocal::mine_collection(collection, term, STLocalConfig::default());
    let top_local = local.first().expect("a regional pattern must exist");
    assert!(
        top_local.n_streams() < n / 3,
        "STLocal reported {}/{} countries for a localized event",
        top_local.n_streams(),
        n
    );

    let comb = STComb::with_config(STCombConfig {
        min_interval_score: 0.2,
        ..Default::default()
    })
    .top_pattern(collection, term)
    .expect("a combinatorial pattern must exist");
    let positions = collection.positions();
    let mbr = Mbr::from_points(comb.streams.iter().map(|s| positions[s.index()]));
    let mbr_count = mbr.count_contained(&positions);
    assert!(
        mbr_count > top_local.n_streams(),
        "the MBR of the STComb pattern ({mbr_count}) should exceed the STLocal count ({})",
        top_local.n_streams()
    );
}

/// Figures 5 and 6: the per-term bookkeeping of STLocal stays far below the
/// worst-case bounds (few bursty rectangles per timestamp, few open
/// windows).
#[test]
fn stlocal_bookkeeping_is_far_below_worst_case() {
    let corpus = corpus();
    let collection = corpus.collection();
    let term = corpus.query_terms(9)[0]; // piracy
    let (_, stats) = STLocal::mine_collection(collection, term, STLocalConfig::default());

    let n = collection.n_streams();
    let avg_rects = stats.rectangles_per_timestamp.iter().sum::<usize>() as f64
        / stats.rectangles_per_timestamp.len() as f64;
    assert!(
        avg_rects < 3.0,
        "average rectangles per timestamp {avg_rects} is not far below n = {n}"
    );
    let max_open = stats
        .open_windows_per_timestamp
        .iter()
        .max()
        .copied()
        .unwrap_or(0);
    assert!(
        max_open < n,
        "open windows ({max_open}) should stay far below the worst-case bound"
    );
}

/// Section 6.2.1 / Figure 4: reported timeframes are plausible — within the
/// timeline and no longer than a few times the nominal event duration.
#[test]
fn reported_timeframes_are_within_the_timeline() {
    let corpus = corpus();
    let collection = corpus.collection();
    for event_idx in [13usize, 16] {
        for &term in corpus.query_terms(event_idx) {
            let (patterns, _) =
                STLocal::mine_collection(collection, term, STLocalConfig::default());
            for p in patterns.iter().take(3) {
                assert!(p.timeframe.end < collection.timeline_len());
            }
        }
    }
}
