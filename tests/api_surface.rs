//! Public-API surface snapshot: exercises every documented entry point of
//! the facade so that a future signature change fails *this* test (and CI)
//! instead of silently breaking downstream callers. Keep additions here in
//! lockstep with README/ARCHITECTURE — a deliberate API break should edit
//! this file in the same commit.
//!
//! The test is mostly compile-pass: the assertions are deliberately light,
//! the point is that the names, signatures, field sets, and trait bounds
//! below keep existing.

use std::collections::HashMap;
use std::sync::Arc;

use stburst::core::{
    CombinatorialPattern, Pattern, PatternGeometry, PatternSource, RegionalPattern, STComb,
    STCombConfig, STLocal, STLocalConfig, TB,
};
use stburst::corpus::{Collection, CollectionBuilder, DocId, StreamId, TermId, Tokenizer};
use stburst::geo::{GeoPoint, Mbr, Point2D, Rect};
use stburst::ingest::{
    replay_tsv, replay_tsv_durable, Backpressure, Durability, DurabilityState, HealthReport,
    IngestConfig, IngestError, IngestPipeline, MinerKind, PatternDelta, PipelineMetrics,
    QuarantineReason, QuarantinedDoc, RecoveryReport, RetryPolicy, SearchHandle, StageOutcome,
    StoreError, TickReceipt,
};
use stburst::search::{
    shard_of, threshold_topk, threshold_topk_with_stats, BurstinessAgg, BurstySearchEngine,
    DocExplanation, EngineConfig, EngineMetrics, EpochCell, InvertedIndex, NoPatternPolicy,
    PatternMatch, Posting, Query, QueryCache, QueryError, QueryKey, QueryResponse, QueryStats,
    Relevance, SearchResult, ServingFront, ShardedEngine, TermExplanation, TopkStats, UnknownWords,
    DEFAULT_CACHE_CAPACITY, DEFAULT_SHARDS, DEFAULT_TOP_K,
};
use stburst::timeseries::TimeInterval;

fn tiny_collection() -> (Collection, TermId, StreamId) {
    let mut b = CollectionBuilder::new(4);
    let term = b.dict_mut().intern("storm");
    let stream = b.add_stream("Athens", GeoPoint::new(38.0, 23.7));
    for ts in 0..4 {
        b.add_document(
            stream,
            ts,
            HashMap::from([(term, if ts == 2 { 9 } else { 1 })]),
        );
    }
    (b.build(), term, stream)
}

/// The typed query DSL: every builder method, the response shape, and the
/// structured error set.
#[test]
fn query_dsl_surface() {
    let (collection, term, stream) = tiny_collection();
    let mut engine = BurstySearchEngine::new(&collection, EngineConfig::default());
    let pattern = CombinatorialPattern::new(vec![stream], TimeInterval::new(1, 3), 2.0, vec![]);
    engine.set_patterns(term, &[pattern]);
    engine.finalize();

    // Every documented builder method, chained.
    let query: Query = Query::terms([term])
        .time_window(0..=3)
        .region(Rect::new(20.0, 30.0, 30.0, 45.0))
        .top_k(5)
        .relevance(Relevance::LogFreq)
        .unknown_words(UnknownWords::Error)
        .explain(true);
    assert!(query.is_filtered());

    let response: QueryResponse = engine.query(&query).unwrap();
    let _results: &Vec<SearchResult> = &response.results;
    let stats: QueryStats = response.stats;
    let _: (bool, bool, usize, usize, usize, bool) = (
        stats.cache_hit,
        stats.served_from_prebuilt,
        stats.postings_scanned,
        stats.candidates_pruned,
        stats.terms,
        stats.filtered,
    );
    for explanation in &response.explanations {
        let _: &DocExplanation = explanation;
        let _: (DocId, f64) = (explanation.doc, explanation.total);
        for te in &explanation.terms {
            let _: &TermExplanation = te;
            let _: (TermId, f64, Option<f64>, f64) =
                (te.term, te.relevance, te.burstiness, te.contribution);
            for pm in &te.patterns {
                let _: &PatternMatch = pm;
                let _: (TimeInterval, Option<Rect>, f64) = (pm.interval, pm.region, pm.score);
            }
        }
    }

    // Text queries and the batch entry point.
    let _ = engine.query(&Query::text("storm").top_k(DEFAULT_TOP_K));
    let batch: Vec<Result<QueryResponse, QueryError>> =
        engine.query_many(&[Query::terms([term]), Query::text("storm")]);
    assert_eq!(batch.len(), 2);

    // The structured error set is matchable (non-exhaustively).
    let err = engine.query(&Query::terms([] as [TermId; 0])).unwrap_err();
    match err {
        QueryError::EmptyQuery
        | QueryError::ZeroTopK
        | QueryError::UnknownWord { .. }
        | QueryError::EmptyTimeWindow { .. }
        | QueryError::InvalidRegion { .. } => {}
        _ => {} // #[non_exhaustive]
    }
    let _: String = err.to_string();
}

/// Engine lifecycle: construction, pattern registration, finalize, cache,
/// live updates, and the consolidated metrics surface.
#[test]
fn engine_surface() {
    let (collection, term, stream) = tiny_collection();
    let config: EngineConfig = EngineConfig::builder()
        .relevance(Relevance::TfIdf)
        .aggregation(BurstinessAgg::Max)
        .no_pattern(NoPatternPolicy::Zero)
        .build();
    let shared: Arc<Collection> = Arc::new(collection);
    let mut engine = BurstySearchEngine::new(Arc::clone(&shared), config);
    let _: &EngineConfig = engine.config();
    let _: &Arc<Collection> = engine.collection();

    // All three registration paths: typed slice, trait-object-free generic,
    // and a whole `PatternSource`.
    let comb = CombinatorialPattern::new(vec![stream], TimeInterval::new(0, 3), 1.0, vec![]);
    let regional = RegionalPattern::new(
        Rect::new(20.0, 35.0, 30.0, 40.0),
        vec![stream],
        TimeInterval::new(0, 3),
        1.0,
    );
    engine.set_patterns(term, std::slice::from_ref(&comb));
    engine.set_patterns(term, &[regional]);
    let source: Vec<(TermId, Vec<CombinatorialPattern>)> = vec![(term, vec![comb])];
    engine.set_patterns_from(&source);

    engine.set_cache_capacity(DEFAULT_CACHE_CAPACITY);
    engine.finalize_with_threads(2);
    assert!(engine.is_finalized());
    let _: Option<&InvertedIndex> = engine.prebuilt_index();
    let _: usize = engine.doc_freq(term);
    let _: Option<f64> = engine.document_burstiness(term, DocId(0));
    engine.refresh_term(term);
    engine.update_collection(Arc::clone(&shared), &[]);

    let metrics: EngineMetrics = engine.metrics();
    let _: (u64, u64, usize, usize) = (
        metrics.cache_hits,
        metrics.cache_misses,
        metrics.cache_len,
        metrics.cache_capacity,
    );
    let _: (bool, usize, usize) = (
        metrics.finalized,
        metrics.indexed_terms,
        metrics.indexed_postings,
    );
    let _: (u64, Option<f64>, u64, usize) = (
        metrics.finalize_count,
        metrics.last_finalize_ms,
        metrics.term_rescore_count,
        metrics.n_docs,
    );
}

/// The deprecated legacy trio keeps compiling against its old signatures.
#[test]
#[allow(deprecated)]
fn legacy_shim_surface() {
    let (collection, term, stream) = tiny_collection();
    let mut engine = BurstySearchEngine::new(&collection, EngineConfig::default());
    engine.set_patterns(
        term,
        &[CombinatorialPattern::new(
            vec![stream],
            TimeInterval::new(1, 3),
            2.0,
            vec![],
        )],
    );
    let _: Vec<SearchResult> = engine.search(&[term], 3);
    let _: Vec<Vec<SearchResult>> = engine.search_many(&[vec![term]], 3);
    let _: Vec<SearchResult> = engine.search_text("storm", 3);
    let _: u64 = engine.cache_hits();
    let _: u64 = engine.cache_misses();
    let _: usize = engine.cache_len();
}

/// Index + threshold layer: the retrieval primitives under the engine.
#[test]
fn retrieval_surface() {
    let mut idx = InvertedIndex::new();
    idx.insert(TermId(0), DocId(0), 1.5);
    idx.set_postings(
        TermId(1),
        vec![Posting {
            doc: DocId(0),
            score: 2.0,
        }],
    );
    idx.finalize();
    let _: &[Posting] = idx.postings(TermId(0));
    let _: Option<f64> = idx.score(TermId(0), DocId(0));
    let (_, n) = (idx.n_terms(), idx.n_postings());
    assert!(n >= 1);

    let query = [TermId(0), TermId(1)];
    let _: Vec<SearchResult> = threshold_topk(&idx, &query, 2, NoPatternPolicy::Zero);
    let (_, stats): (Vec<SearchResult>, TopkStats) =
        threshold_topk_with_stats(&idx, &query, 2, NoPatternPolicy::Zero);
    let _: (usize, usize) = (stats.postings_scanned, stats.candidates_pruned);

    // The cache key canonicalization is public (used by cache-aware tests).
    let _: QueryKey = QueryKey::new(&query, 2, EngineConfig::default());
    let _: QueryKey = QueryKey::canonical(
        &query,
        2,
        EngineConfig::default(),
        Some(TimeInterval::new(0, 3)),
        Some(Rect::new(0.0, 0.0, 1.0, 1.0)),
    );
}

/// Pattern traits: overlap, geometry, and source plumbing shared by miners
/// and the engine.
#[test]
fn pattern_surface() {
    let comb = CombinatorialPattern::new(
        vec![StreamId(0), StreamId(1)],
        TimeInterval::new(2, 5),
        1.0,
        vec![],
    );
    let regional = RegionalPattern::new(
        Rect::new(0.0, 0.0, 1.0, 1.0),
        vec![StreamId(0)],
        TimeInterval::new(2, 5),
        1.0,
    );
    // Pattern: overlap semantics.
    assert!(comb.overlaps(StreamId(0), 2));
    let _: (&[StreamId], TimeInterval, f64) = (comb.streams(), comb.timeframe(), comb.score());
    // PatternGeometry: unified interval/region accessors.
    let positions = vec![Point2D::new(0.0, 0.0), Point2D::new(1.0, 1.0)];
    let _: TimeInterval = comb.interval();
    let _: Option<Rect> = comb.region(&positions);
    assert_eq!(regional.region(&[]), Some(regional.rect));
    // PatternSource: both canonical shapes.
    let as_vec: Vec<(TermId, Vec<CombinatorialPattern>)> = vec![(TermId(0), vec![comb.clone()])];
    let as_map: HashMap<TermId, Vec<CombinatorialPattern>> = as_vec.iter().cloned().collect();
    assert_eq!(as_vec.terms(), as_map.terms());
    let _: &[CombinatorialPattern] = as_vec.term_patterns(TermId(0));
    // Mbr: the geometry used for combinatorial regions.
    let _: Option<Rect> = Mbr::from_points(positions).rect();
}

/// Miners still construct and mine through their documented entry points.
#[test]
fn miner_surface() {
    let (collection, term, _) = tiny_collection();
    let _: Vec<CombinatorialPattern> = STComb::new().mine_collection(&collection, term);
    let _: Vec<CombinatorialPattern> =
        STComb::with_config(STCombConfig::default()).mine_collection(&collection, term);
    let (_, _stats) = STLocal::mine_collection(&collection, term, STLocalConfig::default());
    let _: Vec<CombinatorialPattern> = TB::new().mine_collection(&collection, term);
}

/// Live serving: pipeline construction, staging, commits, and the typed
/// query DSL through a `SearchHandle`.
#[test]
fn ingest_surface() {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: 4,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        engine: EngineConfig::default(),
        cache_capacity: 16,
        n_shards: DEFAULT_SHARDS,
        durability: Durability::Buffered,
        checkpoint_every_ticks: 0,
        retry: RetryPolicy::default(),
        max_buffered_ticks: 64,
        max_staged_docs: 0,
        backpressure: Backpressure::Block,
        max_terms_per_doc: 0,
        max_quarantined_docs: 1024,
    });
    let stream = pipeline.add_stream("Athens", GeoPoint::new(38.0, 23.7));
    let term = pipeline.intern("storm");
    let tokenizer = Tokenizer::new();
    pipeline.stage_document(stream, HashMap::from([(term, 5)]));
    pipeline.stage_text_document(stream, "storm warning", &tokenizer);
    let receipt: TickReceipt = pipeline.commit_tick();
    for delta in &receipt.deltas {
        let _: (TermId, usize) = (delta.term(), delta.n_patterns());
        match delta {
            PatternDelta::Regional { .. } | PatternDelta::Combinatorial { .. } => {}
        }
    }
    let _: DurabilityState = receipt.durability;
    let metrics: PipelineMetrics = pipeline.metrics();
    let _: (usize, u64) = (metrics.ticks_committed, metrics.docs_ingested);

    // Overload protection and poison-document quarantine.
    let _: Result<StageOutcome, IngestError> =
        pipeline.try_stage_document(stream, HashMap::from([(term, 1)]));
    match pipeline.try_stage_document(StreamId(999), HashMap::from([(term, 1)])) {
        Ok(StageOutcome::Quarantined(QuarantineReason::UnknownStream)) => {}
        other => panic!("expected quarantine, got {other:?}"),
    }
    let quarantined: Vec<&QuarantinedDoc> = pipeline.quarantine_log().collect();
    assert_eq!(quarantined.len(), 1);
    let health: HealthReport = pipeline.health();
    let _: (DurabilityState, usize, u64) = (
        health.durability,
        health.staged_docs,
        health.quarantined_total,
    );

    let handle: SearchHandle = pipeline.search_handle();
    let _: HealthReport = handle.health();
    let _: Result<QueryResponse, QueryError> =
        handle.query(&Query::terms([term]).time_window(0..=3));
    let _: Vec<Result<QueryResponse, QueryError>> = handle.query_many(&[Query::terms([term])]);
    let _: u64 = handle.generation();
    let _: Arc<Collection> = handle.collection();
    let _: EngineMetrics = handle.metrics();

    // TSV replay still accepts a reader + config.
    let data = "C\t2\nS\t0\tAthens\t38.0\t23.7\t23.7\t38.0\nD\t0\t1\tstorm:3\n";
    let replayed = replay_tsv(std::io::Cursor::new(data), IngestConfig::default()).unwrap();
    assert_eq!(replayed.ticks_committed(), 2);
}

/// The sharded lock-free serving tier: epoch cells, shard routing, the
/// read front, the write-side sharded engine, and the thread-safety bounds
/// the whole design rests on.
#[test]
fn serving_tier_surface() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EpochCell<Vec<u64>>>();
    assert_send_sync::<ServingFront>();
    assert_send_sync::<ShardedEngine>();
    assert_send_sync::<SearchHandle>();
    assert_send_sync::<QueryCache>();

    // EpochCell: the publication primitive — readers load, writers store.
    let cell: EpochCell<u64> = EpochCell::new(Arc::new(7));
    let snapshot: Arc<u64> = cell.load();
    assert_eq!(*snapshot, 7);
    cell.store(Arc::new(8));
    let _: u64 = cell.epoch();
    let _: usize = cell.reclaimable();

    // Term-hash shard routing is public and total over shard counts.
    assert!(shard_of(TermId(42), DEFAULT_SHARDS) < DEFAULT_SHARDS);
    assert_eq!(shard_of(TermId(42), 1), 0);

    // ShardedEngine: the write side mirrors BurstySearchEngine's mutation
    // surface and publishes generations; the front is the shared read side.
    let (collection, term, stream) = tiny_collection();
    let mut engine = ShardedEngine::new(collection, EngineConfig::default(), DEFAULT_SHARDS, 16);
    let pattern = CombinatorialPattern::new(vec![stream], TimeInterval::new(1, 3), 2.0, vec![]);
    engine.set_patterns(term, std::slice::from_ref(&pattern));
    let source: Vec<(TermId, Vec<CombinatorialPattern>)> = vec![(term, vec![pattern])];
    engine.set_patterns_from(&source);
    engine.refresh_term(term);
    engine.finalize_with_threads(1);
    engine.publish();
    assert_eq!(engine.n_shards(), DEFAULT_SHARDS);
    let _: u64 = engine.generation();
    let _: &BurstySearchEngine = engine.engine();
    let _: EngineMetrics = engine.metrics();

    let front: Arc<ServingFront> = engine.front();
    let _: Result<QueryResponse, QueryError> = front.query(&Query::terms([term]));
    let _: Vec<Result<QueryResponse, QueryError>> = front.query_many(&[Query::terms([term])]);
    let _: (u64, usize) = (front.generation(), front.n_shards());
    let _: Arc<Collection> = front.collection();
    let _: EngineConfig = front.config();
    let _: EngineMetrics = front.metrics();
    let _: Option<f64> = front.document_burstiness(term, DocId(0));

    // Generation-tagged cache entries: the read path's consistency gate.
    let cache = QueryCache::new(4);
    let key = QueryKey::new(&[term], 2, EngineConfig::default());
    cache.put_tagged(key.clone(), Vec::new(), 3, || true);
    assert!(cache.get_at(&key, 2).is_none()); // newer than the reader
    assert!(cache.get_at(&key, 3).is_some());
    let _: (u64, u64) = (cache.hits(), cache.misses());
}

/// Standing subscriptions: registration options, the handle's consumption
/// surface, the diff vocabulary, registry introspection, and the
/// thread-safety bounds that let handles cross threads.
#[test]
fn subscribe_surface() {
    use stburst::subscribe::{
        NotifyReport, OverflowPolicy, Reranked, ResultDiff, SubscribeMetrics, SubscriptionHandle,
        SubscriptionId, SubscriptionInfo, SubscriptionOptions, SubscriptionRegistry, Trigger,
    };

    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SubscriptionRegistry>();
    assert_send_sync::<SubscriptionHandle>();
    assert_send_sync::<ResultDiff>();
    assert_send_sync::<SubscriptionOptions>();

    // Options: the literal field set and every builder method.
    let options = SubscriptionOptions {
        capacity: 8,
        overflow: OverflowPolicy::Block,
        notify_initial: false,
        notify_unchanged: false,
    };
    let options = options
        .capacity(16)
        .overflow(OverflowPolicy::CoalesceLatest)
        .notify_initial(true)
        .notify_unchanged(false);
    match options.overflow {
        OverflowPolicy::Block | OverflowPolicy::CoalesceLatest | OverflowPolicy::DropCounted => {}
    }

    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: 8,
        ..IngestConfig::default()
    });
    let stream = pipeline.add_stream("Athens", GeoPoint::new(38.0, 23.7));
    let term = pipeline.intern("storm");

    // Registration through both entry points: the cloneable handle and the
    // pipeline itself. Both delegate to the same registry.
    let search: SearchHandle = pipeline.search_handle();
    let sub: SubscriptionHandle = search
        .subscribe(&Query::terms([term]).top_k(3), options)
        .unwrap();
    let _: SubscriptionHandle = pipeline
        .subscribe(
            &Query::terms([term]).top_k(3),
            SubscriptionOptions::default(),
        )
        .unwrap();
    let registry: &Arc<SubscriptionRegistry> = search.subscriptions();
    assert_eq!(registry.len(), 2);
    assert!(!registry.is_empty());

    // Handle surface: identity, consumption, channel counters, lifecycle.
    let _: SubscriptionId = sub.id();
    let _: &QueryKey = sub.key();
    let clone: SubscriptionHandle = sub.clone();
    let _: Option<ResultDiff> = clone.try_recv();
    let _: Option<ResultDiff> = sub.recv_timeout(std::time::Duration::ZERO);
    let _: usize = sub.pending();
    let _: (u64, u64, u64) = (sub.delivered(), sub.dropped(), sub.coalesced());
    assert!(!sub.is_closed());

    // A committed burst flows through as a `ResultDiff`.
    for tick in 0..8u32 {
        pipeline.stage_document(
            stream,
            HashMap::from([(term, if (3..6).contains(&tick) { 25 } else { 1 })]),
        );
        pipeline.commit_tick();
    }
    let diffs: Vec<ResultDiff> = sub.drain();
    assert!(!diffs.is_empty());
    for diff in &diffs {
        let _: (SubscriptionId, Option<u64>, u64, u64) = (
            diff.subscription,
            diff.tick,
            diff.generation,
            diff.coalesced,
        );
        let _: (&Vec<SearchResult>, &Vec<SearchResult>) = (&diff.previous, &diff.current);
        let _: (&Vec<SearchResult>, &Vec<SearchResult>) = (&diff.entered, &diff.left);
        for r in &diff.reranked {
            let _: &Reranked = r;
            let _: (DocId, usize, usize, f64, f64) =
                (r.doc, r.previous_rank, r.rank, r.previous_score, r.score);
        }
        for trigger in &diff.triggers {
            let _: &Trigger = trigger;
            let _: TermId = trigger.term;
            assert!(!trigger.patterns.is_empty());
        }
        let _: bool = diff.is_unchanged();
    }

    // Registry introspection: per-subscription info and global counters.
    for info in registry.subscriptions() {
        let _: SubscriptionInfo = info.clone();
        let _: String = info.key.describe();
        let _: (usize, u64, u64, u64) =
            (info.pending, info.delivered, info.dropped, info.coalesced);
    }
    let metrics: SubscribeMetrics = registry.metrics();
    assert!(metrics.active >= 1);
    assert!(metrics.notifications >= 1);
    let _: (u64, u64, u64, u64) = (
        metrics.registered_total,
        metrics.evaluations,
        metrics.eval_errors,
        metrics.dropped,
    );
    let _: NotifyReport = NotifyReport::default();

    // The pipeline health report carries the subscription counters.
    let health = pipeline.health();
    let _: (usize, u64, u64) = (
        health.subscriptions,
        health.notifications,
        health.notifications_dropped,
    );

    // Unsubscribing through the registry detaches the standing query.
    assert!(registry.unsubscribe(sub.id()));
    drop(sub);
}

/// Observability: the metrics registry, histogram, tracing, and slow-query
/// vocabulary, plus the pipeline/engine attachment points and the
/// thread-safety bounds the lock-free recording path rests on.
#[test]
fn obs_surface() {
    use stburst::ingest::{PipelineObs, PipelineObsConfig};
    use stburst::obs::{
        Counter, Gauge, HistogramSnapshot, LatencyHistogram, ObsRegistry, ObsSnapshot, Sampler,
        SlowQueryLog, SlowQueryRecord, SpanClock, SpanKind, SpanRecord, TraceId, TraceKind,
        TraceRecord, TraceRing,
    };
    use stburst::search::{SearchObs, SearchObsConfig};
    use stburst::store::WalObs;

    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ObsRegistry>();
    assert_send_sync::<Counter>();
    assert_send_sync::<Gauge>();
    assert_send_sync::<LatencyHistogram>();
    assert_send_sync::<TraceRing>();
    assert_send_sync::<SlowQueryLog>();
    assert_send_sync::<Sampler>();
    assert_send_sync::<SearchObs>();
    assert_send_sync::<PipelineObs>();

    // Registry: get-or-create handles, cell adoption, snapshot, exposition.
    let registry = Arc::new(ObsRegistry::new());
    let counter: Arc<Counter> = registry.counter("api_total");
    counter.inc();
    counter.add(2);
    assert_eq!(counter.get(), 3);
    registry.adopt_counter("api_adopted", Arc::clone(&counter));
    let gauge: Arc<Gauge> = registry.gauge("api_gauge");
    gauge.set(1.5);
    assert_eq!(gauge.get(), 1.5);
    let hist: Arc<LatencyHistogram> = registry.histogram("api_ns");
    hist.record(1_000);
    hist.record_duration(std::time::Duration::from_micros(5));
    assert_eq!(hist.count(), 2);

    let snap: ObsSnapshot = registry.snapshot();
    assert_eq!(snap.counter("api_total"), Some(3));
    assert_eq!(snap.gauge("api_gauge"), Some(1.5));
    let h: &HistogramSnapshot = snap.histogram("api_ns").unwrap();
    let _: (u64, u64, u64, u64, f64) = (h.count(), h.sum(), h.min(), h.max(), h.mean());
    let _: (u64, u64, u64, u64) = (h.p50(), h.p90(), h.p99(), h.p999());
    let _: u64 = h.quantile(0.75);
    let mut merged = HistogramSnapshot::empty();
    merged.merge(h);
    assert_eq!(merged.count(), h.count());
    let _: String = registry.render_prometheus();
    let _: String = snap.render_json();

    // Tracing: span clocks, ring buffer, sampling.
    let mut clock = SpanClock::start();
    clock.lap(SpanKind::Plan);
    let _: u64 = clock.total_ns();
    let (total_ns, spans): (u64, Vec<SpanRecord>) = clock.finish();
    let ring = TraceRing::new(4);
    ring.push(TraceRecord {
        id: TraceId(0),
        kind: TraceKind::Query,
        total_ns,
        spans,
    });
    let records: Vec<TraceRecord> = ring.snapshot();
    assert_eq!(records.len(), 1);
    let _: &'static str = SpanKind::TaScan.as_str();
    match records[0].kind {
        TraceKind::Query | TraceKind::Commit => {}
    }
    assert!(Sampler::every(1).hit());

    // Slow-query log: threshold, capture, drain.
    let slow = SlowQueryLog::new(std::time::Duration::ZERO, 4);
    assert!(slow.is_slow(1));
    slow.push(SlowQueryRecord {
        key: "terms=[0] k=1".into(),
        total_ns: 1,
        spans: Vec::new(),
        stats: vec![("cache_hit", 0)],
    });
    let _: Vec<SlowQueryRecord> = slow.snapshot();
    slow.set_threshold(std::time::Duration::from_millis(1));
    let _: u64 = slow.threshold_ns();

    // Attachment points: pipeline-level (shared registry) and the per-layer
    // obs bundles it hands out.
    let obs: Arc<PipelineObs> = PipelineObs::with_registry(
        Arc::clone(&registry),
        &PipelineObsConfig {
            search: SearchObsConfig::default(),
            commit_sample_every: 1,
            commit_trace_capacity: 8,
        },
    );
    let mut pipeline = IngestPipeline::new(IngestConfig::default());
    pipeline.attach_obs(&obs);
    assert!(pipeline.obs().is_some());
    let _: &Arc<ObsRegistry> = obs.registry();
    let _: &Arc<SearchObs> = obs.search();
    let _: &WalObs = obs.wal();
    let _: &Arc<LatencyHistogram> = obs.commit_latency();
    let _: Vec<TraceRecord> = obs.commit_traces();
    let _: ObsSnapshot = obs.snapshot();
    let _: &SlowQueryLog = obs.search().slow_log();
    let _: &Arc<LatencyHistogram> = obs.search().query_latency();
}

/// Durability: the store-backed pipeline constructor, checkpointing, the
/// recovery report, and the persistence layer's own public types.
#[test]
fn store_surface() {
    use stburst::store::{
        crc32, decode_wal, read_wal, Dec, DocRecord, Enc, FaultFile, FaultKind, FaultSchedule,
        FaultSite, InjectedFault, PendingState, RecordingSleeper, SnapshotState, Store,
        StreamRecord, TermRecord, TickRecord, WalReplay, WalWriter, SNAPSHOT_FILE, SNAPSHOT_MAGIC,
        SNAPSHOT_VERSION, WAL_FILE, WAL_HEADER_LEN, WAL_MAGIC, WAL_VERSION,
    };

    let dir = std::env::temp_dir().join(format!("stb-api-surface-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Durable pipeline lifecycle: open, commit (write-ahead logged),
    // checkpoint, recover.
    let config = IngestConfig {
        timeline_capacity: 2,
        durability: Durability::Buffered,
        checkpoint_every_ticks: 0,
        ..IngestConfig::default()
    };
    let (mut pipeline, report): (IngestPipeline, RecoveryReport) =
        IngestPipeline::durable(config.clone(), &dir).unwrap();
    let _: (bool, u64, usize, usize, u64) = (
        report.snapshot_loaded,
        report.snapshot_ticks,
        report.wal_ticks_replayed,
        report.wal_ticks_skipped,
        report.wal_bytes_discarded,
    );
    assert!(pipeline.is_durable());
    let _: Option<&std::path::Path> = pipeline.store_dir();
    let stream = pipeline.add_stream("Athens", GeoPoint::new(38.0, 23.7));
    let term = pipeline.intern("storm");
    pipeline.stage_document(stream, HashMap::from([(term, 5)]));
    pipeline.commit_tick();
    let _: DurabilityState = pipeline.durability_state();
    let _: DurabilityState = pipeline.try_recover_durability();
    #[allow(deprecated)]
    let _: Option<&StoreError> = pipeline.wal_error();
    let _: SnapshotState = pipeline.export_snapshot_state();
    let _: u64 = pipeline.checkpoint().unwrap();
    let metrics = pipeline.metrics();
    let _: (bool, u64, u64) = (metrics.durable, metrics.wal_appends, metrics.checkpoints);
    drop(pipeline);
    let (recovered, report) = IngestPipeline::durable(config.clone(), &dir).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(recovered.ticks_committed(), 1);
    drop(recovered);

    // Durable TSV replay: recovers from the store instead of the file.
    let data = "C\t2\nS\t0\tAthens\t38.0\t23.7\t23.7\t38.0\nD\t0\t1\tstorm:3\n";
    let (_, report) = replay_tsv_durable(std::io::Cursor::new(data), config, &dir).unwrap();
    assert!(report.snapshot_loaded);

    // The persistence layer's own vocabulary stays public: store paths,
    // file formats, the WAL record types, and the fault-injection helpers.
    let store = Store::open(&dir).unwrap();
    assert!(store.snapshot_path().ends_with(SNAPSHOT_FILE));
    assert!(store.wal_path().ends_with(WAL_FILE));
    let _: Option<SnapshotState> = store.load_snapshot().unwrap();
    let replay: WalReplay = store.read_wal().unwrap();
    let _: (usize, u64, u64) = (replay.ticks.len(), replay.valid_len, replay.discarded_bytes);
    let _: WalReplay = read_wal(&store.wal_path()).unwrap();
    let _: ([u8; 8], u32, [u8; 8], u32, u64) = (
        WAL_MAGIC,
        WAL_VERSION,
        SNAPSHOT_MAGIC,
        SNAPSHOT_VERSION,
        WAL_HEADER_LEN,
    );
    let _: PendingState = PendingState::default();
    let record = TickRecord {
        tick: 0,
        new_streams: vec![StreamRecord {
            index: StreamId(0),
            name: "Athens".into(),
            geostamp: GeoPoint::new(38.0, 23.7),
            position: Point2D::new(23.7, 38.0),
        }],
        new_terms: vec![TermRecord {
            id: TermId(0),
            text: "storm".into(),
        }],
        docs: vec![DocRecord {
            stream: StreamId(0),
            counts: vec![(TermId(0), 3)],
        }],
    };
    let mut writer = WalWriter::from_sink(Vec::new(), true, Durability::Buffered).unwrap();
    writer.append(&record).unwrap();
    let sink: Vec<u8> = writer.into_sink();
    let _: Vec<TickRecord> = decode_wal(&sink).unwrap().ticks;

    // Codec + fault-injection helpers.
    let mut enc = Enc::new();
    enc.put_u32(7);
    let bytes = enc.into_bytes();
    let _: u32 = crc32(&bytes);
    let mut dec = Dec::new(&bytes, "api");
    assert_eq!(dec.get_u32().unwrap(), 7);
    let _: FaultFile = FaultFile::new(FaultKind::ShortWrite, 8);
    let torn = stburst::store::crash_artifact(&bytes, FaultKind::Torn, 2, 4);
    assert_eq!(torn.len(), bytes.len());

    // Retry policy: deterministic backoff schedule with injectable sleep.
    let policy = RetryPolicy::default();
    let _: Vec<std::time::Duration> = policy.delays().collect();
    let _: std::time::Duration = policy.max_total_backoff();
    let mut sleeper = RecordingSleeper::default();
    let (result, retries) = policy.run_with(&mut sleeper, || Ok::<_, StoreError>(1));
    assert_eq!((result.unwrap(), retries), (1, 0));
    let _: RetryPolicy = RetryPolicy::none();
    let _: RetryPolicy = RetryPolicy::immediate(2);

    // Live fault schedules: scripted and stochastic store-error injection.
    let faults = FaultSchedule::new();
    faults.fail_next(InjectedFault::transient());
    faults.fail_next_at(FaultSite::WalAppend, InjectedFault::torn(3));
    faults.succeed_next();
    faults.storm(7, 4, 250);
    assert!(faults.is_armed());
    faults.heal();
    assert!(!faults.is_armed());
    let _: (u64, u64) = (faults.ops(), faults.injected());
    let _: InjectedFault = InjectedFault::permanent();
    let faulted = Store::open_with_faults(&dir, faults.clone()).unwrap();
    assert!(faulted.faults().is_some());

    let _ = std::fs::remove_dir_all(&dir);
}
