//! Cross-crate integration test: synthetic data generation → pattern mining
//! (both miners and both baselines) → evaluation metrics.

use stburst::core::{jaccard_similarity, Base, STComb, STCombConfig, STLocal, STLocalConfig, TB};
use stburst::corpus::StreamId;
use stburst::datagen::{GeneratorConfig, PatternGenerator, StreamSelection};

fn dataset() -> stburst::datagen::SyntheticDataset {
    PatternGenerator::generate(GeneratorConfig {
        n_streams: 24,
        timeline: 90,
        n_terms: 40,
        n_patterns: 6,
        selection: StreamSelection::DistGen {
            decay_fraction: 0.1,
        },
        max_streams_per_pattern: 8,
        seed: 77,
        ..Default::default()
    })
}

#[test]
fn stcomb_recovers_injected_patterns() {
    let data = dataset();
    let miner = STComb::with_config(STCombConfig {
        min_interval_score: 0.2,
        ..Default::default()
    });
    let mut hits = 0usize;
    for truth in data.patterns() {
        let series: Vec<(StreamId, Vec<f64>)> = (0..data.n_streams())
            .map(|s| (StreamId(s as u32), data.series(truth.term, s)))
            .collect();
        let mined = miner.mine_series(&series);
        let truth_streams: Vec<StreamId> =
            truth.streams.iter().map(|&s| StreamId(s as u32)).collect();
        if let Some(best) = mined.first() {
            // The top pattern must overlap the injected timeframe and share
            // streams with it.
            if best.timeframe.overlaps(&truth.interval)
                && jaccard_similarity(&best.streams, &truth_streams) > 0.3
            {
                hits += 1;
            }
        }
    }
    assert!(
        hits >= data.patterns().len() - 1,
        "STComb recovered only {hits}/{} injected patterns",
        data.patterns().len()
    );
}

#[test]
fn stlocal_recovers_injected_timeframes() {
    let data = dataset();
    let mut recovered = 0usize;
    for truth in data.patterns() {
        let mut miner = STLocal::new(data.positions().to_vec(), STLocalConfig::default());
        for ts in 0..data.timeline() {
            miner.step(&data.snapshot(truth.term, ts));
        }
        if let Some(best) = miner.finish().into_iter().next() {
            if best.timeframe.overlaps(&truth.interval) {
                recovered += 1;
            }
        }
    }
    assert!(
        recovered >= data.patterns().len() - 1,
        "STLocal recovered only {recovered}/{} timeframes",
        data.patterns().len()
    );
}

#[test]
fn baselines_produce_consistent_patterns() {
    let data = dataset();
    let truth = &data.patterns()[0];
    let series: Vec<(StreamId, Vec<f64>)> = (0..data.n_streams())
        .map(|s| (StreamId(s as u32), data.series(truth.term, s)))
        .collect();

    // Base: every pattern covers at least one stream and a valid timeframe.
    for p in Base::new().mine_series(&series) {
        assert!(!p.streams.is_empty());
        assert!(p.timeframe.end < data.timeline());
    }

    // TB: patterns cover all streams and have positive scores.
    let mut merged = vec![0.0; data.timeline()];
    for (_, s) in &series {
        for (ts, v) in s.iter().enumerate() {
            merged[ts] += v;
        }
    }
    let all: Vec<StreamId> = (0..data.n_streams() as u32).map(StreamId).collect();
    for p in TB::new().mine_merged_series(&merged, &all) {
        assert_eq!(p.n_streams(), data.n_streams());
        assert!(p.score > 0.0);
    }
}

#[test]
fn miners_agree_on_quiet_terms() {
    let data = dataset();
    // A term with no injected pattern should produce no strong patterns.
    let quiet = (0..40)
        .find(|t| data.patterns_of_term(*t).is_empty())
        .expect("some term has no injected pattern");
    let series: Vec<(StreamId, Vec<f64>)> = (0..data.n_streams())
        .map(|s| (StreamId(s as u32), data.series(quiet, s)))
        .collect();
    let miner = STComb::with_config(STCombConfig {
        min_interval_score: 0.35,
        min_streams: 3,
        ..Default::default()
    });
    let strong: Vec<_> = miner
        .mine_series(&series)
        .into_iter()
        .filter(|p| p.score > 2.0)
        .collect();
    assert!(
        strong.len() <= 1,
        "quiet term produced {} strong patterns",
        strong.len()
    );
}
