//! Unified observability for the live serving stack: a lock-free metrics
//! registry, log-linear latency histograms, structured per-query /
//! per-commit tracing, and a slow-query log — all std-only and recordable
//! from the epoch-pinned read path without blocking readers.
//!
//! The north star is a production system serving millions of users; its
//! telemetry therefore has to satisfy two constraints at once:
//!
//! 1. **Recording must never block serving.** Counters, gauges, and
//!    histogram buckets are plain atomics ([`Counter`], [`Gauge`],
//!    [`LatencyHistogram`]), so the lock-free query path of
//!    `stb-search`'s `ServingFront` can record latencies while holding an
//!    epoch-pinned snapshot. Trace capture ([`TraceRing`],
//!    [`SlowQueryLog`]) claims a slot with one atomic `fetch_add` and
//!    *tries* a per-slot lock — on contention the sample is dropped (and
//!    counted), never waited for.
//! 2. **Readout must be mergeable and machine-consumable.** Histograms
//!    snapshot into plain bucket arrays ([`HistogramSnapshot`]) with
//!    order-independent [`HistogramSnapshot::merge`], and the registry
//!    renders Prometheus text ([`ObsRegistry::render_prometheus`]) and
//!    JSON ([`ObsRegistry::render_json`]) from one consistent
//!    [`ObsSnapshot`].
//!
//! Latency histograms are log-linear (HDR-style): each power-of-two
//! magnitude is split into 32 linear sub-buckets, bounding the relative
//! quantile error at ~3% while keeping recording a single indexed atomic
//! increment over the full `u64` range. See [`LatencyHistogram`] for the
//! bucket math.
//!
//! Downstream crates thread these types through their hot paths:
//! `stb-search` records query latency, span breakdowns, and the slow-query
//! log; `stb-ingest` records commit-stage spans and durability-state
//! gauges; `stb-store` records WAL append/fsync latency and rollback
//! events. `stb-bench` replaces its hand-rolled percentile helpers with
//! [`HistogramSnapshot`] quantiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod metric;
mod registry;
mod ring;
mod slow;
mod trace;

pub use hist::{HistogramSnapshot, LatencyHistogram, HIST_BUCKETS, HIST_SUB_BUCKETS};
pub use metric::{Counter, Gauge};
pub use registry::{ObsRegistry, ObsSnapshot};
pub use slow::{SlowQueryLog, SlowQueryRecord};
pub use trace::{
    Sampler, SpanClock, SpanKind, SpanRecord, TraceId, TraceKind, TraceRecord, TraceRing,
};

use std::time::Duration;

/// Converts a [`Duration`] to whole nanoseconds, saturating at `u64::MAX`
/// (~584 years) — the unit every latency histogram and span in this crate
/// records.
pub fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}
