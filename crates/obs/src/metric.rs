//! Atomic scalar metrics: monotone counters and float-valued gauges.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A monotonically increasing event counter.
///
/// A `Counter` is a single relaxed `AtomicU64`, so incrementing from the
/// lock-free read path costs one atomic add and recording threads never
/// contend on anything but the cache line. Counters are shared by
/// `Arc`: the cell a hot path increments can be the *same* cell an
/// [`crate::ObsRegistry`] exposes (see
/// [`crate::ObsRegistry::adopt_counter`]), which is how legacy metrics
/// structs become thin views over the registry without double counting.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as its bit pattern in
/// an `AtomicU64`, so reads and writes are lock-free).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_round_trips_floats() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
