//! A bounded MPMC ring of sampled records shared by [`crate::TraceRing`]
//! and [`crate::SlowQueryLog`].
//!
//! Writers claim a slot with one atomic `fetch_add` and then *try* the
//! slot's mutex: on contention the record is dropped (and counted) rather
//! than waited for, so pushing from the lock-free query path can never
//! block a reader — the ring trades completeness for progress, which is
//! the right trade for sampled diagnostics.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

#[derive(Debug)]
pub(crate) struct Ring<T> {
    slots: Vec<Mutex<Option<T>>>,
    head: AtomicU64,
    pushed: AtomicU64,
    dropped: AtomicU64,
}

impl<T: Clone> Ring<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn push(&self, record: T) {
        let slot = self.head.fetch_add(1, Relaxed) as usize % self.slots.len();
        match self.slots[slot].try_lock() {
            Ok(mut guard) => {
                *guard = Some(record);
                self.pushed.fetch_add(1, Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Relaxed);
            }
        }
    }

    /// Clones the currently retained records, oldest-first by slot order
    /// (slot order approximates but does not guarantee insertion order
    /// once the ring has wrapped).
    pub(crate) fn snapshot(&self) -> Vec<T> {
        self.slots
            .iter()
            .filter_map(|s| s.lock().ok().and_then(|g| g.clone()))
            .collect()
    }

    pub(crate) fn pushed(&self) -> u64 {
        self.pushed.load(Relaxed)
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_and_overwriting() {
        let ring: Ring<u32> = Ring::new(4);
        for i in 0..10 {
            ring.push(i);
        }
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 4);
        for v in kept {
            assert!(v >= 6, "old record {v} survived wraparound");
        }
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 0);
    }
}
