//! The metrics registry: named counters, gauges, and histograms with
//! consistent snapshot and Prometheus/JSON exposition.

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::metric::{Counter, Gauge};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<LatencyHistogram>>,
}

/// A registry of named metrics.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a short mutex
/// and is expected to happen once at wiring time; the returned `Arc`
/// handles are then recorded into lock-free, so steady-state hot paths
/// never touch the registry lock. Existing atomic cells can be *adopted*
/// ([`adopt_counter`](Self::adopt_counter)), which is how legacy metrics
/// structs (`EngineMetrics`, `PipelineMetrics`) become thin views over
/// the registry: the cell a hot path already increments is the very cell
/// the registry renders.
///
/// Histogram values are nanoseconds by convention; names carry their unit
/// as a suffix (`_ns`, `_seconds`, plain counts).
#[derive(Debug, Default)]
pub struct ObsRegistry {
    inner: Mutex<Inner>,
}

impl ObsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Registers an existing counter cell under `name`, replacing any
    /// previous registration. The registry renders the live value of the
    /// adopted cell — no copying, no double counting.
    pub fn adopt_counter(&self, name: &str, cell: Arc<Counter>) {
        self.lock().counters.insert(name.to_string(), cell);
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Registers an existing histogram cell under `name`, replacing any
    /// previous registration — the histogram analogue of
    /// [`adopt_counter`](Self::adopt_counter). The registry renders the
    /// live state of the adopted cell.
    pub fn adopt_histogram(&self, name: &str, cell: Arc<LatencyHistogram>) {
        self.lock().histograms.insert(name.to_string(), cell);
    }

    /// Returns the histogram registered under `name`, creating it if
    /// absent.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut inner = self.lock();
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(LatencyHistogram::new())),
        )
    }

    /// A point-in-time snapshot of every registered metric, names sorted.
    pub fn snapshot(&self) -> ObsSnapshot {
        let inner = self.lock();
        ObsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Renders the current state in the Prometheus text exposition format:
    /// counters and gauges as single samples, histograms as summaries with
    /// `quantile` labels plus `_sum` and `_count` series.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Renders the current state as a JSON object with `counters`,
    /// `gauges`, and `histograms` maps.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Recording paths never hold this lock, so poisoning can only come
        // from a panicking registration — recover the data either way.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A consistent point-in-time copy of a registry's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl ObsSnapshot {
    /// The value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of the named gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// See [`ObsRegistry::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
                let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }

    /// See [`ObsRegistry::render_json`].
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_string(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), json_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                json_string(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                json_f64(h.mean()),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
            );
        }
        out.push_str("}}");
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; anything else becomes
/// `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity literals; clamp them to null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_cell() {
        let reg = ObsRegistry::new();
        let a = reg.counter("queries_total");
        let b = reg.counter("queries_total");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn adopted_counter_is_rendered_live() {
        let reg = ObsRegistry::new();
        let cell = Arc::new(Counter::new());
        cell.add(5);
        reg.adopt_counter("cache_hits", Arc::clone(&cell));
        assert_eq!(reg.snapshot().counter("cache_hits"), Some(5));
        cell.inc();
        assert_eq!(reg.snapshot().counter("cache_hits"), Some(6));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = ObsRegistry::new();
        reg.counter("queries_total").add(3);
        reg.gauge("ingest_lag").set(1.5);
        let h = reg.histogram("query_ns");
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE queries_total counter"));
        assert!(text.contains("queries_total 3"));
        assert!(text.contains("# TYPE ingest_lag gauge"));
        assert!(text.contains("ingest_lag 1.5"));
        assert!(text.contains("# TYPE query_ns summary"));
        assert!(text.contains("query_ns{quantile=\"0.99\"}"));
        assert!(text.contains("query_ns_count 3"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let reg = ObsRegistry::new();
        reg.counter("a").inc();
        reg.gauge("g").set(2.0);
        reg.histogram("h").record(7);
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"g\":2"));
        assert!(json.contains("\"count\":1"));
        // Balanced braces (cheap well-formedness check without a parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let reg = ObsRegistry::new();
        reg.counter("c").add(2);
        reg.gauge("g").set(0.5);
        reg.histogram("h").record(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(2));
        assert_eq!(snap.gauge("g"), Some(0.5));
        assert_eq!(snap.histogram("h").map(|h| h.count()), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn sanitize_replaces_illegal_chars() {
        assert_eq!(sanitize("a.b-c d"), "a_b_c_d");
        assert_eq!(sanitize("ok_name:x9"), "ok_name:x9");
    }
}
