//! Structured tracing: trace identifiers, span records, sampling, and the
//! bounded trace ring.

use crate::ring::Ring;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Identifier tying the spans of one query or one commit together.
///
/// Ids are drawn from a process-local monotone counter (see
/// [`Sampler`]-owning integrations), not random, so two traces from the
/// same process never collide and ordering is meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// What kind of operation a [`TraceRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// One query through the serving path.
    Query,
    /// One committed ingest tick.
    Commit,
}

/// The named stages of the instrumented hot paths.
///
/// Query path: [`Plan`](Self::Plan) → [`CacheLookup`](Self::CacheLookup)
/// → [`ShardGather`](Self::ShardGather) → [`TaScan`](Self::TaScan) →
/// [`Respond`](Self::Respond). Commit path: [`Stage`](Self::Stage) →
/// [`WalAppend`](Self::WalAppend) → [`ApplyDocs`](Self::ApplyDocs) →
/// [`Mine`](Self::Mine) → [`Publish`](Self::Publish) (which includes the
/// per-term cache invalidation), followed by [`Notify`](Self::Notify)
/// when standing subscriptions were evaluated against the just-published
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpanKind {
    /// Query planning: term lookup, filter normalization, vacuity check.
    Plan,
    /// Result-cache probe (per-shard LRU).
    CacheLookup,
    /// Gathering per-term posting state from shard snapshots.
    ShardGather,
    /// The Threshold Algorithm scan over gathered postings.
    TaScan,
    /// Assembling the response (stats, optional explanations).
    Respond,
    /// Staging documents ahead of a commit.
    Stage,
    /// WAL append (including the configured durability step).
    WalAppend,
    /// Applying staged documents to the live collection and burst states.
    ApplyDocs,
    /// Re-mining the tick's dirty terms.
    Mine,
    /// Publishing the new serving generation (cache invalidation
    /// included).
    Publish,
    /// Evaluating standing subscriptions against the published generation
    /// and pushing result diffs to their channels.
    Notify,
}

impl SpanKind {
    /// Stable lower-case name used in rendered traces and logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Plan => "plan",
            SpanKind::CacheLookup => "cache-lookup",
            SpanKind::ShardGather => "shard-gather",
            SpanKind::TaScan => "ta-scan",
            SpanKind::Respond => "respond",
            SpanKind::Stage => "stage",
            SpanKind::WalAppend => "wal-append",
            SpanKind::ApplyDocs => "apply-docs",
            SpanKind::Mine => "mine",
            SpanKind::Publish => "publish",
            SpanKind::Notify => "notify",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timed stage within a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which stage this span timed.
    pub kind: SpanKind,
    /// Offset of the span start from the trace start, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
}

/// One completed trace: the id, what it traced, its total duration, and
/// the ordered span breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Identifier of this query/commit.
    pub id: TraceId,
    /// Query or commit.
    pub kind: TraceKind,
    /// End-to-end duration in nanoseconds.
    pub total_ns: u64,
    /// Timed stages in execution order.
    pub spans: Vec<SpanRecord>,
}

/// A bounded ring of recent [`TraceRecord`]s.
///
/// Pushing claims a slot with one atomic `fetch_add` and then *tries* the
/// slot lock: on contention the trace is dropped and counted in
/// [`dropped`](Self::dropped), so the recording path never blocks — the
/// ring holds the most recent `capacity` traces on a best-effort basis.
#[derive(Debug)]
pub struct TraceRing {
    ring: Ring<TraceRecord>,
}

impl TraceRing {
    /// Creates a ring retaining at most `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Ring::new(capacity),
        }
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Records a completed trace (non-blocking; may drop on contention).
    pub fn push(&self, record: TraceRecord) {
        self.ring.push(record);
    }

    /// Clones the currently retained traces.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.ring.snapshot()
    }

    /// Total traces successfully recorded.
    pub fn pushed(&self) -> u64 {
        self.ring.pushed()
    }

    /// Traces dropped because the claimed slot was contended.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

/// 1-in-N sampling decision shared by recording threads.
///
/// `every == 0` disables sampling entirely; `every == 1` samples
/// everything. The decision is one relaxed `fetch_add`, so it is safe on
/// the lock-free query path.
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    n: AtomicU64,
}

impl Sampler {
    /// Samples one in `every` events (0 = never).
    pub fn every(every: u64) -> Self {
        Self {
            every,
            n: AtomicU64::new(0),
        }
    }

    /// Whether this event is sampled. Exactly one call in `every` returns
    /// `true` (modulo concurrent interleaving, which preserves the rate).
    pub fn hit(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.n.fetch_add(1, Relaxed).is_multiple_of(self.every)
    }

    /// The configured period.
    pub fn period(&self) -> u64 {
        self.every
    }
}

/// Builds a span breakdown from consecutive laps of one wall clock.
///
/// Sequential instrumentation helper for straight-line code: construct at
/// the start of the operation, call [`lap`](Self::lap) at the end of each
/// stage, and [`finish`](Self::finish) to obtain the total duration and
/// span list.
#[derive(Debug)]
pub struct SpanClock {
    origin: Instant,
    last: Instant,
    spans: Vec<SpanRecord>,
}

impl Default for SpanClock {
    fn default() -> Self {
        Self::start()
    }
}

impl SpanClock {
    /// Starts the clock.
    pub fn start() -> Self {
        let now = Instant::now();
        Self {
            origin: now,
            last: now,
            spans: Vec::with_capacity(6),
        }
    }

    /// Closes the current stage: records a span of `kind` covering the
    /// time since the previous lap (or since start).
    pub fn lap(&mut self, kind: SpanKind) {
        let now = Instant::now();
        self.spans.push(SpanRecord {
            kind,
            start_ns: crate::duration_ns(self.last - self.origin),
            duration_ns: crate::duration_ns(now - self.last),
        });
        self.last = now;
    }

    /// Nanoseconds elapsed since the clock started.
    pub fn total_ns(&self) -> u64 {
        crate::duration_ns(self.origin.elapsed())
    }

    /// Consumes the clock, returning `(total_ns, spans)`.
    pub fn finish(self) -> (u64, Vec<SpanRecord>) {
        (crate::duration_ns(self.origin.elapsed()), self.spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_rate_is_exact_single_threaded() {
        let s = Sampler::every(4);
        let hits = (0..40).filter(|_| s.hit()).count();
        assert_eq!(hits, 10);
        assert!(!Sampler::every(0).hit());
        assert!(Sampler::every(1).hit());
    }

    #[test]
    fn span_clock_produces_ordered_spans() {
        let mut clock = SpanClock::start();
        clock.lap(SpanKind::Plan);
        clock.lap(SpanKind::TaScan);
        let (total, spans) = clock.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Plan);
        assert_eq!(spans[1].kind, SpanKind::TaScan);
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert!(total >= spans.iter().map(|s| s.duration_ns).sum::<u64>());
    }

    #[test]
    fn trace_ring_round_trips() {
        let ring = TraceRing::new(8);
        ring.push(TraceRecord {
            id: TraceId(7),
            kind: TraceKind::Query,
            total_ns: 100,
            spans: vec![],
        });
        let got = ring.snapshot();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, TraceId(7));
        assert_eq!(format!("{}", got[0].id), "0000000000000007");
        assert_eq!(SpanKind::TaScan.to_string(), "ta-scan");
    }
}
