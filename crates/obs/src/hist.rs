//! Log-linear (HDR-style) latency histograms with lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Linear sub-buckets per power-of-two magnitude (32 ⇒ ≤ ~3.1% relative
/// quantile error).
pub const HIST_SUB_BUCKETS: usize = 32;

const SUB_BITS: u32 = HIST_SUB_BUCKETS.trailing_zeros(); // 5

/// Total bucket count covering the full `u64` value range: one linear
/// group below [`HIST_SUB_BUCKETS`], then one 32-wide group per remaining
/// power of two (magnitudes `SUB_BITS..=63`).
pub const HIST_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * HIST_SUB_BUCKETS;

/// The bucket index of a recorded value.
///
/// Values below [`HIST_SUB_BUCKETS`] get exact unit-width buckets; above
/// that, each power-of-two magnitude `[2^m, 2^{m+1})` is split into
/// [`HIST_SUB_BUCKETS`] equal sub-buckets, so bucket width never exceeds
/// `value / 32`.
fn bucket_of(v: u64) -> usize {
    if v < HIST_SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> shift) - HIST_SUB_BUCKETS as u64) as usize;
    group * HIST_SUB_BUCKETS + sub
}

/// Inclusive `(low, high)` value bounds of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < HIST_SUB_BUCKETS {
        return (i as u64, i as u64);
    }
    let group = i / HIST_SUB_BUCKETS;
    let sub = i % HIST_SUB_BUCKETS;
    let shift = (group - 1) as u32;
    let lo = ((HIST_SUB_BUCKETS + sub) as u64) << shift;
    let width = 1u64 << shift;
    (lo, lo + (width - 1))
}

/// A lock-free log-linear latency histogram over `u64` values
/// (nanoseconds by convention; see [`crate::duration_ns`]).
///
/// Recording is one relaxed atomic increment on the value's bucket plus
/// bookkeeping (`count`, `sum`, `min`, `max` — all relaxed atomics), so
/// the epoch-pinned query path can record without blocking other readers
/// or the writer. Readout goes through [`LatencyHistogram::snapshot`],
/// which yields a plain [`HistogramSnapshot`] supporting quantiles and
/// order-independent merging.
///
/// The bucket layout is HDR-style log-linear: unit-width buckets below
/// [`HIST_SUB_BUCKETS`], then every power-of-two magnitude split into
/// [`HIST_SUB_BUCKETS`] linear sub-buckets, covering the full `u64` range
/// in [`HIST_BUCKETS`] buckets with relative error bounded by
/// `1 / HIST_SUB_BUCKETS`.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(crate::duration_ns(d));
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// A point-in-time copy of the bucket counts and summary stats.
    ///
    /// Individual loads are relaxed, so a snapshot taken while recorders
    /// are active may be mid-update by a handful of observations; once
    /// recorders quiesce it is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// A plain (non-atomic) copy of a [`LatencyHistogram`]: bucket counts plus
/// `count`/`sum`/`min`/`max`, supporting quantile readout and cheap
/// order-independent [`merge`](HistogramSnapshot::merge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (wraps only after ~2^64 ns ≈ 584 years).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank, reported as the
    /// upper bound of the selected bucket (clamped to the observed
    /// maximum), so the reported value is within one log-linear bucket —
    /// ≤ ~3.1% relative error — of the exact order statistic. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Accumulates `other` into `self` bucket-wise. Merging is commutative
    /// and associative, so shard- or thread-local histograms can be
    /// combined in any order and yield identical quantiles.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_self_consistent() {
        // Every bucket's bounds map back to that bucket, and bounds tile
        // the u64 range without gaps.
        let mut expected_lo = 0u64;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "gap before bucket {i}");
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "buckets must cover the whole u64 range");
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[1u64, 31, 32, 33, 100, 1_000, 123_456, u32::MAX as u64] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            assert!(lo <= v && v <= hi);
            let width = hi - lo;
            assert!(
                width as f64 <= (v as f64 / HIST_SUB_BUCKETS as f64).max(0.0) + 1.0,
                "bucket width {width} too wide for {v}"
            );
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1000);
        // Exact order statistics: p50 = 500, p99 = 990; log-linear readout
        // is within one bucket (~3.1%).
        let p50 = s.p50() as f64;
        let p99 = s.p99() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 = {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let all = LatencyHistogram::new();
        for v in [3u64, 77, 1024, 5_000_000] {
            a.record(v);
            all.record(v);
        }
        for v in [9u64, 77, 40_000] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}
