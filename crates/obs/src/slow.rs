//! Threshold-configurable slow-query log.

use crate::ring::Ring;
use crate::trace::SpanRecord;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// One logged slow query: the canonicalized query key, its end-to-end
/// latency, the span breakdown, and the query's execution stats.
///
/// Query-log mining treats this as an analysis substrate, not just debug
/// output, so every field is structured: `key` is the stable canonical
/// rendering of the engine's `QueryKey` (sorted terms, k, filters), and
/// `stats` carries named execution counters (`postings_scanned`,
/// `cache_hit`, …) without this crate depending on the search crate's
/// types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryRecord {
    /// Canonical rendering of the query's cache key.
    pub key: String,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// Per-stage breakdown (plan → cache → gather → TA scan → respond).
    pub spans: Vec<SpanRecord>,
    /// Named execution stats, e.g. `("postings_scanned", 1312)`.
    pub stats: Vec<(&'static str, u64)>,
}

/// A bounded log of queries slower than a runtime-adjustable threshold.
///
/// The threshold is a relaxed atomic, so it can be tightened on a live
/// system (e.g. to `Duration::ZERO` to capture everything during an
/// investigation) without pausing serving. Pushing is non-blocking and
/// may drop on slot contention, exactly like [`crate::TraceRing`].
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_ns: AtomicU64,
    ring: Ring<SlowQueryRecord>,
}

impl SlowQueryLog {
    /// Creates a log capturing queries at or above `threshold`, retaining
    /// the most recent `capacity` records.
    pub fn new(threshold: Duration, capacity: usize) -> Self {
        Self {
            threshold_ns: AtomicU64::new(crate::duration_ns(threshold)),
            ring: Ring::new(capacity),
        }
    }

    /// The current threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Relaxed)
    }

    /// Adjusts the threshold on a live system.
    pub fn set_threshold(&self, threshold: Duration) {
        self.threshold_ns
            .store(crate::duration_ns(threshold), Relaxed);
    }

    /// Whether a query of `total_ns` qualifies as slow.
    pub fn is_slow(&self, total_ns: u64) -> bool {
        total_ns >= self.threshold_ns()
    }

    /// Logs a slow query (non-blocking; may drop on contention).
    pub fn push(&self, record: SlowQueryRecord) {
        self.ring.push(record);
    }

    /// Clones the currently retained records.
    pub fn snapshot(&self) -> Vec<SlowQueryRecord> {
        self.ring.snapshot()
    }

    /// Total slow queries logged.
    pub fn logged(&self) -> u64 {
        self.ring.pushed()
    }

    /// Records dropped because the claimed slot was contended.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanKind;

    #[test]
    fn threshold_gates_and_adjusts() {
        let log = SlowQueryLog::new(Duration::from_millis(50), 8);
        assert!(!log.is_slow(10_000_000));
        assert!(log.is_slow(50_000_000));
        log.set_threshold(Duration::ZERO);
        assert!(log.is_slow(0));
    }

    #[test]
    fn records_round_trip() {
        let log = SlowQueryLog::new(Duration::ZERO, 4);
        log.push(SlowQueryRecord {
            key: "terms=[3] k=10".into(),
            total_ns: 123,
            spans: vec![SpanRecord {
                kind: SpanKind::Plan,
                start_ns: 0,
                duration_ns: 50,
            }],
            stats: vec![("postings_scanned", 7)],
        });
        let got = log.snapshot();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].key, "terms=[3] k=10");
        assert_eq!(got[0].stats[0], ("postings_scanned", 7));
        assert_eq!(log.logged(), 1);
    }
}
