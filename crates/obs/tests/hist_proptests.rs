//! Property and stress tests for the log-linear latency histogram: merge
//! order-independence, quantile accuracy against an exact oracle, and
//! lock-free recording under thread contention.

use proptest::prelude::*;
use stb_obs::{HistogramSnapshot, LatencyHistogram, HIST_SUB_BUCKETS};

/// Exact nearest-rank quantile over raw samples: the oracle the histogram
/// readout is compared against.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One log-linear bucket of slack around the oracle: the reported value
/// may sit anywhere in the oracle's bucket (width ≤ oracle/32 + 1), and
/// nearest-rank ties at bucket edges can land one bucket over.
fn within_one_bucket(reported: u64, exact: u64) -> bool {
    let bucket_width = exact / HIST_SUB_BUCKETS as u64 + 1;
    reported.abs_diff(exact) <= 2 * bucket_width
}

proptest! {
    #[test]
    fn merge_is_order_independent(
        xs in prop::collection::vec(0u64..50_000_000, 0..200),
        ys in prop::collection::vec(0u64..50_000_000, 0..200),
        zs in prop::collection::vec(0u64..50_000_000, 0..200),
    ) {
        let record_all = |vals: &[u64]| {
            let h = LatencyHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (a, b, c) = (record_all(&xs), record_all(&ys), record_all(&zs));

        // (a ⊕ b) ⊕ c == c ⊕ (b ⊕ a) == recording everything into one.
        let mut abc = a.clone();
        abc.merge(&b);
        abc.merge(&c);
        let mut cba = c.clone();
        let mut ba = b.clone();
        ba.merge(&a);
        cba.merge(&ba);
        prop_assert_eq!(&abc, &cba);

        let mut all: Vec<u64> = Vec::new();
        all.extend(&xs);
        all.extend(&ys);
        all.extend(&zs);
        let direct = record_all(&all);
        prop_assert_eq!(&abc, &direct);

        // Identity: merging an empty snapshot changes nothing.
        let mut with_empty = abc.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&with_empty, &abc);
    }

    #[test]
    fn quantiles_within_one_bucket_of_oracle(
        samples in prop::collection::vec(0u64..10_000_000_000, 1..400),
    ) {
        let h = LatencyHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count(), sorted.len() as u64);
        prop_assert_eq!(snap.min(), sorted[0]);
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = oracle_quantile(&sorted, q);
            let reported = snap.quantile(q);
            prop_assert!(
                within_one_bucket(reported, exact),
                "q={} reported={} exact={} (n={})",
                q, reported, exact, sorted.len()
            );
        }
    }

    #[test]
    fn merged_quantiles_match_pooled_oracle(
        xs in prop::collection::vec(1u64..1_000_000, 1..150),
        ys in prop::collection::vec(1u64..1_000_000, 1..150),
    ) {
        // Per-shard histograms merged must answer quantiles for the pooled
        // population — the property the serving tier's per-shard metrics
        // rely on.
        let ha = LatencyHistogram::new();
        let hb = LatencyHistogram::new();
        for &v in &xs {
            ha.record(v);
        }
        for &v in &ys {
            hb.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());

        let mut pooled: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        pooled.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = oracle_quantile(&pooled, q);
            prop_assert!(
                within_one_bucket(merged.quantile(q), exact),
                "q={} merged={} exact={}",
                q, merged.quantile(q), exact
            );
        }
    }
}

/// Satellite: 8 threads hammering one histogram concurrently (the shape of
/// 8 reader threads recording query latencies during commits) lose no
/// observations and keep the sum exact.
#[test]
fn concurrent_recording_loses_no_observations() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let h = Arc::new(LatencyHistogram::new());
    let n_threads = 8u64;
    let per_thread = 50_000u64;
    let start = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..n_threads)
        .map(|t| {
            let h = Arc::clone(&h);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                while !start.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                for i in 0..per_thread {
                    // Deterministic per-thread values spread over buckets.
                    h.record(t * 1_000 + (i % 997));
                }
            })
        })
        .collect();
    start.store(true, Ordering::SeqCst);
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count(), n_threads * per_thread);
    let expected_sum: u64 = (0..n_threads)
        .map(|t| (0..per_thread).map(|i| t * 1_000 + (i % 997)).sum::<u64>())
        .sum();
    assert_eq!(snap.sum(), expected_sum);
}
