//! Typed errors of the durability layer.
//!
//! Every failure mode of the snapshot and WAL codecs is a distinct,
//! matchable variant: a corrupt file must *fail closed* with a structured
//! error — never a panic, never a silently empty index. The recovery path
//! in `stb-ingest` distinguishes crash artifacts it repairs transparently
//! (a torn WAL tail record, a leftover snapshot temp file) from corruption
//! it refuses to load (a bad checksum, a foreign magic number), and only
//! the latter surface as `StoreError`s.

use std::fmt;
use std::io;

/// Errors produced by the snapshot and write-ahead-log codecs.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file does not start with the expected magic number — it is not a
    /// file this store wrote (or its first bytes were overwritten).
    BadMagic {
        /// Which file kind was being read ("snapshot" or "wal").
        what: &'static str,
        /// The magic bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Which file kind was being read.
        what: &'static str,
        /// The version number in the file.
        found: u32,
        /// The single version this build reads and writes.
        supported: u32,
    },
    /// A checksum over the payload did not match the stored value: the
    /// payload bytes were corrupted after they were written.
    ChecksumMismatch {
        /// Which payload failed ("snapshot" or "wal record").
        what: &'static str,
        /// The CRC32 stored in the file.
        expected: u32,
        /// The CRC32 of the bytes actually present.
        actual: u32,
    },
    /// The file ends before a complete structure could be read.
    Truncated {
        /// Which structure was cut short.
        what: &'static str,
    },
    /// The payload passed its checksum but decodes to something structurally
    /// impossible (an internal invariant does not hold).
    Corrupt {
        /// Which structure is inconsistent.
        what: &'static str,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// A durability operation was requested on a pipeline that was not
    /// constructed with a store attached.
    NotDurable,
    /// The write-ahead log writer is closed: a previous append failed and
    /// the pipeline dropped the writer rather than stack records on top of
    /// a half-written frame. The record was **not** logged. Unlike
    /// [`StoreError::NotDurable`] (a caller error — no store was ever
    /// attached), this is a runtime durability degradation the state
    /// machine recovers from by re-opening the log.
    WalClosed,
}

impl StoreError {
    /// Shorthand for a [`StoreError::Corrupt`] with a formatted detail.
    pub fn corrupt(what: &'static str, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            what,
            detail: detail.into(),
        }
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// The taxonomy is deliberately conservative — only failures that are
    /// *known* to be momentary conditions of a healthy disk count as
    /// transient:
    ///
    /// * **Transient** — an [`StoreError::Io`] whose kind is
    ///   [`io::ErrorKind::Interrupted`] (EINTR), [`io::ErrorKind::TimedOut`],
    ///   or [`io::ErrorKind::WouldBlock`]. A bounded retry with backoff
    ///   ([`crate::retry::RetryPolicy`]) is the right response.
    /// * **Permanent** — everything else: corruption-class errors
    ///   (`BadMagic`, `UnsupportedVersion`, `ChecksumMismatch`, `Truncated`,
    ///   `Corrupt`) describe bytes already on disk and will reproduce on
    ///   every retry; `NotDurable`/`WalClosed` are states, not conditions;
    ///   and the remaining I/O kinds (`PermissionDenied`, `NotFound`,
    ///   `StorageFull`, …) need operator intervention, not patience.
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }

    /// A structural copy of the error. `StoreError` cannot implement
    /// `Clone` because [`io::Error`] does not; this recreates the I/O case
    /// from its kind and message (preserving [`StoreError::is_transient`]
    /// classification) and copies every other variant field-for-field.
    /// Callers that must both *keep* an error (health reporting) and
    /// *return* it use this.
    pub fn duplicate(&self) -> StoreError {
        match self {
            StoreError::Io(e) => StoreError::Io(io::Error::new(e.kind(), e.to_string())),
            StoreError::BadMagic { what, found } => StoreError::BadMagic {
                what,
                found: *found,
            },
            StoreError::UnsupportedVersion {
                what,
                found,
                supported,
            } => StoreError::UnsupportedVersion {
                what,
                found: *found,
                supported: *supported,
            },
            StoreError::ChecksumMismatch {
                what,
                expected,
                actual,
            } => StoreError::ChecksumMismatch {
                what,
                expected: *expected,
                actual: *actual,
            },
            StoreError::Truncated { what } => StoreError::Truncated { what },
            StoreError::Corrupt { what, detail } => StoreError::Corrupt {
                what,
                detail: detail.clone(),
            },
            StoreError::NotDurable => StoreError::NotDurable,
            StoreError::WalClosed => StoreError::WalClosed,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic { what, found } => {
                write!(f, "{what}: bad magic {found:02x?} (not a stb-store file)")
            }
            StoreError::UnsupportedVersion {
                what,
                found,
                supported,
            } => write!(
                f,
                "{what}: unsupported format version {found} (this build reads version {supported})"
            ),
            StoreError::ChecksumMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "{what}: checksum mismatch (stored {expected:#010x}, computed {actual:#010x})"
            ),
            StoreError::Truncated { what } => {
                write!(f, "{what}: file ends mid-structure (truncated)")
            }
            StoreError::Corrupt { what, detail } => write!(f, "{what}: corrupt payload: {detail}"),
            StoreError::NotDurable => {
                write!(f, "pipeline has no durable store attached")
            }
            StoreError::WalClosed => {
                write!(
                    f,
                    "write-ahead log writer is closed after an append failure; \
                     the record was not logged (durability degraded)"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<StoreError> = vec![
            StoreError::Io(io::Error::other("boom")),
            StoreError::BadMagic {
                what: "snapshot",
                found: *b"NOTMAGIC",
            },
            StoreError::UnsupportedVersion {
                what: "wal",
                found: 9,
                supported: 1,
            },
            StoreError::ChecksumMismatch {
                what: "snapshot",
                expected: 1,
                actual: 2,
            },
            StoreError::Truncated { what: "snapshot" },
            StoreError::corrupt("wal record", "tick gap"),
            StoreError::NotDurable,
            StoreError::WalClosed,
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn transient_classification() {
        for kind in [
            io::ErrorKind::Interrupted,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
        ] {
            let e = StoreError::Io(io::Error::new(kind, "blip"));
            assert!(e.is_transient(), "{kind:?} must be transient");
        }
        for e in [
            StoreError::Io(io::Error::new(io::ErrorKind::PermissionDenied, "no")),
            StoreError::Io(io::Error::new(io::ErrorKind::NotFound, "gone")),
            StoreError::BadMagic {
                what: "wal",
                found: [0; 8],
            },
            StoreError::ChecksumMismatch {
                what: "snapshot",
                expected: 1,
                actual: 2,
            },
            StoreError::Truncated { what: "snapshot" },
            StoreError::corrupt("wal record", "gap"),
            StoreError::NotDurable,
            StoreError::WalClosed,
        ] {
            assert!(!e.is_transient(), "{e} must be permanent");
        }
    }

    #[test]
    fn io_errors_convert() {
        let e: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, StoreError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
