//! Bounded exponential-backoff retry for transient store failures.
//!
//! A [`RetryPolicy`] wraps one store operation (a WAL append, a snapshot
//! write, a checkpoint) in a bounded retry loop: the operation is attempted
//! once, and on a *transient* failure ([`StoreError::is_transient`]) it is
//! retried up to [`RetryPolicy::max_retries`] more times, sleeping an
//! exponentially growing, deterministically jittered delay between
//! attempts. Permanent failures are returned immediately — retrying a
//! checksum mismatch or a permission error only delays the inevitable.
//!
//! Everything about the schedule is deterministic and inspectable:
//! [`RetryPolicy::backoff`] is a pure function of the attempt index (the
//! jitter comes from a SplitMix64 hash of `seed ^ attempt`, not from a
//! global RNG), and the sleep itself is injectable through the [`Sleeper`]
//! trait so tests assert the exact delay sequence without waiting for it.

use std::time::Duration;

use crate::error::StoreError;

/// Puts the current thread to sleep between retry attempts. Injectable so
/// tests observe the schedule instead of waiting for it.
pub trait Sleeper {
    /// Sleeps for (at least) `d`.
    fn sleep(&mut self, d: Duration);
}

/// The production sleeper: [`std::thread::sleep`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&mut self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A test sleeper that records every requested delay and never sleeps.
#[derive(Debug, Clone, Default)]
pub struct RecordingSleeper {
    /// Every delay requested so far, in order.
    pub slept: Vec<Duration>,
}

impl Sleeper for RecordingSleeper {
    fn sleep(&mut self, d: Duration) {
        self.slept.push(d);
    }
}

/// A bounded exponential-backoff retry schedule for transient failures.
///
/// Delay before retry `i` (0-based) is
/// `min(initial_backoff * multiplier^i, max_backoff)`, scaled by a
/// deterministic jitter factor in `[1 - jitter, 1 + jitter]`.
///
/// ```
/// use stb_store::retry::RetryPolicy;
/// use std::time::Duration;
///
/// let policy = RetryPolicy {
///     max_retries: 3,
///     initial_backoff: Duration::from_millis(1),
///     multiplier: 2.0,
///     max_backoff: Duration::from_millis(50),
///     jitter: 0.0,
///     seed: 0,
/// };
/// let delays: Vec<Duration> = policy.delays().collect();
/// assert_eq!(delays, vec![
///     Duration::from_millis(1),
///     Duration::from_millis(2),
///     Duration::from_millis(4),
/// ]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 disables retrying).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub initial_backoff: Duration,
    /// Growth factor applied per retry (values below 1.0 are clamped to
    /// 1.0 — backoff never shrinks).
    pub multiplier: f64,
    /// Upper bound on any single delay (applied before jitter).
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed of the deterministic jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Three retries at 1 ms / 2 ms / 4 ms (±10 % jitter) — about 7 ms of
    /// patience for an EINTR-class hiccup before durability degrades.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::from_millis(1),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(50),
            jitter: 0.1,
            seed: 0x5742_5354,
        }
    }
}

/// SplitMix64: a tiny, high-quality deterministic bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries (every failure is final).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// A policy with zero backoff — retries happen immediately.
    /// Deterministic tests use this to exercise the retry *logic* without
    /// any wall-clock dependence.
    pub fn immediate(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            initial_backoff: Duration::ZERO,
            multiplier: 1.0,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// The delay before retry `attempt` (0-based), jitter included. A pure
    /// function: the same policy and attempt always yield the same delay.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let multiplier = self.multiplier.max(1.0);
        let base = self.initial_backoff.as_secs_f64() * multiplier.powi(attempt as i32);
        let capped = base.min(self.max_backoff.as_secs_f64().max(0.0));
        let jitter = self.jitter.clamp(0.0, 1.0);
        // Deterministic uniform in [-1, 1] from (seed, attempt).
        let unit = (splitmix64(self.seed ^ u64::from(attempt)) >> 11) as f64 / (1u64 << 53) as f64
            * 2.0
            - 1.0;
        Duration::from_secs_f64((capped * (1.0 + jitter * unit)).max(0.0))
    }

    /// The full delay schedule: one entry per allowed retry.
    pub fn delays(&self) -> impl Iterator<Item = Duration> + '_ {
        (0..self.max_retries).map(|i| self.backoff(i))
    }

    /// An upper bound on the total time this policy can spend sleeping
    /// (the sum of all delays at maximal jitter). Harnesses use it to
    /// assert that recovery-to-durable completes "within the policy's
    /// bound".
    pub fn max_total_backoff(&self) -> Duration {
        let jitter = 1.0 + self.jitter.clamp(0.0, 1.0);
        let total: f64 = self.delays().map(|d| d.as_secs_f64() * jitter).sum::<f64>();
        Duration::from_secs_f64(total)
    }

    /// Runs `op` under this policy with the production sleeper. Returns
    /// the final result plus the number of retries performed.
    pub fn run<T>(
        &self,
        op: impl FnMut() -> Result<T, StoreError>,
    ) -> (Result<T, StoreError>, u32) {
        self.run_with(&mut ThreadSleeper, op)
    }

    /// Runs `op`, retrying transient failures under this policy, sleeping
    /// through `sleeper` between attempts. Permanent failures return
    /// immediately; the second element counts the retries actually
    /// performed (0 = first attempt settled it).
    pub fn run_with<T, S: Sleeper>(
        &self,
        sleeper: &mut S,
        mut op: impl FnMut() -> Result<T, StoreError>,
    ) -> (Result<T, StoreError>, u32) {
        let mut retries = 0u32;
        loop {
            match op() {
                Ok(v) => return (Ok(v), retries),
                Err(e) if e.is_transient() && retries < self.max_retries => {
                    sleeper.sleep(self.backoff(retries));
                    retries += 1;
                }
                Err(e) => return (Err(e), retries),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    fn transient() -> StoreError {
        StoreError::Io(io::Error::new(io::ErrorKind::Interrupted, "blip"))
    }

    fn permanent() -> StoreError {
        StoreError::Io(io::Error::new(io::ErrorKind::PermissionDenied, "denied"))
    }

    fn no_jitter(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            initial_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(35),
            jitter: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn backoff_sequence_doubles_and_caps() {
        let p = no_jitter(5);
        let delays: Vec<Duration> = p.delays().collect();
        assert_eq!(
            delays,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(35), // capped (40 > max)
                Duration::from_millis(35),
                Duration::from_millis(35),
            ]
        );
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let p = RetryPolicy {
            jitter: 0.25,
            max_retries: 64,
            initial_backoff: Duration::from_millis(8),
            multiplier: 1.5,
            max_backoff: Duration::from_secs(1),
            seed: 42,
        };
        let mut distinct = std::collections::HashSet::new();
        for attempt in 0..p.max_retries {
            let raw = RetryPolicy {
                jitter: 0.0,
                ..p.clone()
            }
            .backoff(attempt)
            .as_secs_f64();
            let jittered = p.backoff(attempt).as_secs_f64();
            assert!(
                jittered >= raw * 0.75 - 1e-12 && jittered <= raw * 1.25 + 1e-12,
                "attempt {attempt}: {jittered} outside [{}, {}]",
                raw * 0.75,
                raw * 1.25
            );
            // Pure function of (seed, attempt).
            assert_eq!(p.backoff(attempt), p.backoff(attempt));
            distinct.insert(p.backoff(attempt));
        }
        assert!(distinct.len() > 1, "jitter must actually vary");
    }

    #[test]
    fn exhaustion_returns_last_error_after_max_retries() {
        let p = no_jitter(3);
        let mut sleeper = RecordingSleeper::default();
        let mut calls = 0u32;
        let (result, retries) = p.run_with(&mut sleeper, || {
            calls += 1;
            Err::<(), _>(transient())
        });
        assert!(matches!(result, Err(StoreError::Io(_))));
        assert_eq!(retries, 3);
        assert_eq!(calls, 4, "one initial attempt + three retries");
        assert_eq!(sleeper.slept, p.delays().collect::<Vec<_>>());
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let mut sleeper = RecordingSleeper::default();
        let mut calls = 0u32;
        let (result, retries) = no_jitter(5).run_with(&mut sleeper, || {
            calls += 1;
            Err::<(), _>(permanent())
        });
        assert!(result.is_err());
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
        assert!(sleeper.slept.is_empty());
    }

    #[test]
    fn success_after_transient_failures() {
        let mut sleeper = RecordingSleeper::default();
        let mut calls = 0u32;
        let (result, retries) = no_jitter(5).run_with(&mut sleeper, || {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok(99)
            }
        });
        assert_eq!(result.ok(), Some(99));
        assert_eq!(retries, 2);
        assert_eq!(sleeper.slept.len(), 2);
    }

    #[test]
    fn zero_retries_policy_fails_fast() {
        let mut calls = 0u32;
        let (result, retries) =
            RetryPolicy::none().run_with(&mut RecordingSleeper::default(), || {
                calls += 1;
                Err::<(), _>(transient())
            });
        assert!(result.is_err());
        assert_eq!(retries, 0);
        assert_eq!(calls, 1);
    }

    #[test]
    fn immediate_policy_has_zero_delays() {
        let p = RetryPolicy::immediate(4);
        assert!(p.delays().all(|d| d.is_zero()));
        assert_eq!(p.max_total_backoff(), Duration::ZERO);
    }

    #[test]
    fn max_total_backoff_bounds_the_schedule() {
        let p = RetryPolicy::default();
        let total: Duration = p.delays().sum();
        assert!(p.max_total_backoff() >= total);
    }

    #[test]
    fn shrinking_multiplier_is_clamped() {
        let p = RetryPolicy {
            multiplier: 0.5,
            jitter: 0.0,
            ..no_jitter(3)
        };
        assert_eq!(p.backoff(0), p.backoff(1), "backoff must never shrink");
    }
}
