//! Durable persistence for the spatiotemporal burstiness engine.
//!
//! The live ingestion pipeline (`stb-ingest`) keeps everything in memory;
//! this crate makes that state survive restarts and crashes:
//!
//! * [`snapshot`] — a versioned, checksummed binary snapshot of the full
//!   engine state (collection tensor, mined patterns with captured spatial
//!   footprints, finalized posting lists, and the pipeline's pending
//!   bookkeeping), written atomically via temp-file + rename.
//! * [`wal`] — a write-ahead log of committed ticks: length-prefixed,
//!   CRC-framed [`TickRecord`]s with a configurable [`Durability`] policy,
//!   and tail-repair on read (a torn final record is discarded, never
//!   fatal).
//! * [`store`] — the directory layout tying the two together: recovery is
//!   `load_snapshot + replay_wal`, and a checkpoint is `write_snapshot`
//!   followed by truncating the log.
//! * [`fault`] — deterministic fault injection: crash artifacts
//!   ([`FaultFile`], bit flips, truncation) for the crash-recovery
//!   proptest harness, and scripted live-error schedules
//!   ([`FaultSchedule`]) for the chaos harness.
//! * [`retry`] — bounded exponential-backoff retry ([`RetryPolicy`]) for
//!   transient store failures, with injectable sleep for deterministic
//!   tests.
//! * [`codec`] — the little-endian primitives everything is built from;
//!   `f64`s are persisted as IEEE 754 bit patterns so recovered scores are
//!   byte-identical.
//! * [`error`] — [`StoreError`]: every corruption mode is a typed,
//!   matchable error. Corrupt files fail closed; they never load as an
//!   empty index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codec;
pub mod error;
pub mod fault;
pub mod retry;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::{crc32, Dec, Enc};
pub use error::StoreError;
pub use fault::{
    crash_artifact, flip_bit, flip_bit_file, truncate_bytes, truncate_file, FaultError, FaultFile,
    FaultKind, FaultSchedule, FaultSite, InjectedFault,
};
pub use retry::{RecordingSleeper, RetryPolicy, Sleeper, ThreadSleeper};
pub use snapshot::{
    read_snapshot, write_snapshot, write_snapshot_with_faults, PendingState, SnapshotState,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use store::{Store, SNAPSHOT_FILE, WAL_FILE};
pub use wal::{
    decode_wal, read_wal, DocRecord, Durability, StreamRecord, SyncWrite, TermRecord, TickRecord,
    WalObs, WalReplay, WalWriter, WAL_HEADER_LEN, WAL_MAGIC, WAL_VERSION,
};
