//! Deterministic fault injection for crash-recovery tests.
//!
//! [`FaultFile`] wraps an in-memory sink and simulates a process crash at
//! an exact global byte offset: everything up to the offset is persisted,
//! and depending on the [`FaultKind`] the rest of the interrupted write is
//! either dropped (a *short write*) or replaced with deterministic garbage
//! (a *torn write* — the disk persisted part of a sector as junk). Writes
//! after the crash point report success but go nowhere, mimicking a
//! process that keeps running against a dead disk until it is killed.
//!
//! The proptest harness in `stb-ingest` uses this the other way around:
//! it first produces the *clean* WAL/snapshot bytes, then replays them
//! through a `FaultFile` at a random offset to synthesize the exact
//! artifact a crash at that offset would have left on disk.
//!
//! The standalone helpers [`truncate_bytes`] and [`flip_bit`] (plus their
//! file-backed variants) cover the remaining corruption modes: truncation
//! at arbitrary lengths and single-bit flips.

use std::io::{self, Write};
use std::path::Path;

use crate::error::StoreError;
use crate::wal::SyncWrite;

/// What happens to the write that straddles the crash offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The interrupted write stops exactly at the crash offset; nothing
    /// after it reaches the file.
    ShortWrite,
    /// The interrupted write's remainder is persisted as deterministic
    /// garbage (each byte XORed with a position-dependent mask) — the
    /// kernel got the buffer but the sector content was mangled.
    Torn,
}

/// An in-memory sink that crashes deterministically at a byte offset.
#[derive(Debug)]
pub struct FaultFile {
    written: Vec<u8>,
    crash_at: u64,
    kind: FaultKind,
    crashed: bool,
}

impl FaultFile {
    /// A sink that will crash once `crash_at` total bytes have been
    /// written.
    pub fn new(kind: FaultKind, crash_at: u64) -> Self {
        FaultFile {
            written: Vec::new(),
            crash_at,
            kind,
            crashed: false,
        }
    }

    /// Whether the crash offset has been reached.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The bytes that made it to "disk" — the crash artifact.
    pub fn into_bytes(self) -> Vec<u8> {
        self.written
    }

    /// The bytes that made it to "disk", borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.written
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.crashed {
            // The process believes the write succeeded; the disk is gone.
            return Ok(buf.len());
        }
        let pos = self.written.len() as u64;
        if pos + buf.len() as u64 <= self.crash_at {
            self.written.extend_from_slice(buf);
            return Ok(buf.len());
        }
        let keep = (self.crash_at - pos) as usize;
        self.written.extend_from_slice(&buf[..keep]);
        if self.kind == FaultKind::Torn {
            // Persist the remainder as deterministic garbage.
            for (i, &b) in buf[keep..].iter().enumerate() {
                let mask = 0xA5u8 ^ ((i as u8).wrapping_mul(31)).wrapping_add(17);
                self.written.push(b ^ mask.max(1));
            }
        }
        self.crashed = true;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SyncWrite for FaultFile {}

/// Replays `clean` through a [`FaultFile`] crashing at `crash_at`,
/// returning the artifact a crash at that offset would have left. The
/// clean bytes are offered in `chunk`-sized writes so the torn-write
/// garbage stays bounded to one chunk, like a real buffered writer.
pub fn crash_artifact(clean: &[u8], kind: FaultKind, crash_at: u64, chunk: usize) -> Vec<u8> {
    let chunk = chunk.max(1);
    let mut f = FaultFile::new(kind, crash_at);
    for piece in clean.chunks(chunk) {
        f.write_all(piece).expect("FaultFile never errors");
    }
    f.into_bytes()
}

/// Truncates a byte vector to `len` (no-op if already shorter).
pub fn truncate_bytes(mut bytes: Vec<u8>, len: usize) -> Vec<u8> {
    bytes.truncate(len);
    bytes
}

/// Flips one bit of a byte slice in place.
///
/// # Panics
///
/// Panics if `byte` is out of range or `bit > 7`.
pub fn flip_bit(bytes: &mut [u8], byte: usize, bit: u8) {
    assert!(bit < 8, "bit index out of range");
    bytes[byte] ^= 1 << bit;
}

/// Truncates a file on disk to `len` bytes.
pub fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_data()?;
    Ok(())
}

/// Flips one bit of a file on disk.
pub fn flip_bit_file(path: &Path, byte: u64, bit: u8) -> Result<(), StoreError> {
    let mut bytes = std::fs::read(path)?;
    let idx = usize::try_from(byte)
        .ok()
        .filter(|&i| i < bytes.len())
        .ok_or_else(|| StoreError::corrupt("fault", format!("byte offset {byte} out of range")))?;
    flip_bit(&mut bytes, idx, bit);
    std::fs::write(path, &bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_write_stops_at_offset() {
        let mut f = FaultFile::new(FaultKind::ShortWrite, 5);
        f.write_all(b"hello world").unwrap();
        assert!(f.crashed());
        assert_eq!(f.bytes(), b"hello");
        // Later writes succeed but are dropped.
        f.write_all(b"more").unwrap();
        assert_eq!(f.into_bytes(), b"hello");
    }

    #[test]
    fn torn_write_mangles_the_remainder() {
        let mut f = FaultFile::new(FaultKind::Torn, 5);
        f.write_all(b"hello world").unwrap();
        let bytes = f.into_bytes();
        assert_eq!(&bytes[..5], b"hello");
        assert_eq!(bytes.len(), 11);
        // The tail is garbage, not the original bytes.
        assert_ne!(&bytes[5..], b" world");
    }

    #[test]
    fn torn_write_is_deterministic() {
        let a = crash_artifact(b"abcdefghij", FaultKind::Torn, 4, 3);
        let b = crash_artifact(b"abcdefghij", FaultKind::Torn, 4, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn crash_beyond_end_is_clean() {
        let artifact = crash_artifact(b"abc", FaultKind::ShortWrite, 100, 2);
        assert_eq!(artifact, b"abc");
    }

    #[test]
    fn crash_at_zero_is_empty_or_garbage_only() {
        let artifact = crash_artifact(b"abc", FaultKind::ShortWrite, 0, 8);
        assert!(artifact.is_empty());
    }

    #[test]
    fn torn_garbage_is_bounded_by_chunk() {
        let artifact = crash_artifact(&[7u8; 100], FaultKind::Torn, 10, 4);
        // Crash mid-chunk: 10 clean bytes + at most the rest of that chunk.
        assert!(artifact.len() <= 12, "len {}", artifact.len());
    }

    #[test]
    fn bit_flip_round_trip() {
        let mut bytes = vec![0u8; 4];
        flip_bit(&mut bytes, 2, 7);
        assert_eq!(bytes, vec![0, 0, 0x80, 0]);
        flip_bit(&mut bytes, 2, 7);
        assert_eq!(bytes, vec![0u8; 4]);
    }

    #[test]
    fn file_helpers_work() {
        let dir = std::env::temp_dir().join(format!("stb-fault-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        std::fs::write(&path, [0u8, 1, 2, 3]).unwrap();
        truncate_file(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0u8, 1]);
        flip_bit_file(&path, 1, 0).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0u8, 0]);
        assert!(flip_bit_file(&path, 99, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
