//! Deterministic fault injection for crash-recovery tests.
//!
//! [`FaultFile`] wraps an in-memory sink and simulates a process crash at
//! an exact global byte offset: everything up to the offset is persisted,
//! and depending on the [`FaultKind`] the rest of the interrupted write is
//! either dropped (a *short write*) or replaced with deterministic garbage
//! (a *torn write* — the disk persisted part of a sector as junk). Writes
//! after the crash point report success but go nowhere, mimicking a
//! process that keeps running against a dead disk until it is killed.
//!
//! The proptest harness in `stb-ingest` uses this the other way around:
//! it first produces the *clean* WAL/snapshot bytes, then replays them
//! through a `FaultFile` at a random offset to synthesize the exact
//! artifact a crash at that offset would have left on disk.
//!
//! The standalone helpers [`truncate_bytes`] and [`flip_bit`] (plus their
//! file-backed variants) cover the remaining corruption modes: truncation
//! at arbitrary lengths and single-bit flips.
//!
//! [`FaultSchedule`] is the chaos-harness side of the module: a cloneable,
//! scripted queue of injected errors that the store consults at every
//! syscall site ([`FaultSite`]) — WAL appends and syncs, snapshot writes,
//! renames, directory fsyncs, reads. Unlike [`FaultFile`] (which models
//! *crashes*), a schedule models a *live but misbehaving* disk: operations
//! fail with transient (`EINTR`-class) or permanent errors in a
//! deterministic order, and the process keeps running to observe how the
//! retry/degraded-mode machinery responds.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

use crate::error::StoreError;
use crate::wal::SyncWrite;

/// What happens to the write that straddles the crash offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The interrupted write stops exactly at the crash offset; nothing
    /// after it reaches the file.
    ShortWrite,
    /// The interrupted write's remainder is persisted as deterministic
    /// garbage (each byte XORed with a position-dependent mask) — the
    /// kernel got the buffer but the sector content was mangled.
    Torn,
}

/// An in-memory sink that crashes deterministically at a byte offset.
#[derive(Debug)]
pub struct FaultFile {
    written: Vec<u8>,
    crash_at: u64,
    kind: FaultKind,
    crashed: bool,
}

impl FaultFile {
    /// A sink that will crash once `crash_at` total bytes have been
    /// written.
    pub fn new(kind: FaultKind, crash_at: u64) -> Self {
        FaultFile {
            written: Vec::new(),
            crash_at,
            kind,
            crashed: false,
        }
    }

    /// Whether the crash offset has been reached.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// The bytes that made it to "disk" — the crash artifact.
    pub fn into_bytes(self) -> Vec<u8> {
        self.written
    }

    /// The bytes that made it to "disk", borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.written
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.crashed {
            // The process believes the write succeeded; the disk is gone.
            return Ok(buf.len());
        }
        let pos = self.written.len() as u64;
        if pos + buf.len() as u64 <= self.crash_at {
            self.written.extend_from_slice(buf);
            return Ok(buf.len());
        }
        let keep = (self.crash_at - pos) as usize;
        self.written.extend_from_slice(&buf[..keep]);
        if self.kind == FaultKind::Torn {
            // Persist the remainder as deterministic garbage.
            for (i, &b) in buf[keep..].iter().enumerate() {
                let mask = 0xA5u8 ^ ((i as u8).wrapping_mul(31)).wrapping_add(17);
                self.written.push(b ^ mask.max(1));
            }
        }
        self.crashed = true;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SyncWrite for FaultFile {}

/// Replays `clean` through a [`FaultFile`] crashing at `crash_at`,
/// returning the artifact a crash at that offset would have left. The
/// clean bytes are offered in `chunk`-sized writes so the torn-write
/// garbage stays bounded to one chunk, like a real buffered writer.
pub fn crash_artifact(clean: &[u8], kind: FaultKind, crash_at: u64, chunk: usize) -> Vec<u8> {
    let chunk = chunk.max(1);
    let mut f = FaultFile::new(kind, crash_at);
    for piece in clean.chunks(chunk) {
        // FaultFile::write is infallible (failed writes are modelled as
        // silently dropped bytes), so the Result carries no information.
        let _ = f.write_all(piece);
    }
    f.into_bytes()
}

/// The store syscall sites at which a [`FaultSchedule`] can inject errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultSite {
    /// Opening (or creating) the WAL file for appending.
    WalOpen,
    /// Writing one framed record to the WAL.
    WalAppend,
    /// Syncing the WAL (`fdatasync` under `Durability::Fsync`).
    WalSync,
    /// Truncating the WAL back to an empty header after a checkpoint.
    WalReset,
    /// Reading the WAL back during recovery.
    WalRead,
    /// Writing the snapshot bytes to the temp file.
    SnapshotWrite,
    /// Syncing the snapshot temp file before the rename.
    SnapshotSync,
    /// Renaming the snapshot temp file over the live snapshot.
    SnapshotRename,
    /// Reading the snapshot during recovery.
    SnapshotRead,
    /// Syncing the store directory after a rename or header write.
    DirSync,
}

/// Whether an injected error reads as retryable to
/// [`StoreError::is_transient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// Injected as [`io::ErrorKind::Interrupted`] — a retry may succeed.
    Transient,
    /// Injected as [`io::ErrorKind::PermissionDenied`] — retries are
    /// pointless; the policy must fail over immediately.
    Permanent,
}

/// One scripted fault: the error class plus, for write sites, how many
/// bytes of the attempted write land on disk before the error fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The error class reported to the caller.
    pub error: FaultError,
    /// For [`FaultSite::WalAppend`]: the number of leading bytes of the
    /// frame that are persisted *before* the failure — a torn partial
    /// frame the next recovery must repair. `None` means the write fails
    /// cleanly with nothing persisted.
    pub partial_bytes: Option<usize>,
}

impl InjectedFault {
    /// A transient fault that persists nothing.
    pub fn transient() -> Self {
        InjectedFault {
            error: FaultError::Transient,
            partial_bytes: None,
        }
    }

    /// A permanent fault that persists nothing.
    pub fn permanent() -> Self {
        InjectedFault {
            error: FaultError::Permanent,
            partial_bytes: None,
        }
    }

    /// A transient fault that first persists `n` bytes of the attempted
    /// write (a torn tail for recovery to repair).
    pub fn torn(n: usize) -> Self {
        InjectedFault {
            error: FaultError::Transient,
            partial_bytes: Some(n),
        }
    }

    /// The `io::Error` this fault surfaces as.
    pub fn to_io_error(self) -> io::Error {
        match self.error {
            FaultError::Transient => {
                io::Error::new(io::ErrorKind::Interrupted, "injected transient fault")
            }
            FaultError::Permanent => {
                io::Error::new(io::ErrorKind::PermissionDenied, "injected permanent fault")
            }
        }
    }
}

#[derive(Debug, Default)]
struct ScheduleInner {
    /// Faults consumed by *any* site, in order, after per-site queues.
    /// `None` entries are explicit "this operation succeeds" slots, letting
    /// a script interleave failures and successes deterministically.
    global: VecDeque<Option<InjectedFault>>,
    /// Faults consumed only by a specific site, checked first.
    per_site: HashMap<FaultSite, VecDeque<InjectedFault>>,
    /// Total store operations that consulted the schedule.
    ops: u64,
    /// Total faults injected.
    injected: u64,
}

/// A deterministic, scripted schedule of injected store faults.
///
/// Cloning shares the underlying queue (it is an `Arc`), so the same
/// schedule handed to a [`crate::Store`] can be healed or extended from
/// the test while the store runs. Every consultation is ordered: per-site
/// queues win over the global queue, and an empty schedule injects
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    inner: Arc<Mutex<ScheduleInner>>,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing until primed).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ScheduleInner> {
        // A panicking store test must not cascade into poisoned-mutex
        // noise: the schedule state is plain data, safe to keep using.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queues `fault` to fire on the next consultation of any site.
    pub fn fail_next(&self, fault: InjectedFault) {
        self.lock().global.push_back(Some(fault));
    }

    /// Queues `fault` to fire on the next consultation of `site`
    /// specifically (checked before the global queue).
    pub fn fail_next_at(&self, site: FaultSite, fault: InjectedFault) {
        self.lock()
            .per_site
            .entry(site)
            .or_default()
            .push_back(fault);
    }

    /// Queues an explicit success slot on the global queue — the next
    /// operation is let through even if more faults are queued behind it.
    pub fn succeed_next(&self) {
        self.lock().global.push_back(None);
    }

    /// Drops every queued fault: the disk is healthy again.
    pub fn heal(&self) {
        let mut inner = self.lock();
        inner.global.clear();
        inner.per_site.clear();
    }

    /// Whether any fault is still queued.
    pub fn is_armed(&self) -> bool {
        let inner = self.lock();
        inner.global.iter().any(Option::is_some) || inner.per_site.values().any(|q| !q.is_empty())
    }

    /// Total operations that consulted this schedule.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.lock().injected
    }

    /// Primes a deterministic "fault storm": `n` slots on the global
    /// queue, roughly `fail_permille`/1000 of which are transient faults
    /// (the rest are success slots), position-shuffled by `seed`. Storms
    /// never queue permanent faults — they model a flaky disk, not a dead
    /// one — so a pipeline retrying through one must eventually return to
    /// durable once the storm drains.
    pub fn storm(&self, seed: u64, n: usize, fail_permille: u32) {
        let mut state = seed | 1;
        let mut inner = self.lock();
        for _ in 0..n {
            // xorshift64* — cheap, deterministic, good enough to decorrelate
            // fault positions from record boundaries.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let roll = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as u32 % 1000;
            if roll < fail_permille.min(1000) {
                inner.global.push_back(Some(InjectedFault::transient()));
            } else {
                inner.global.push_back(None);
            }
        }
    }

    /// Consults the schedule at `site`. `Some(fault)` means the operation
    /// must fail with that fault; `None` means it proceeds normally.
    pub fn check(&self, site: FaultSite) -> Option<InjectedFault> {
        let mut inner = self.lock();
        inner.ops += 1;
        let fault = if let Some(f) = inner.per_site.get_mut(&site).and_then(VecDeque::pop_front) {
            Some(f)
        } else {
            inner.global.pop_front().flatten()
        };
        if fault.is_some() {
            inner.injected += 1;
        }
        fault
    }

    /// Consults the schedule at `site` and converts a hit into an `Err`.
    /// The store's write paths call this before touching the file system.
    pub fn check_io(&self, site: FaultSite) -> io::Result<()> {
        match self.check(site) {
            Some(f) => Err(f.to_io_error()),
            None => Ok(()),
        }
    }
}

/// Truncates a byte vector to `len` (no-op if already shorter).
pub fn truncate_bytes(mut bytes: Vec<u8>, len: usize) -> Vec<u8> {
    bytes.truncate(len);
    bytes
}

/// Flips one bit of a byte slice in place.
///
/// # Panics
///
/// Panics if `byte` is out of range or `bit > 7`.
pub fn flip_bit(bytes: &mut [u8], byte: usize, bit: u8) {
    assert!(bit < 8, "bit index out of range");
    bytes[byte] ^= 1 << bit;
}

/// Truncates a file on disk to `len` bytes.
pub fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_data()?;
    Ok(())
}

/// Flips one bit of a file on disk.
pub fn flip_bit_file(path: &Path, byte: u64, bit: u8) -> Result<(), StoreError> {
    let mut bytes = std::fs::read(path)?;
    let idx = usize::try_from(byte)
        .ok()
        .filter(|&i| i < bytes.len())
        .ok_or_else(|| StoreError::corrupt("fault", format!("byte offset {byte} out of range")))?;
    flip_bit(&mut bytes, idx, bit);
    std::fs::write(path, &bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_write_stops_at_offset() {
        let mut f = FaultFile::new(FaultKind::ShortWrite, 5);
        f.write_all(b"hello world").unwrap();
        assert!(f.crashed());
        assert_eq!(f.bytes(), b"hello");
        // Later writes succeed but are dropped.
        f.write_all(b"more").unwrap();
        assert_eq!(f.into_bytes(), b"hello");
    }

    #[test]
    fn torn_write_mangles_the_remainder() {
        let mut f = FaultFile::new(FaultKind::Torn, 5);
        f.write_all(b"hello world").unwrap();
        let bytes = f.into_bytes();
        assert_eq!(&bytes[..5], b"hello");
        assert_eq!(bytes.len(), 11);
        // The tail is garbage, not the original bytes.
        assert_ne!(&bytes[5..], b" world");
    }

    #[test]
    fn torn_write_is_deterministic() {
        let a = crash_artifact(b"abcdefghij", FaultKind::Torn, 4, 3);
        let b = crash_artifact(b"abcdefghij", FaultKind::Torn, 4, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn crash_beyond_end_is_clean() {
        let artifact = crash_artifact(b"abc", FaultKind::ShortWrite, 100, 2);
        assert_eq!(artifact, b"abc");
    }

    #[test]
    fn crash_at_zero_is_empty_or_garbage_only() {
        let artifact = crash_artifact(b"abc", FaultKind::ShortWrite, 0, 8);
        assert!(artifact.is_empty());
    }

    #[test]
    fn torn_garbage_is_bounded_by_chunk() {
        let artifact = crash_artifact(&[7u8; 100], FaultKind::Torn, 10, 4);
        // Crash mid-chunk: 10 clean bytes + at most the rest of that chunk.
        assert!(artifact.len() <= 12, "len {}", artifact.len());
    }

    #[test]
    fn bit_flip_round_trip() {
        let mut bytes = vec![0u8; 4];
        flip_bit(&mut bytes, 2, 7);
        assert_eq!(bytes, vec![0, 0, 0x80, 0]);
        flip_bit(&mut bytes, 2, 7);
        assert_eq!(bytes, vec![0u8; 4]);
    }

    #[test]
    fn schedule_consumes_in_order() {
        let s = FaultSchedule::new();
        s.fail_next(InjectedFault::transient());
        s.succeed_next();
        s.fail_next(InjectedFault::permanent());
        assert_eq!(
            s.check(FaultSite::WalAppend),
            Some(InjectedFault::transient())
        );
        assert_eq!(s.check(FaultSite::WalSync), None);
        assert_eq!(
            s.check(FaultSite::SnapshotWrite),
            Some(InjectedFault::permanent())
        );
        assert_eq!(
            s.check(FaultSite::WalAppend),
            None,
            "drained schedule is clean"
        );
        assert_eq!(s.ops(), 4);
        assert_eq!(s.injected(), 2);
    }

    #[test]
    fn per_site_queue_wins_over_global() {
        let s = FaultSchedule::new();
        s.fail_next(InjectedFault::transient());
        s.fail_next_at(FaultSite::SnapshotRename, InjectedFault::permanent());
        // The rename consumes its own queue, leaving the global fault for
        // the next site that asks.
        assert_eq!(
            s.check(FaultSite::SnapshotRename),
            Some(InjectedFault::permanent())
        );
        assert_eq!(
            s.check(FaultSite::WalAppend),
            Some(InjectedFault::transient())
        );
    }

    #[test]
    fn heal_clears_everything() {
        let s = FaultSchedule::new();
        s.storm(42, 100, 500);
        assert!(s.is_armed());
        s.heal();
        assert!(!s.is_armed());
        assert_eq!(s.check(FaultSite::WalAppend), None);
    }

    #[test]
    fn storm_is_deterministic_and_transient_only() {
        let a = FaultSchedule::new();
        let b = FaultSchedule::new();
        a.storm(7, 200, 300);
        b.storm(7, 200, 300);
        let mut hits = 0;
        for _ in 0..200 {
            let fa = a.check(FaultSite::WalAppend);
            let fb = b.check(FaultSite::WalAppend);
            assert_eq!(fa, fb, "same seed, same schedule");
            if let Some(f) = fa {
                assert_eq!(f.error, FaultError::Transient);
                hits += 1;
            }
        }
        assert!(hits > 20 && hits < 120, "storm density off: {hits}/200");
    }

    #[test]
    fn injected_errors_classify_correctly() {
        let t: StoreError = InjectedFault::transient().to_io_error().into();
        let p: StoreError = InjectedFault::permanent().to_io_error().into();
        assert!(t.is_transient());
        assert!(!p.is_transient());
    }

    #[test]
    fn clones_share_the_queue() {
        let s = FaultSchedule::new();
        let handle = s.clone();
        s.fail_next(InjectedFault::transient());
        assert!(handle.check(FaultSite::WalAppend).is_some());
        assert!(s.check(FaultSite::WalAppend).is_none());
    }

    #[test]
    fn file_helpers_work() {
        let dir = std::env::temp_dir().join(format!("stb-fault-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        std::fs::write(&path, [0u8, 1, 2, 3]).unwrap();
        truncate_file(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0u8, 1]);
        flip_bit_file(&path, 1, 0).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0u8, 0]);
        assert!(flip_bit_file(&path, 99, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
