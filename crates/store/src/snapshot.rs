//! Versioned, checksummed binary snapshots of the full engine state.
//!
//! A snapshot freezes everything the ingestion pipeline and search engine
//! have computed — the collection tensor, the mined patterns with their
//! captured spatial footprints, the finalized posting lists, and the
//! pipeline's *pending* bookkeeping (dirty terms, staged documents,
//! structural flags) — so a restarted process resumes from
//! `load_snapshot + replay_wal` byte-identically to a process that never
//! stopped.
//!
//! # On-disk format
//!
//! ```text
//! "STBSNAP0" (8 bytes)  version: u32  payload_len: u64  payload_crc: u32
//! payload: payload_len bytes
//! ```
//!
//! The payload is encoded with the little-endian [`crate::codec`]
//! primitives; every `f64` is persisted as its IEEE 754 bit pattern so
//! round trips preserve score bits exactly. Snapshots are written
//! atomically: the bytes go to a temp file in the same directory, which is
//! synced and then renamed over the destination, followed by a
//! parent-directory fsync — a crash at any point leaves either the old
//! snapshot or the new one, never a hybrid.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

use stb_core::PatternRecord;
use stb_corpus::DocId;
use stb_corpus::{Collection, CollectionParts, Document, StreamId, StreamMeta, TermId};
use stb_geo::{GeoPoint, Point2D, Rect};
use stb_search::{EngineState, Posting};
use stb_timeseries::TimeInterval;

use crate::codec::{crc32, Dec, Enc};
use crate::error::StoreError;
use crate::fault::{FaultSchedule, FaultSite};
use crate::wal::DocRecord;

/// The snapshot file magic number.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"STBSNAP0";
/// The single snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The ingestion pipeline's uncommitted bookkeeping at snapshot time.
///
/// A snapshot is not necessarily taken at a quiescent point: documents may
/// be staged but uncommitted, terms may be awaiting re-mining, and a newly
/// added stream may have flagged a structural change whose full re-mine
/// has not happened yet. Dropping any of that on recovery would make the
/// next commit diverge from the never-crashed run, so it is persisted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PendingState {
    /// A stream was added since the last commit (forces an all-term
    /// re-mine on the next commit).
    pub structural_dirty: bool,
    /// The timeline grew since the last `STComb` re-mine.
    pub comb_all_dirty: bool,
    /// Terms whose patterns must be re-mined at the next commit, sorted.
    pub dirty_terms: Vec<TermId>,
    /// Documents staged but not yet committed, in arrival order.
    pub staged: Vec<DocRecord>,
}

/// Everything a recovered process needs: the committed tick count, the
/// collection, the engine's derived state, and the pipeline's pending
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct SnapshotState {
    /// Number of ticks committed when the snapshot was taken. WAL records
    /// with `tick < ticks_committed` are already reflected here and are
    /// skipped during replay.
    pub ticks_committed: u64,
    /// The collection tensor.
    pub collection: Arc<Collection>,
    /// Mined patterns and finalized posting lists.
    pub engine: EngineState,
    /// Uncommitted pipeline bookkeeping.
    pub pending: PendingState,
}

// ---------------------------------------------------------------------
// Section codecs. Each record type has its own encode/decode pair so the
// unit tests can round-trip them in isolation.
// ---------------------------------------------------------------------

/// Encodes a collection (as its [`CollectionParts`]) into `e`.
pub fn encode_collection(e: &mut Enc, collection: &Collection) {
    let parts = collection.to_parts();
    e.put_u32(parts.terms.len() as u32);
    for term in &parts.terms {
        e.put_str(term);
    }
    e.put_u32(parts.streams.len() as u32);
    for s in &parts.streams {
        e.put_str(&s.name);
        e.put_f64(s.geostamp.lat);
        e.put_f64(s.geostamp.lon);
        e.put_f64(s.position.x);
        e.put_f64(s.position.y);
    }
    e.put_usize(parts.timeline_len);
    e.put_u32(parts.documents.len() as u32);
    for d in &parts.documents {
        e.put_u32(d.stream.0);
        e.put_usize(d.timestamp);
        let mut counts: Vec<(TermId, u32)> = d.counts.iter().map(|(&t, &c)| (t, c)).collect();
        counts.sort_by_key(|&(t, _)| t);
        e.put_u32(counts.len() as u32);
        for (t, c) in counts {
            e.put_u32(t.0);
            e.put_u32(c);
        }
    }
    e.put_u32(parts.term_freqs.len() as u32);
    for (term, streams) in &parts.term_freqs {
        e.put_u32(term.0);
        e.put_u32(streams.len() as u32);
        for (stream, entries) in streams {
            e.put_u32(stream.0);
            e.put_u32(entries.len() as u32);
            for &(ts, f) in entries {
                e.put_usize(ts);
                e.put_f64(f);
            }
        }
    }
    e.put_u32(parts.stream_totals.len() as u32);
    for totals in &parts.stream_totals {
        e.put_u32(totals.len() as u32);
        for &v in totals {
            e.put_f64(v);
        }
    }
}

/// Decodes a collection, validating every structural invariant via
/// [`Collection::from_parts`].
pub fn decode_collection(d: &mut Dec<'_>) -> Result<Collection, StoreError> {
    let n_terms = d.get_count(4)?;
    let mut terms = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        terms.push(d.get_str()?);
    }
    let n_streams = d.get_count(4)?;
    let mut streams = Vec::with_capacity(n_streams);
    for i in 0..n_streams {
        let name = d.get_str()?;
        let lat = d.get_f64()?;
        let lon = d.get_f64()?;
        let x = d.get_f64()?;
        let y = d.get_f64()?;
        streams.push(StreamMeta {
            id: StreamId(i as u32),
            name,
            geostamp: GeoPoint { lat, lon },
            position: Point2D { x, y },
        });
    }
    let timeline_len = d.get_usize()?;
    let n_docs = d.get_count(4)?;
    let mut documents = Vec::with_capacity(n_docs);
    for i in 0..n_docs {
        let stream = StreamId(d.get_u32()?);
        let timestamp = d.get_usize()?;
        let n_counts = d.get_count(8)?;
        let mut counts = std::collections::HashMap::with_capacity(n_counts);
        for _ in 0..n_counts {
            let term = TermId(d.get_u32()?);
            let count = d.get_u32()?;
            counts.insert(term, count);
        }
        documents.push(Document {
            id: DocId(i as u32),
            stream,
            timestamp,
            counts,
        });
    }
    let n_tf = d.get_count(4)?;
    let mut term_freqs = Vec::with_capacity(n_tf);
    for _ in 0..n_tf {
        let term = TermId(d.get_u32()?);
        let n_streams = d.get_count(4)?;
        let mut per_stream = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            let stream = StreamId(d.get_u32()?);
            let n_entries = d.get_count(16)?;
            let mut entries = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                let ts = d.get_usize()?;
                let f = d.get_f64()?;
                entries.push((ts, f));
            }
            per_stream.push((stream, entries));
        }
        term_freqs.push((term, per_stream));
    }
    let n_totals = d.get_count(4)?;
    let mut stream_totals = Vec::with_capacity(n_totals);
    for _ in 0..n_totals {
        let len = d.get_count(8)?;
        let mut totals = Vec::with_capacity(len);
        for _ in 0..len {
            totals.push(d.get_f64()?);
        }
        stream_totals.push(totals);
    }
    let parts = CollectionParts {
        terms,
        streams,
        timeline_len,
        documents,
        term_freqs,
        stream_totals,
    };
    Collection::from_parts(parts)
        .map_err(|e| StoreError::corrupt("snapshot", e.detail().to_string()))
}

/// Encodes one pattern record.
pub fn encode_pattern(e: &mut Enc, p: &PatternRecord) {
    e.put_u32(p.streams.len() as u32);
    for s in &p.streams {
        e.put_u32(s.0);
    }
    e.put_usize(p.timeframe.start);
    e.put_usize(p.timeframe.end);
    match &p.region {
        Some(r) => {
            e.put_bool(true);
            e.put_f64(r.min_x);
            e.put_f64(r.min_y);
            e.put_f64(r.max_x);
            e.put_f64(r.max_y);
        }
        None => e.put_bool(false),
    }
    e.put_f64(p.score);
}

/// Decodes one pattern record.
pub fn decode_pattern(d: &mut Dec<'_>) -> Result<PatternRecord, StoreError> {
    let n = d.get_count(4)?;
    let mut streams = Vec::with_capacity(n);
    for _ in 0..n {
        streams.push(StreamId(d.get_u32()?));
    }
    let start = d.get_usize()?;
    let end = d.get_usize()?;
    if start > end {
        return Err(StoreError::corrupt(
            "snapshot",
            format!("pattern timeframe [{start}, {end}] is inverted"),
        ));
    }
    let region = if d.get_bool()? {
        let min_x = d.get_f64()?;
        let min_y = d.get_f64()?;
        let max_x = d.get_f64()?;
        let max_y = d.get_f64()?;
        Some(Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        })
    } else {
        None
    };
    let score = d.get_f64()?;
    Ok(PatternRecord {
        streams,
        timeframe: TimeInterval { start, end },
        region,
        score,
    })
}

/// Encodes the engine's exported state.
pub fn encode_engine(e: &mut Enc, state: &EngineState) {
    e.put_u32(state.patterns.len() as u32);
    for (term, records) in &state.patterns {
        e.put_u32(term.0);
        e.put_u32(records.len() as u32);
        for r in records {
            encode_pattern(e, r);
        }
    }
    e.put_bool(state.finalized);
    e.put_u32(state.postings.len() as u32);
    for (term, list) in &state.postings {
        e.put_u32(term.0);
        e.put_u32(list.len() as u32);
        for p in list {
            e.put_u32(p.doc.0);
            e.put_f64(p.score);
        }
    }
}

/// Decodes the engine's exported state.
pub fn decode_engine(d: &mut Dec<'_>) -> Result<EngineState, StoreError> {
    let n_terms = d.get_count(4)?;
    let mut patterns = Vec::with_capacity(n_terms);
    for _ in 0..n_terms {
        let term = TermId(d.get_u32()?);
        let n = d.get_count(8)?;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            records.push(decode_pattern(d)?);
        }
        patterns.push((term, records));
    }
    let finalized = d.get_bool()?;
    let n_postings = d.get_count(4)?;
    let mut postings = Vec::with_capacity(n_postings);
    for _ in 0..n_postings {
        let term = TermId(d.get_u32()?);
        let n = d.get_count(12)?;
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            let doc = DocId(d.get_u32()?);
            let score = d.get_f64()?;
            list.push(Posting { doc, score });
        }
        postings.push((term, list));
    }
    if !finalized && !postings.is_empty() {
        return Err(StoreError::corrupt(
            "snapshot",
            "posting lists present in an unfinalized engine state",
        ));
    }
    Ok(EngineState {
        patterns,
        finalized,
        postings,
    })
}

/// Encodes one staged-document record.
pub fn encode_doc_record(e: &mut Enc, d: &DocRecord) {
    e.put_u32(d.stream.0);
    e.put_u32(d.counts.len() as u32);
    for &(term, count) in &d.counts {
        e.put_u32(term.0);
        e.put_u32(count);
    }
}

/// Decodes one staged-document record.
pub fn decode_doc_record(d: &mut Dec<'_>) -> Result<DocRecord, StoreError> {
    let stream = StreamId(d.get_u32()?);
    let n = d.get_count(8)?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        let term = TermId(d.get_u32()?);
        let count = d.get_u32()?;
        counts.push((term, count));
    }
    Ok(DocRecord { stream, counts })
}

/// Encodes the pending pipeline bookkeeping.
pub fn encode_pending(e: &mut Enc, p: &PendingState) {
    e.put_bool(p.structural_dirty);
    e.put_bool(p.comb_all_dirty);
    e.put_u32(p.dirty_terms.len() as u32);
    for t in &p.dirty_terms {
        e.put_u32(t.0);
    }
    e.put_u32(p.staged.len() as u32);
    for doc in &p.staged {
        encode_doc_record(e, doc);
    }
}

/// Decodes the pending pipeline bookkeeping.
pub fn decode_pending(d: &mut Dec<'_>) -> Result<PendingState, StoreError> {
    let structural_dirty = d.get_bool()?;
    let comb_all_dirty = d.get_bool()?;
    let n = d.get_count(4)?;
    let mut dirty_terms = Vec::with_capacity(n);
    for _ in 0..n {
        dirty_terms.push(TermId(d.get_u32()?));
    }
    let n_staged = d.get_count(8)?;
    let mut staged = Vec::with_capacity(n_staged);
    for _ in 0..n_staged {
        staged.push(decode_doc_record(d)?);
    }
    Ok(PendingState {
        structural_dirty,
        comb_all_dirty,
        dirty_terms,
        staged,
    })
}

/// Encodes a full snapshot payload (without the file header).
pub fn encode_snapshot(state: &SnapshotState) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_u64(state.ticks_committed);
    encode_collection(&mut e, &state.collection);
    encode_engine(&mut e, &state.engine);
    encode_pending(&mut e, &state.pending);
    e.into_bytes()
}

/// Range-checks every id in the engine and pending sections against the
/// decoded collection's bounds, so a checksum-valid but internally
/// inconsistent snapshot fails closed with a typed error instead of
/// panicking (index out of bounds) the first time a query touches it.
fn validate_snapshot_ids(
    collection: &Collection,
    engine: &EngineState,
    pending: &PendingState,
) -> Result<(), StoreError> {
    // Term ids are bounded by the dictionary, not the frequency tensor:
    // a term interned during a still-open tick is a valid id before any
    // of its documents commit.
    let n_terms = collection.dict().len();
    let n_streams = collection.n_streams();
    let n_docs = collection.documents().len();
    let term_in_range = |what: &'static str, term: TermId| {
        if (term.0 as usize) < n_terms {
            Ok(())
        } else {
            Err(StoreError::corrupt(
                "snapshot",
                format!("{what} references term {} with {n_terms} terms", term.0),
            ))
        }
    };
    for (term, records) in &engine.patterns {
        term_in_range("pattern set", *term)?;
        for r in records {
            for s in &r.streams {
                if (s.0 as usize) >= n_streams {
                    return Err(StoreError::corrupt(
                        "snapshot",
                        format!(
                            "pattern of term {} references stream {} with {n_streams} streams",
                            term.0, s.0
                        ),
                    ));
                }
            }
        }
    }
    for (term, list) in &engine.postings {
        term_in_range("posting list", *term)?;
        for p in list {
            if (p.doc.0 as usize) >= n_docs {
                return Err(StoreError::corrupt(
                    "snapshot",
                    format!(
                        "posting of term {} references document {} with {n_docs} documents",
                        term.0, p.doc.0
                    ),
                ));
            }
        }
    }
    for t in &pending.dirty_terms {
        term_in_range("dirty-term set", *t)?;
    }
    for doc in &pending.staged {
        if (doc.stream.0 as usize) >= n_streams {
            return Err(StoreError::corrupt(
                "snapshot",
                format!(
                    "staged document references stream {} with {n_streams} streams",
                    doc.stream.0
                ),
            ));
        }
        for &(term, _) in &doc.counts {
            term_in_range("staged document", term)?;
        }
    }
    Ok(())
}

/// Decodes a full snapshot payload (the header must already be verified).
pub fn decode_snapshot(payload: &[u8]) -> Result<SnapshotState, StoreError> {
    let mut d = Dec::new(payload, "snapshot");
    let ticks_committed = d.get_u64()?;
    let collection = decode_collection(&mut d)?;
    let engine = decode_engine(&mut d)?;
    let pending = decode_pending(&mut d)?;
    if !d.is_empty() {
        return Err(StoreError::corrupt(
            "snapshot",
            format!("{} trailing bytes after snapshot", d.remaining()),
        ));
    }
    validate_snapshot_ids(&collection, &engine, &pending)?;
    Ok(SnapshotState {
        ticks_committed,
        collection: Arc::new(collection),
        engine,
        pending,
    })
}

/// Frames a snapshot payload into the full file bytes (header + payload).
pub fn frame_snapshot(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(24 + payload.len());
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// Verifies a snapshot file's header and checksum, returning the payload.
pub fn unframe_snapshot(bytes: &[u8]) -> Result<&[u8], StoreError> {
    if bytes.len() < 24 {
        return Err(StoreError::Truncated { what: "snapshot" });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(StoreError::BadMagic {
            what: "snapshot",
            found,
        });
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != SNAPSHOT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            what: "snapshot",
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let expected = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    let payload = &bytes[24..];
    if (payload.len() as u64) < payload_len {
        return Err(StoreError::Truncated { what: "snapshot" });
    }
    if (payload.len() as u64) > payload_len {
        return Err(StoreError::corrupt(
            "snapshot",
            format!(
                "{} trailing bytes after the declared payload",
                payload.len() as u64 - payload_len
            ),
        ));
    }
    let actual = crc32(payload);
    if actual != expected {
        return Err(StoreError::ChecksumMismatch {
            what: "snapshot",
            expected,
            actual,
        });
    }
    Ok(payload)
}

/// Reads and fully validates a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<SnapshotState, StoreError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(unframe_snapshot(&bytes)?)
}

/// Writes a snapshot atomically: temp file in the same directory, data
/// sync, rename over the destination, parent-directory fsync. Returns the
/// total file size in bytes.
pub fn write_snapshot(path: &Path, state: &SnapshotState) -> Result<u64, StoreError> {
    write_snapshot_with_faults(path, state, None)
}

/// [`write_snapshot`] with an optional chaos-harness fault schedule: each
/// step of the atomic-write protocol (temp write, data sync, rename,
/// directory fsync) consults its [`FaultSite`] first, so tests can fail
/// the protocol at any seam. Failing *after* the rename leaves a fully
/// valid snapshot on disk whose caller believes the checkpoint failed —
/// the same ambiguity real directory-fsync failures create.
pub fn write_snapshot_with_faults(
    path: &Path,
    state: &SnapshotState,
    faults: Option<&FaultSchedule>,
) -> Result<u64, StoreError> {
    let bytes = frame_snapshot(&encode_snapshot(state));
    let dir = path.parent().ok_or_else(|| {
        StoreError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            "snapshot path has no parent directory",
        ))
    })?;
    let tmp = path.with_extension("stb.tmp");
    {
        if let Some(s) = faults {
            s.check_io(FaultSite::SnapshotWrite)?;
        }
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        if let Some(s) = faults {
            s.check_io(FaultSite::SnapshotSync)?;
        }
        file.sync_data()?;
    }
    if let Some(s) = faults {
        s.check_io(FaultSite::SnapshotRename)?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself: fsync the parent directory.
    if let Some(s) = faults {
        s.check_io(FaultSite::DirSync)?;
    }
    let dir_handle = OpenOptions::new().read(true).open(dir)?;
    dir_handle.sync_all()?;
    Ok(bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stb_corpus::CollectionBuilder;

    fn sample_collection() -> Collection {
        let tokenizer = stb_corpus::Tokenizer::default();
        let mut b = CollectionBuilder::new(4);
        let s0 = b.add_stream("paris", GeoPoint::new(48.85, 2.35));
        let s1 = b.add_stream("tokyo", GeoPoint::new(35.68, 139.69));
        b.add_text_document(s0, 0, "quake tremor quake", &tokenizer);
        b.add_text_document(s1, 1, "quake festival", &tokenizer);
        b.add_text_document(s0, 3, "calm waters", &tokenizer);
        b.build()
    }

    fn sample_state() -> SnapshotState {
        let collection = sample_collection();
        let engine = EngineState {
            patterns: vec![(
                TermId(0),
                vec![
                    PatternRecord {
                        streams: vec![StreamId(0), StreamId(1)],
                        timeframe: TimeInterval { start: 0, end: 1 },
                        region: Some(Rect {
                            min_x: -1.0,
                            min_y: -0.0,
                            max_x: 2.5,
                            max_y: 7.125,
                        }),
                        score: 3.75,
                    },
                    PatternRecord {
                        streams: vec![StreamId(0)],
                        timeframe: TimeInterval { start: 3, end: 3 },
                        region: None,
                        score: f64::MIN_POSITIVE,
                    },
                ],
            )],
            finalized: true,
            postings: vec![(
                TermId(0),
                vec![
                    Posting {
                        doc: DocId(0),
                        score: 2.5,
                    },
                    Posting {
                        doc: DocId(1),
                        score: 0.125,
                    },
                ],
            )],
        };
        let pending = PendingState {
            structural_dirty: true,
            comb_all_dirty: false,
            dirty_terms: vec![TermId(0), TermId(2)],
            staged: vec![DocRecord {
                stream: StreamId(1),
                counts: vec![(TermId(1), 2)],
            }],
        };
        SnapshotState {
            ticks_committed: 4,
            collection: Arc::new(collection),
            engine,
            pending,
        }
    }

    fn assert_states_equal(a: &SnapshotState, b: &SnapshotState) {
        assert_eq!(a.ticks_committed, b.ticks_committed);
        // Collections compare via re-encoding (Collection is not PartialEq).
        let mut ea = Enc::new();
        encode_collection(&mut ea, &a.collection);
        let mut eb = Enc::new();
        encode_collection(&mut eb, &b.collection);
        assert_eq!(ea.into_bytes(), eb.into_bytes());
        assert_eq!(a.engine, b.engine);
        assert_eq!(a.pending, b.pending);
    }

    #[test]
    fn collection_round_trip() {
        let collection = sample_collection();
        let mut e = Enc::new();
        encode_collection(&mut e, &collection);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "snapshot");
        let decoded = decode_collection(&mut d).unwrap();
        assert!(d.is_empty());
        let mut e2 = Enc::new();
        encode_collection(&mut e2, &decoded);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn empty_collection_round_trip() {
        let collection = CollectionBuilder::new(0).build();
        let mut e = Enc::new();
        encode_collection(&mut e, &collection);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "snapshot");
        let decoded = decode_collection(&mut d).unwrap();
        assert_eq!(decoded.n_streams(), 0);
        assert_eq!(decoded.timeline_len(), 0);
        assert_eq!(decoded.documents().len(), 0);
    }

    #[test]
    fn pattern_round_trip_preserves_bits() {
        let p = PatternRecord {
            streams: vec![StreamId(3)],
            timeframe: TimeInterval { start: 1, end: 9 },
            region: Some(Rect {
                min_x: -0.0,
                min_y: 0.1 + 0.2, // not representable exactly; bits must survive
                max_x: f64::MAX,
                max_y: 1e-300,
            }),
            score: 0.1 + 0.7,
        };
        let mut e = Enc::new();
        encode_pattern(&mut e, &p);
        let bytes = e.into_bytes();
        let decoded = decode_pattern(&mut Dec::new(&bytes, "snapshot")).unwrap();
        assert_eq!(decoded.score.to_bits(), p.score.to_bits());
        let (r, dr) = (p.region.unwrap(), decoded.region.unwrap());
        assert_eq!(dr.min_x.to_bits(), r.min_x.to_bits());
        assert_eq!(dr.min_y.to_bits(), r.min_y.to_bits());
        assert_eq!(dr.max_x.to_bits(), r.max_x.to_bits());
        assert_eq!(dr.max_y.to_bits(), r.max_y.to_bits());
        assert_eq!(decoded.streams, p.streams);
        assert_eq!(decoded.timeframe, p.timeframe);
    }

    #[test]
    fn inverted_timeframe_is_corrupt() {
        let mut e = Enc::new();
        e.put_u32(0); // no streams
        e.put_usize(5);
        e.put_usize(2); // end < start
        e.put_bool(false);
        e.put_f64(1.0);
        let bytes = e.into_bytes();
        assert!(matches!(
            decode_pattern(&mut Dec::new(&bytes, "snapshot")),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn engine_state_round_trip() {
        let state = sample_state().engine;
        let mut e = Enc::new();
        encode_engine(&mut e, &state);
        let bytes = e.into_bytes();
        let decoded = decode_engine(&mut Dec::new(&bytes, "snapshot")).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn unfinalized_engine_with_postings_is_corrupt() {
        let state = EngineState {
            patterns: Vec::new(),
            finalized: false,
            postings: vec![(
                TermId(0),
                vec![Posting {
                    doc: DocId(0),
                    score: 1.0,
                }],
            )],
        };
        let mut e = Enc::new();
        encode_engine(&mut e, &state);
        let bytes = e.into_bytes();
        assert!(matches!(
            decode_engine(&mut Dec::new(&bytes, "snapshot")),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn doc_record_round_trip() {
        let doc = DocRecord {
            stream: StreamId(7),
            counts: vec![(TermId(1), 4), (TermId(9), 1)],
        };
        let mut e = Enc::new();
        encode_doc_record(&mut e, &doc);
        let bytes = e.into_bytes();
        assert_eq!(
            decode_doc_record(&mut Dec::new(&bytes, "snapshot")).unwrap(),
            doc
        );
    }

    #[test]
    fn pending_state_round_trip() {
        let pending = sample_state().pending;
        let mut e = Enc::new();
        encode_pending(&mut e, &pending);
        let bytes = e.into_bytes();
        assert_eq!(
            decode_pending(&mut Dec::new(&bytes, "snapshot")).unwrap(),
            pending
        );
    }

    #[test]
    fn full_snapshot_round_trip() {
        let state = sample_state();
        let decoded = decode_snapshot(&encode_snapshot(&state)).unwrap();
        assert_states_equal(&decoded, &state);
    }

    #[test]
    fn empty_snapshot_round_trip() {
        let state = SnapshotState {
            ticks_committed: 0,
            collection: Arc::new(CollectionBuilder::new(0).build()),
            engine: EngineState::default(),
            pending: PendingState::default(),
        };
        let decoded = decode_snapshot(&encode_snapshot(&state)).unwrap();
        assert_states_equal(&decoded, &state);
    }

    #[test]
    fn framed_snapshot_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("stb-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.stb");
        let state = sample_state();
        let written = write_snapshot(&path, &state).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let decoded = read_snapshot(&path).unwrap();
        assert_states_equal(&decoded, &state);
        // No temp file left behind.
        assert!(!path.with_extension("stb.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_ids_are_corrupt() {
        // Checksum-valid snapshots whose ids point outside the decoded
        // collection must fail closed with a typed error at decode time,
        // not panic (index out of bounds) the first time a query runs.
        let reject = |state: &SnapshotState| {
            assert!(matches!(
                decode_snapshot(&encode_snapshot(state)),
                Err(StoreError::Corrupt { .. })
            ));
        };

        let mut bad = sample_state();
        bad.engine.postings[0].1[0].doc = DocId(99);
        reject(&bad);

        let mut bad = sample_state();
        bad.engine.postings[0].0 = TermId(40);
        reject(&bad);

        let mut bad = sample_state();
        bad.engine.patterns[0].1[0].streams.push(StreamId(9));
        reject(&bad);

        let mut bad = sample_state();
        bad.engine.patterns[0].0 = TermId(40);
        reject(&bad);

        let mut bad = sample_state();
        bad.pending.dirty_terms.push(TermId(50));
        reject(&bad);

        let mut bad = sample_state();
        bad.pending.staged[0].stream = StreamId(7);
        reject(&bad);

        let mut bad = sample_state();
        bad.pending.staged[0].counts.push((TermId(60), 1));
        reject(&bad);
    }

    #[test]
    fn corruption_is_rejected() {
        let state = sample_state();
        let good = frame_snapshot(&encode_snapshot(&state));

        // Zero-length file.
        assert!(matches!(
            unframe_snapshot(&[]),
            Err(StoreError::Truncated { what: "snapshot" })
        ));
        // Truncated header.
        assert!(matches!(
            unframe_snapshot(&good[..16]),
            Err(StoreError::Truncated { what: "snapshot" })
        ));
        // Foreign magic.
        let mut bad = good.clone();
        bad[0] = b'Z';
        assert!(matches!(
            unframe_snapshot(&bad),
            Err(StoreError::BadMagic {
                what: "snapshot",
                ..
            })
        ));
        // Wrong version byte.
        let mut bad = good.clone();
        bad[8] = 42;
        assert!(matches!(
            unframe_snapshot(&bad),
            Err(StoreError::UnsupportedVersion {
                what: "snapshot",
                found: 42,
                ..
            })
        ));
        // Truncated payload.
        assert!(matches!(
            unframe_snapshot(&good[..good.len() - 1]),
            Err(StoreError::Truncated { what: "snapshot" })
        ));
        // Surplus bytes past the declared payload length: not a truncation
        // but still fail-closed, labeled as corruption.
        let mut bad = good.clone();
        bad.push(0xAB);
        assert!(matches!(
            unframe_snapshot(&bad),
            Err(StoreError::Corrupt { .. })
        ));
        // Flipped payload bit -> checksum mismatch.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            unframe_snapshot(&bad),
            Err(StoreError::ChecksumMismatch {
                what: "snapshot",
                ..
            })
        ));
        // Flipped stored-CRC bit -> checksum mismatch.
        let mut bad = good.clone();
        bad[20] ^= 0x80;
        assert!(matches!(
            unframe_snapshot(&bad),
            Err(StoreError::ChecksumMismatch {
                what: "snapshot",
                ..
            })
        ));
    }
}
