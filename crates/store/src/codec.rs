//! Little-endian binary codec and CRC32 used by the snapshot and WAL
//! formats.
//!
//! Everything on disk is built from five primitives: `u8`, `u32`, `u64`,
//! `f64` (persisted as its IEEE 754 bit pattern via [`f64::to_bits`], so
//! round trips are byte-identical, including negative zero), and
//! length-prefixed UTF-8 strings. Decoding never panics: running off the
//! end of the buffer, invalid UTF-8, and implausible length prefixes all
//! come back as typed [`StoreError`]s.

use crate::error::StoreError;
use std::sync::OnceLock;

/// Computes the IEEE CRC32 (the polynomial used by zip/PNG/ethernet) of a
/// byte slice. Implemented locally — the build environment is offline, so
/// no checksum crate is available.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// An append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its raw bit pattern (byte-identical round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// A bounds-checked little-endian decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
    /// What is being decoded, for error messages ("snapshot", "wal record").
    what: &'static str,
}

impl<'a> Dec<'a> {
    /// Creates a decoder over `data`, labelling errors with `what`.
    pub fn new(data: &'a [u8], what: &'static str) -> Self {
        Self { data, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { what: self.what });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (one byte; anything other than 0/1 is corrupt).
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::corrupt(
                self.what,
                format!("boolean byte is {other}"),
            )),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` persisted from a `usize`.
    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| StoreError::corrupt(self.what, format!("usize out of range: {v}")))
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a count prefix that must plausibly fit in the remaining bytes
    /// (each element occupying at least `min_elem_bytes`), guarding
    /// `Vec::with_capacity` against garbage lengths.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let n = self.get_u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(StoreError::corrupt(
                self.what,
                format!(
                    "count {n} cannot fit in {} remaining bytes",
                    self.remaining()
                ),
            ));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let len = self.get_count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(self.what, "string is not valid UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_bool(true);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 1);
        e.put_usize(42);
        e.put_f64(-0.0);
        e.put_f64(f64::MIN_POSITIVE);
        e.put_str("héllo");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert_eq!(d.get_u8().unwrap(), 7);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.get_usize().unwrap(), 42);
        // Bit-identical, including the sign of zero.
        assert_eq!(d.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.get_f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert!(d.is_empty());
    }

    #[test]
    fn truncated_reads_fail_closed() {
        let mut e = Enc::new();
        e.put_u32(5);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..2], "test");
        assert!(matches!(
            d.get_u32(),
            Err(StoreError::Truncated { what: "test" })
        ));
    }

    #[test]
    fn garbage_count_is_rejected_before_allocation() {
        let mut e = Enc::new();
        e.put_u32(u32::MAX); // a count that cannot possibly fit
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert!(matches!(d.get_count(1), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut e = Enc::new();
        e.put_u32(2);
        let mut bytes = e.into_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut d = Dec::new(&bytes, "test");
        assert!(matches!(d.get_str(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn invalid_bool_is_corrupt() {
        let bytes = [3u8];
        let mut d = Dec::new(&bytes, "test");
        assert!(matches!(d.get_bool(), Err(StoreError::Corrupt { .. })));
    }
}
