//! The on-disk layout: one directory holding a snapshot and a WAL.
//!
//! ```text
//! <dir>/snapshot.stb      last checkpoint (atomic rename target)
//! <dir>/snapshot.stb.tmp  in-flight checkpoint (ignored; overwritten)
//! <dir>/wal.stb           ticks committed since the checkpoint
//! ```
//!
//! Recovery is `load_snapshot` (absent file → fresh start) followed by
//! replaying the WAL records whose tick is not already covered by the
//! snapshot. A crash between the snapshot rename and the WAL reset leaves
//! already-snapshotted records in the log; replay skips them by tick
//! index, so the window is harmless.

use std::path::{Path, PathBuf};

use crate::error::StoreError;
use crate::fault::{FaultSchedule, FaultSite};
use crate::snapshot::{read_snapshot, write_snapshot_with_faults, SnapshotState};
use crate::wal::{read_wal, Durability, WalReplay, WalWriter};

/// Name of the snapshot file inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.stb";
/// Name of the WAL file inside a store directory.
pub const WAL_FILE: &str = "wal.stb";

/// A durable store rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
    faults: Option<FaultSchedule>,
}

impl Store {
    /// Opens (creating if necessary) a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Store { dir, faults: None })
    }

    /// Opens a store whose every syscall site consults a chaos-harness
    /// fault schedule first. Clones of the store (and WAL writers it
    /// opens) share the same schedule.
    pub fn open_with_faults(
        dir: impl Into<PathBuf>,
        faults: FaultSchedule,
    ) -> Result<Self, StoreError> {
        let mut store = Store::open(dir)?;
        store.faults = Some(faults);
        Ok(store)
    }

    /// The fault schedule attached via [`Store::open_with_faults`], if
    /// any.
    pub fn faults(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// Path of the WAL file.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// Loads the snapshot, or `None` if none has been written yet. A
    /// present-but-invalid snapshot is an error — corruption must fail
    /// closed, never fall back to an empty index silently.
    pub fn load_snapshot(&self) -> Result<Option<SnapshotState>, StoreError> {
        if let Some(s) = &self.faults {
            s.check_io(FaultSite::SnapshotRead)?;
        }
        let path = self.snapshot_path();
        if !path.exists() {
            return Ok(None);
        }
        read_snapshot(&path).map(Some)
    }

    /// Writes a snapshot atomically (temp file + rename + directory
    /// fsync). Returns the snapshot size in bytes.
    pub fn write_snapshot(&self, state: &SnapshotState) -> Result<u64, StoreError> {
        write_snapshot_with_faults(&self.snapshot_path(), state, self.faults.as_ref())
    }

    /// Reads the WAL, repairing a torn tail. A missing file is an empty
    /// replay.
    pub fn read_wal(&self) -> Result<WalReplay, StoreError> {
        if let Some(s) = &self.faults {
            s.check_io(FaultSite::WalRead)?;
        }
        read_wal(&self.wal_path())
    }

    /// Opens the WAL for appending at `valid_len` (from
    /// [`Store::read_wal`]), truncating any torn tail.
    pub fn wal_writer(
        &self,
        valid_len: u64,
        durability: Durability,
    ) -> Result<WalWriter, StoreError> {
        WalWriter::open_with_faults(&self.wal_path(), valid_len, durability, self.faults.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::PendingState;
    use crate::wal::TickRecord;
    use stb_corpus::CollectionBuilder;
    use stb_search::EngineState;
    use std::sync::Arc;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("stb-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    #[test]
    fn fresh_store_is_empty() {
        let store = temp_store("fresh");
        assert!(store.load_snapshot().unwrap().is_none());
        let replay = store.read_wal().unwrap();
        assert!(replay.ticks.is_empty());
        assert_eq!(replay.valid_len, 0);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn snapshot_and_wal_round_trip_through_store() {
        let store = temp_store("roundtrip");
        let state = SnapshotState {
            ticks_committed: 2,
            collection: Arc::new(CollectionBuilder::new(3).build()),
            engine: EngineState::default(),
            pending: PendingState::default(),
        };
        store.write_snapshot(&state).unwrap();
        let loaded = store.load_snapshot().unwrap().unwrap();
        assert_eq!(loaded.ticks_committed, 2);

        let replay = store.read_wal().unwrap();
        let mut w = store
            .wal_writer(replay.valid_len, Durability::Buffered)
            .unwrap();
        let record = TickRecord {
            tick: 2,
            new_streams: Vec::new(),
            new_terms: Vec::new(),
            docs: Vec::new(),
        };
        w.append(&record).unwrap();
        drop(w);
        let replay = store.read_wal().unwrap();
        assert_eq!(replay.ticks, vec![record]);
        std::fs::remove_dir_all(store.dir()).unwrap();
    }
}
