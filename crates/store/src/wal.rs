//! Write-ahead log: length-prefixed, CRC-framed tick records.
//!
//! The ingestion pipeline appends one [`TickRecord`] to the log *before*
//! applying each committed tick, so that after a crash the sequence
//! `load_snapshot + replay_wal` reproduces exactly the committed state.
//!
//! # On-disk format
//!
//! ```text
//! header:  "STBWAL00" (8 bytes)  version: u32 LE          (12 bytes)
//! record:  len: u32 LE  crc: u32 LE  payload: len bytes   (repeated)
//! ```
//!
//! `crc` is the CRC32 of the payload. A record whose frame runs past the
//! end of the file, whose length prefix is implausible, or whose checksum
//! does not match is treated as a *torn tail*: it and everything after it
//! are discarded ([`WalReplay::discarded_bytes`]), and the writer truncates
//! the file back to the last whole record before appending again. A record
//! that passes its checksum but decodes to garbage is *corruption*, not a
//! crash artifact, and is a hard [`StoreError`].
//!
//! # Durability
//!
//! [`Durability::Buffered`] flushes userspace buffers after each append and
//! lets the OS schedule the disk write — cheap, and loses at most the
//! records the OS had not yet persisted. [`Durability::Fsync`] additionally
//! calls `fdatasync` after each append — each committed tick survives a
//! power loss at the cost of one disk round trip per commit.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use stb_corpus::{StreamId, TermId};
use stb_geo::{GeoPoint, Point2D};
use stb_obs::{Counter, LatencyHistogram, ObsRegistry};

use crate::codec::{crc32, Dec, Enc};
use crate::error::StoreError;
use crate::fault::{FaultSchedule, FaultSite};

/// The WAL file magic number.
pub const WAL_MAGIC: [u8; 8] = *b"STBWAL00";
/// The single WAL format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;
/// Size of the WAL header in bytes (magic + version).
pub const WAL_HEADER_LEN: u64 = 12;

/// When the WAL forces its appends to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Flush userspace buffers after each append; the OS schedules the
    /// physical write. A crash of the *process* loses nothing; a crash of
    /// the *machine* may lose the most recent ticks.
    #[default]
    Buffered,
    /// `fdatasync` after each append: every committed tick survives power
    /// loss, at the cost of a disk round trip per commit.
    Fsync,
}

/// A stream that first appeared during a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRecord {
    /// The stream's dense index (equals the collection's stream count at
    /// the moment it was added).
    pub index: StreamId,
    /// Human-readable stream name.
    pub name: String,
    /// Geographic location.
    pub geostamp: GeoPoint,
    /// Planar position used by regional mining.
    pub position: Point2D,
}

/// A term string that was first interned during a tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TermRecord {
    /// The dense id the dictionary assigned.
    pub id: TermId,
    /// The term string.
    pub text: String,
}

/// One document staged within a tick: its stream of origin and term
/// counts, sorted by term id for deterministic bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct DocRecord {
    /// Stream of origin.
    pub stream: StreamId,
    /// Term counts, sorted by term id.
    pub counts: Vec<(TermId, u32)>,
}

/// Everything one `commit_tick` call changed, in replayable form.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRecord {
    /// The tick index this record commits (0-based; must follow the
    /// previous record's tick without gaps).
    pub tick: u64,
    /// Streams added since the previous record, in registration order.
    pub new_streams: Vec<StreamRecord>,
    /// Terms interned since the previous record, in id order.
    pub new_terms: Vec<TermRecord>,
    /// Documents committed by this tick, in arrival order.
    pub docs: Vec<DocRecord>,
}

impl TickRecord {
    /// Encodes the record payload (without the frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_u64(self.tick);
        e.put_u32(self.new_streams.len() as u32);
        for s in &self.new_streams {
            e.put_u32(s.index.0);
            e.put_str(&s.name);
            e.put_f64(s.geostamp.lat);
            e.put_f64(s.geostamp.lon);
            e.put_f64(s.position.x);
            e.put_f64(s.position.y);
        }
        e.put_u32(self.new_terms.len() as u32);
        for t in &self.new_terms {
            e.put_u32(t.id.0);
            e.put_str(&t.text);
        }
        e.put_u32(self.docs.len() as u32);
        for d in &self.docs {
            e.put_u32(d.stream.0);
            e.put_u32(d.counts.len() as u32);
            for &(term, count) in &d.counts {
                e.put_u32(term.0);
                e.put_u32(count);
            }
        }
        e.into_bytes()
    }

    /// Decodes a record payload. The payload must already have passed its
    /// frame checksum; a decode failure here means real corruption.
    pub fn decode(payload: &[u8]) -> Result<Self, StoreError> {
        let mut d = Dec::new(payload, "wal record");
        let tick = d.get_u64()?;
        let n_streams = d.get_count(4)?;
        let mut new_streams = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            let index = StreamId(d.get_u32()?);
            let name = d.get_str()?;
            let lat = d.get_f64()?;
            let lon = d.get_f64()?;
            let x = d.get_f64()?;
            let y = d.get_f64()?;
            new_streams.push(StreamRecord {
                index,
                name,
                geostamp: GeoPoint { lat, lon },
                position: Point2D { x, y },
            });
        }
        let n_terms = d.get_count(4)?;
        let mut new_terms = Vec::with_capacity(n_terms);
        for _ in 0..n_terms {
            let id = TermId(d.get_u32()?);
            let text = d.get_str()?;
            new_terms.push(TermRecord { id, text });
        }
        let n_docs = d.get_count(4)?;
        let mut docs = Vec::with_capacity(n_docs);
        for _ in 0..n_docs {
            let stream = StreamId(d.get_u32()?);
            let n_counts = d.get_count(8)?;
            let mut counts = Vec::with_capacity(n_counts);
            for _ in 0..n_counts {
                let term = TermId(d.get_u32()?);
                let count = d.get_u32()?;
                counts.push((term, count));
            }
            docs.push(DocRecord { stream, counts });
        }
        if !d.is_empty() {
            return Err(StoreError::corrupt(
                "wal record",
                format!("{} trailing bytes after record", d.remaining()),
            ));
        }
        Ok(TickRecord {
            tick,
            new_streams,
            new_terms,
            docs,
        })
    }
}

/// The result of reading a WAL: every whole record, plus how much of the
/// file was valid and how many torn-tail bytes were discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// Every complete, checksum-valid record, in file order.
    pub ticks: Vec<TickRecord>,
    /// File offset just past the last whole record (or past the header if
    /// there are none; 0 if even the header was torn). The writer truncates
    /// the file to this length before appending.
    pub valid_len: u64,
    /// Bytes after `valid_len` that were discarded as a torn tail.
    pub discarded_bytes: u64,
}

impl WalReplay {
    /// An empty replay for a WAL file that does not exist yet.
    pub fn empty() -> Self {
        WalReplay {
            ticks: Vec::new(),
            valid_len: 0,
            discarded_bytes: 0,
        }
    }
}

/// Decodes the full contents of a WAL file.
///
/// Crash artifacts — a torn header, a record frame that runs past the end
/// of the file, a checksum mismatch — are repaired by discarding the tail
/// from the first invalid record onward. Corruption that cannot be a crash
/// artifact (a foreign magic number, an unsupported version, a
/// checksum-valid record that decodes to garbage) is a hard error.
pub fn decode_wal(bytes: &[u8]) -> Result<WalReplay, StoreError> {
    if bytes.is_empty() {
        // Crash before the header was written: recover as a fresh log.
        return Ok(WalReplay::empty());
    }
    let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
    header.extend_from_slice(&WAL_MAGIC);
    header.extend_from_slice(&WAL_VERSION.to_le_bytes());
    if bytes.len() < header.len() {
        if header.starts_with(bytes) {
            // Torn header write: discard and start over.
            return Ok(WalReplay {
                ticks: Vec::new(),
                valid_len: 0,
                discarded_bytes: bytes.len() as u64,
            });
        }
        let mut found = [0u8; 8];
        let n = bytes.len().min(8);
        found[..n].copy_from_slice(&bytes[..n]);
        return Err(StoreError::BadMagic { what: "wal", found });
    }
    if bytes[..8] != WAL_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(StoreError::BadMagic { what: "wal", found });
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != WAL_VERSION {
        return Err(StoreError::UnsupportedVersion {
            what: "wal",
            found: version,
            supported: WAL_VERSION,
        });
    }
    let mut ticks = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        if remaining < 8 {
            // Torn frame header.
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len == 0 || remaining - 8 < len {
            // A zero or implausible length prefix: torn or zero-filled tail.
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            // Torn payload (or a bit flip in the tail): discard from here.
            break;
        }
        ticks.push(TickRecord::decode(payload)?);
        pos += 8 + len;
    }
    Ok(WalReplay {
        ticks,
        valid_len: pos as u64,
        discarded_bytes: (bytes.len() - pos) as u64,
    })
}

/// Reads and decodes a WAL file from disk. A missing file is an empty
/// replay, not an error.
pub fn read_wal(path: &Path) -> Result<WalReplay, StoreError> {
    match std::fs::read(path) {
        Ok(bytes) => decode_wal(&bytes),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(WalReplay::empty()),
        Err(e) => Err(e.into()),
    }
}

/// A writer that can force its bytes to stable storage. The default
/// implementation only flushes userspace buffers — suitable for in-memory
/// sinks; file-backed sinks override it with `fdatasync`.
pub trait SyncWrite: Write {
    /// Forces previously written bytes toward stable storage.
    fn sync(&mut self) -> io::Result<()> {
        self.flush()
    }

    /// Truncates the sink back to `len` bytes and repositions the write
    /// cursor there — the rollback primitive [`WalWriter::append`] uses so
    /// a failed append leaves neither a torn prefix (which would garble
    /// every retried record behind it) nor an unacknowledged whole frame
    /// (which a retry would duplicate). Sinks that cannot rewind report
    /// `Unsupported`; the writer then poisons itself instead of guessing.
    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        let _ = len;
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }
}

impl SyncWrite for File {
    fn sync(&mut self) -> io::Result<()> {
        self.flush()?;
        self.sync_data()
    }

    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.set_len(len)?;
        self.seek(SeekFrom::Start(len)).map(|_| ())
    }
}

impl SyncWrite for Vec<u8> {
    fn truncate_to(&mut self, len: u64) -> io::Result<()> {
        self.truncate(len as usize);
        Ok(())
    }
}

/// Where a failed append can rewind to. See [`WalWriter::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rollback {
    /// End offset of the last acknowledged frame: failures truncate back
    /// here, so a bounded retry re-appends onto a clean tail.
    Known(u64),
    /// The sink's absolute length is unknown (a bare
    /// [`WalWriter::from_sink`] not at the start): appends work, but the
    /// first failure poisons the writer instead of rolling back.
    Unsupported,
    /// A rollback failed (or was impossible) after a failed append: the
    /// tail is unknowable, and the writer refuses to stack frames on top
    /// of it ([`StoreError::WalClosed`]).
    Poisoned,
}

/// Observability cells for one WAL writer: append/fsync latency
/// histograms and counters for the rare recovery-path events
/// (rollbacks after a failed append, resets after a snapshot).
///
/// The cells are shared `Arc`s registered in an
/// [`ObsRegistry`], so several writers (or a
/// writer recreated across re-opens) can feed the same series. Cloning
/// is cheap and shares the underlying cells. Recording is a handful of
/// relaxed atomic ops per append; an un-attached writer
/// ([`WalWriter::set_obs`] never called) pays only an `Option` check.
#[derive(Debug, Clone)]
pub struct WalObs {
    append_ns: Arc<LatencyHistogram>,
    fsync_ns: Arc<LatencyHistogram>,
    appends: Arc<Counter>,
    append_errors: Arc<Counter>,
    rollbacks: Arc<Counter>,
    resets: Arc<Counter>,
}

impl WalObs {
    /// Creates (or re-binds to) the WAL metric family in `registry`:
    /// `wal_append_ns` / `wal_fsync_ns` histograms and
    /// `wal_appends_total` / `wal_append_errors_total` /
    /// `wal_rollbacks_total` / `wal_resets_total` counters.
    pub fn register(registry: &ObsRegistry) -> Self {
        WalObs {
            append_ns: registry.histogram("wal_append_ns"),
            fsync_ns: registry.histogram("wal_fsync_ns"),
            appends: registry.counter("wal_appends_total"),
            append_errors: registry.counter("wal_append_errors_total"),
            rollbacks: registry.counter("wal_rollbacks_total"),
            resets: registry.counter("wal_resets_total"),
        }
    }

    /// End-to-end latency of successful [`WalWriter::append`] calls
    /// (encode + write + durability step), in nanoseconds.
    pub fn append_latency(&self) -> &LatencyHistogram {
        &self.append_ns
    }

    /// Latency of the explicit durability step (`fdatasync` under
    /// [`Durability::Fsync`], plus manual [`WalWriter::sync`] calls), in
    /// nanoseconds.
    pub fn fsync_latency(&self) -> &LatencyHistogram {
        &self.fsync_ns
    }

    /// Successful appends recorded so far.
    pub fn appends(&self) -> u64 {
        self.appends.get()
    }

    /// Failed appends (each one triggered a rollback attempt).
    pub fn append_errors(&self) -> u64 {
        self.append_errors.get()
    }

    /// Successful rewinds to the last acknowledged frame after a failed
    /// append. `append_errors - rollbacks` failures poisoned the writer.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.get()
    }

    /// Successful post-snapshot truncations ([`WalWriter::reset`]).
    pub fn resets(&self) -> u64 {
        self.resets.get()
    }
}

/// An append-only WAL writer over any [`SyncWrite`] sink.
///
/// File-backed writers are obtained from
/// [`WalWriter::open`], which repairs a torn tail (truncating
/// back to the last whole record) before the first append. In-memory
/// writers ([`WalWriter::from_sink`]) serve tests and fault injection.
/// Failed appends roll the sink back to the last acknowledged frame so
/// bounded retries are always safe; see [`WalWriter::append`].
#[derive(Debug)]
pub struct WalWriter<W: SyncWrite = File> {
    sink: W,
    durability: Durability,
    faults: Option<FaultSchedule>,
    rollback: Rollback,
    obs: Option<WalObs>,
}

impl<W: SyncWrite> WalWriter<W> {
    /// Wraps a sink that is positioned at the end of a valid WAL prefix
    /// (or at zero, in which case the header is written first).
    pub fn from_sink(mut sink: W, at_start: bool, durability: Durability) -> io::Result<Self> {
        if at_start {
            sink.write_all(&WAL_MAGIC)?;
            sink.write_all(&WAL_VERSION.to_le_bytes())?;
            sink.flush()?;
        }
        Ok(WalWriter {
            sink,
            durability,
            faults: None,
            rollback: if at_start {
                Rollback::Known(WAL_HEADER_LEN)
            } else {
                Rollback::Unsupported
            },
            obs: None,
        })
    }

    /// Attaches a chaos-harness fault schedule: every append, sync, and
    /// reset consults it before touching the sink.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches observability cells: appends and syncs feed the
    /// latency histograms, and rollback/reset events the counters.
    /// Without this the writer records nothing.
    pub fn set_obs(&mut self, obs: WalObs) {
        self.obs = Some(obs);
    }

    /// Builder-style [`WalWriter::set_obs`].
    pub fn with_obs(mut self, obs: WalObs) -> Self {
        self.set_obs(obs);
        self
    }

    /// Appends one framed record and applies the durability policy.
    ///
    /// **Failure atomicity:** on any error the writer rewinds the sink to
    /// the end of the last acknowledged frame (via
    /// [`SyncWrite::truncate_to`]), so retrying the append is always safe
    /// — a failed attempt leaves neither a torn prefix nor an
    /// unacknowledged duplicate behind. If the rewind itself fails the
    /// writer is *poisoned*: every further append returns
    /// [`StoreError::WalClosed`] and the caller must re-open the log (which
    /// truncates to the verified prefix).
    ///
    /// With a fault schedule attached, an injected [`FaultSite::WalAppend`]
    /// fault first persists a *partial* frame (the torn tail a crashed
    /// write leaves behind, immediately rolled back as above), and an
    /// injected [`FaultSite::WalSync`] fault fails the durability step
    /// *after* the full frame was written — the ambiguity real `fsync`
    /// failures create.
    pub fn append(&mut self, record: &TickRecord) -> Result<(), StoreError> {
        if self.rollback == Rollback::Poisoned {
            return Err(StoreError::WalClosed);
        }
        let started = self.obs.as_ref().map(|_| Instant::now());
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        match self.write_frame(&frame) {
            Ok(()) => {
                if let Rollback::Known(end) = &mut self.rollback {
                    *end += frame.len() as u64;
                }
                if let (Some(obs), Some(t)) = (&self.obs, started) {
                    obs.appends.inc();
                    obs.append_ns.record_duration(t.elapsed());
                }
                Ok(())
            }
            Err(e) => {
                // Rewind to the last acknowledged frame. Without this, a
                // bounded retry would stack its frame on top of a torn
                // prefix — garbling this and every later record — or, after
                // a post-write sync failure, append a second copy of an
                // already-persisted frame and duplicate the tick.
                let rewound = match self.rollback {
                    Rollback::Known(end) if self.sink.truncate_to(end).is_ok() => {
                        self.rollback = Rollback::Known(end);
                        true
                    }
                    _ => {
                        self.rollback = Rollback::Poisoned;
                        false
                    }
                };
                if let Some(obs) = &self.obs {
                    obs.append_errors.inc();
                    if rewound {
                        obs.rollbacks.inc();
                    }
                }
                Err(e)
            }
        }
    }

    /// The fallible tail of [`WalWriter::append`]: everything that can
    /// leave the sink in a state the caller must roll back.
    fn write_frame(&mut self, frame: &[u8]) -> Result<(), StoreError> {
        if let Some(f) = self
            .faults
            .as_ref()
            .and_then(|s| s.check(FaultSite::WalAppend))
        {
            if let Some(n) = f.partial_bytes {
                // Persist a prefix of the frame before failing: the torn
                // tail a crashed write leaves behind.
                let n = n.min(frame.len());
                self.sink.write_all(&frame[..n])?;
                self.sink.flush()?;
            }
            return Err(f.to_io_error().into());
        }
        self.sink.write_all(frame)?;
        if let Some(s) = &self.faults {
            s.check_io(FaultSite::WalSync)?;
        }
        match self.durability {
            Durability::Buffered => self.sink.flush()?,
            Durability::Fsync => {
                let started = self.obs.as_ref().map(|_| Instant::now());
                self.sink.sync()?;
                if let (Some(obs), Some(t)) = (&self.obs, started) {
                    obs.fsync_ns.record_duration(t.elapsed());
                }
            }
        }
        Ok(())
    }

    /// Forces everything written so far toward stable storage, regardless
    /// of the configured policy.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(s) = &self.faults {
            s.check_io(FaultSite::WalSync)?;
        }
        let started = self.obs.as_ref().map(|_| Instant::now());
        self.sink.sync()?;
        if let (Some(obs), Some(t)) = (&self.obs, started) {
            obs.fsync_ns.record_duration(t.elapsed());
        }
        Ok(())
    }

    /// The configured durability policy.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Consumes the writer, returning the sink (tests inspect the bytes).
    pub fn into_sink(self) -> W {
        self.sink
    }
}

impl WalWriter<File> {
    /// Opens (or creates) the WAL file at `path` for appending.
    ///
    /// `valid_len` is the verified length from [`read_wal`]; anything after
    /// it is a torn tail and is truncated away before the first append. A
    /// `valid_len` of zero (fresh or torn-header file) rewrites the header.
    pub fn open(path: &Path, valid_len: u64, durability: Durability) -> Result<Self, StoreError> {
        Self::open_with_faults(path, valid_len, durability, None)
    }

    /// [`WalWriter::open`] with an optional fault schedule consulted at
    /// [`FaultSite::WalOpen`] (and attached to the writer for its
    /// appends).
    pub fn open_with_faults(
        path: &Path,
        valid_len: u64,
        durability: Durability,
        faults: Option<FaultSchedule>,
    ) -> Result<Self, StoreError> {
        if let Some(s) = &faults {
            s.check_io(FaultSite::WalOpen)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        let at_start = valid_len == 0;
        let mut writer = WalWriter::from_sink(file, at_start, durability)?;
        if at_start {
            writer.sink.sync_data()?;
            // A freshly created file is only durable once its directory
            // entry is: fsync the parent, as the snapshot writer does after
            // its rename, so a power loss cannot drop the whole log even
            // though every append was synced.
            if let Some(s) = &faults {
                s.check_io(FaultSite::DirSync)?;
            }
            if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                File::open(dir)?.sync_all()?;
            }
        }
        writer.faults = faults;
        writer.rollback = Rollback::Known(valid_len.max(WAL_HEADER_LEN));
        Ok(writer)
    }

    /// Truncates the log back to just its header — called after a snapshot
    /// has been durably written, so recovery never replays ticks the
    /// snapshot already contains.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        if let Some(s) = &self.faults {
            // Checked before any mutation, so a retry after an injected
            // reset fault starts from an untouched sink.
            s.check_io(FaultSite::WalReset)?;
        }
        let result = (|| -> io::Result<()> {
            self.sink.set_len(WAL_HEADER_LEN)?;
            self.sink.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
            self.sink.sync_data()
        })();
        match result {
            Ok(()) => {
                self.rollback = Rollback::Known(WAL_HEADER_LEN);
                if let Some(obs) = &self.obs {
                    obs.resets.inc();
                }
                Ok(())
            }
            Err(e) => {
                // A real truncation failure mid-way leaves the length and
                // cursor unknowable: poison rather than guess.
                self.rollback = Rollback::Poisoned;
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(tick: u64) -> TickRecord {
        TickRecord {
            tick,
            new_streams: vec![StreamRecord {
                index: StreamId(2),
                name: "athens".to_string(),
                geostamp: GeoPoint {
                    lat: 37.98,
                    lon: 23.72,
                },
                position: Point2D { x: 0.25, y: -1.5 },
            }],
            new_terms: vec![
                TermRecord {
                    id: TermId(0),
                    text: "alpha".to_string(),
                },
                TermRecord {
                    id: TermId(1),
                    text: "βeta".to_string(),
                },
            ],
            docs: vec![DocRecord {
                stream: StreamId(0),
                counts: vec![(TermId(0), 3), (TermId(1), 1)],
            }],
        }
    }

    #[test]
    fn tick_record_round_trip() {
        let record = sample_record(7);
        let decoded = TickRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn empty_tick_record_round_trip() {
        let record = TickRecord {
            tick: 0,
            new_streams: Vec::new(),
            new_terms: Vec::new(),
            docs: Vec::new(),
        };
        assert_eq!(TickRecord::decode(&record.encode()).unwrap(), record);
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut payload = sample_record(1).encode();
        payload.push(0);
        assert!(matches!(
            TickRecord::decode(&payload),
            Err(StoreError::Corrupt { .. })
        ));
    }

    fn wal_bytes(records: &[TickRecord]) -> Vec<u8> {
        let mut w = WalWriter::from_sink(Vec::new(), true, Durability::Buffered).unwrap();
        for r in records {
            w.append(r).unwrap();
        }
        w.into_sink()
    }

    #[test]
    fn wal_round_trip() {
        let records = vec![sample_record(0), sample_record(1), sample_record(2)];
        let bytes = wal_bytes(&records);
        let replay = decode_wal(&bytes).unwrap();
        assert_eq!(replay.ticks, records);
        assert_eq!(replay.valid_len, bytes.len() as u64);
        assert_eq!(replay.discarded_bytes, 0);
    }

    #[test]
    fn obs_records_appends_fsyncs_rollbacks_and_resets() {
        let registry = ObsRegistry::new();
        let obs = WalObs::register(&registry);
        let faults = FaultSchedule::new();
        let mut w = WalWriter::from_sink(Vec::new(), true, Durability::Fsync)
            .unwrap()
            .with_faults(faults.clone())
            .with_obs(obs.clone());

        w.append(&sample_record(0)).unwrap();
        w.append(&sample_record(1)).unwrap();
        w.sync().unwrap();
        assert_eq!(obs.appends(), 2);
        assert_eq!(obs.append_latency().count(), 2);
        // Two per-append fsyncs (Durability::Fsync) plus the manual sync.
        assert_eq!(obs.fsync_latency().count(), 3);

        // A failed append is rolled back and counted, then a retry lands.
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::transient());
        assert!(w.append(&sample_record(2)).is_err());
        w.append(&sample_record(2)).unwrap();
        assert_eq!(obs.append_errors(), 1);
        assert_eq!(obs.rollbacks(), 1);
        assert_eq!(obs.appends(), 3);

        // Registry sees the same cells under the wal_* names.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("wal_appends_total"), Some(3));
        assert_eq!(snap.counter("wal_rollbacks_total"), Some(1));
        assert_eq!(snap.histogram("wal_append_ns").map(|h| h.count()), Some(3));
    }

    #[test]
    fn obs_counts_resets() {
        let dir = std::env::temp_dir().join(format!("stb-wal-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.stb");
        let registry = ObsRegistry::new();
        let obs = WalObs::register(&registry);
        let mut w = WalWriter::open(&path, 0, Durability::Buffered)
            .unwrap()
            .with_obs(obs.clone());
        w.append(&sample_record(0)).unwrap();
        w.reset().unwrap();
        assert_eq!(obs.resets(), 1);
        assert_eq!(obs.appends(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_and_header_only_wals() {
        assert_eq!(decode_wal(&[]).unwrap(), WalReplay::empty());
        let bytes = wal_bytes(&[]);
        let replay = decode_wal(&bytes).unwrap();
        assert!(replay.ticks.is_empty());
        assert_eq!(replay.valid_len, WAL_HEADER_LEN);
    }

    #[test]
    fn torn_header_recovers_to_empty() {
        let bytes = wal_bytes(&[]);
        for cut in 1..bytes.len() {
            let replay = decode_wal(&bytes[..cut]).unwrap();
            assert!(replay.ticks.is_empty());
            assert_eq!(replay.valid_len, 0, "cut at {cut}");
            assert_eq!(replay.discarded_bytes, cut as u64);
        }
    }

    #[test]
    fn torn_tail_recovers_to_last_whole_record() {
        let records = vec![sample_record(0), sample_record(1)];
        let bytes = wal_bytes(&records);
        let one = wal_bytes(&records[..1]);
        // Cut anywhere strictly inside the second record's frame.
        for cut in one.len() + 1..bytes.len() {
            let replay = decode_wal(&bytes[..cut]).unwrap();
            assert_eq!(replay.ticks, records[..1], "cut at {cut}");
            assert_eq!(replay.valid_len, one.len() as u64);
            assert_eq!(replay.discarded_bytes, (cut - one.len()) as u64);
        }
    }

    #[test]
    fn bit_flip_in_payload_discards_tail() {
        let records = vec![sample_record(0), sample_record(1)];
        let bytes = wal_bytes(&records);
        let one = wal_bytes(&records[..1]);
        let mut corrupted = bytes.clone();
        // Flip a bit in the second record's payload.
        corrupted[one.len() + 10] ^= 0x40;
        let replay = decode_wal(&corrupted).unwrap();
        assert_eq!(replay.ticks, records[..1]);
        assert_eq!(replay.valid_len, one.len() as u64);
    }

    #[test]
    fn foreign_magic_is_a_hard_error() {
        let mut bytes = wal_bytes(&[sample_record(0)]);
        bytes[0] = b'X';
        assert!(matches!(
            decode_wal(&bytes),
            Err(StoreError::BadMagic { what: "wal", .. })
        ));
    }

    #[test]
    fn wrong_version_is_a_hard_error() {
        let mut bytes = wal_bytes(&[]);
        bytes[8] = 9;
        assert!(matches!(
            decode_wal(&bytes),
            Err(StoreError::UnsupportedVersion {
                what: "wal",
                found: 9,
                supported: WAL_VERSION,
            })
        ));
    }

    #[test]
    fn zero_filled_tail_is_discarded() {
        let records = vec![sample_record(0)];
        let mut bytes = wal_bytes(&records);
        let valid = bytes.len();
        bytes.extend_from_slice(&[0u8; 64]);
        let replay = decode_wal(&bytes).unwrap();
        assert_eq!(replay.ticks, records);
        assert_eq!(replay.valid_len, valid as u64);
        assert_eq!(replay.discarded_bytes, 64);
    }

    #[test]
    fn file_writer_repairs_torn_tail_and_appends() {
        let dir = std::env::temp_dir().join(format!("stb-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.stb");
        // Write two records, then tear the second.
        let records = vec![sample_record(0), sample_record(1)];
        let bytes = wal_bytes(&records);
        let one = wal_bytes(&records[..1]);
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.ticks, records[..1]);
        // Re-open at the valid prefix and append a fresh record.
        let mut w = WalWriter::open(&path, replay.valid_len, Durability::Fsync).unwrap();
        w.append(&sample_record(1)).unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.ticks, records);
        assert_eq!(
            replay.valid_len,
            one.len() as u64 + (bytes.len() - one.len()) as u64
        );
        // Reset truncates back to the header.
        w.reset().unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.ticks.is_empty());
        assert_eq!(replay.valid_len, WAL_HEADER_LEN);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    use crate::fault::{FaultSchedule, FaultSite, InjectedFault};

    #[test]
    fn failed_append_rolls_back_so_retry_is_clean() {
        let faults = FaultSchedule::new();
        let mut w = WalWriter::from_sink(Vec::new(), true, Durability::Buffered)
            .unwrap()
            .with_faults(faults.clone());
        let record = sample_record(0);

        // A torn partial write: without rollback, the retried frame would
        // land on top of the torn prefix and garble the whole tail.
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::torn(5));
        assert!(w.append(&record).is_err());
        assert!(w.append(&record).is_ok(), "retry after rollback");

        // A sync failure after the full frame was written: without
        // rollback, the retry would persist a duplicate of the frame.
        let next = sample_record(1);
        faults.fail_next_at(FaultSite::WalSync, InjectedFault::transient());
        assert!(w.append(&next).is_err());
        assert!(w.append(&next).is_ok(), "retry after sync rollback");

        let replay = decode_wal(&w.into_sink()).unwrap();
        let ticks: Vec<u64> = replay.ticks.iter().map(|t| t.tick).collect();
        assert_eq!(ticks, vec![0, 1], "exactly one copy of each record");
        assert_eq!(replay.discarded_bytes, 0, "no torn bytes survive");
    }

    #[test]
    fn file_backed_append_rollback_repairs_torn_prefix() {
        let dir = std::env::temp_dir().join(format!("stb-wal-rollback-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.stb");
        let faults = FaultSchedule::new();
        let mut w =
            WalWriter::open_with_faults(&path, 0, Durability::Buffered, Some(faults.clone()))
                .unwrap();
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::torn(7));
        assert!(w.append(&sample_record(0)).is_err());
        assert!(w.append(&sample_record(0)).is_ok());
        drop(w);
        let replay = read_wal(&path).unwrap();
        let ticks: Vec<u64> = replay.ticks.iter().map(|t| t.tick).collect();
        assert_eq!(ticks, vec![0]);
        assert_eq!(replay.discarded_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A sink whose rollback always fails: the writer must poison itself
    /// and fail fast instead of appending onto an unknowable tail.
    #[derive(Debug, Default)]
    struct NoRewind(Vec<u8>);

    impl Write for NoRewind {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl SyncWrite for NoRewind {}

    #[test]
    fn failed_rollback_poisons_the_writer() {
        let faults = FaultSchedule::new();
        let mut w = WalWriter::from_sink(NoRewind::default(), true, Durability::Buffered)
            .unwrap()
            .with_faults(faults.clone());
        w.append(&sample_record(0)).unwrap();
        faults.fail_next_at(FaultSite::WalAppend, InjectedFault::torn(3));
        assert!(w.append(&sample_record(1)).is_err());
        // The torn prefix could not be rewound: refuse to stack frames.
        assert!(matches!(
            w.append(&sample_record(1)),
            Err(StoreError::WalClosed)
        ));
    }
}
