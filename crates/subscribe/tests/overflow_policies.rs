//! The overflow-policy contract, policy by policy:
//!
//! * `Block` never loses a diff — every committed change reaches the
//!   subscriber, in order, even when the channel fills.
//! * `CoalesceLatest` converges — however many intermediate states were
//!   merged away, the last drained diff's `current` is bit-identical to a
//!   fresh point-in-time query, and the merge count is reported.
//! * `DropCounted` keeps the oldest queued diffs and counts exactly the
//!   overflow.
//!
//! Plus the registry mechanics the policies sit on: canonical
//! subscription identity (duplicate terms collapse), dirty-term
//! intersection (non-matching registrations are never evaluated), initial
//! baselines, unchanged-suppression, and disconnect garbage collection.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use stb_core::CombinatorialPattern;
use stb_corpus::{CollectionBuilder, StreamId, TermId};
use stb_geo::GeoPoint;
use stb_search::{EngineConfig, Query, ServingFront, ShardedEngine};
use stb_subscribe::{OverflowPolicy, SubscriptionOptions, SubscriptionRegistry};
use stb_timeseries::TimeInterval;

/// A small two-term fixture: `flood` is the subscribed term whose
/// patterns the test re-mines tick by tick; `cricket` stays quiet.
struct Fixture {
    engine: ShardedEngine,
    registry: Arc<SubscriptionRegistry>,
    front: Arc<ServingFront>,
    flood: TermId,
    cricket: TermId,
    tick: u64,
}

fn pattern(score: f64) -> CombinatorialPattern {
    CombinatorialPattern::new(
        vec![StreamId(0), StreamId(1)],
        TimeInterval::new(4, 6),
        score,
        vec![],
    )
}

impl Fixture {
    fn new() -> Self {
        let mut b = CollectionBuilder::new(10);
        let flood = b.dict_mut().intern("flood");
        let cricket = b.dict_mut().intern("cricket");
        let s0 = b.add_stream("A", GeoPoint::new(0.0, 0.0));
        let s1 = b.add_stream("B", GeoPoint::new(1.0, 1.0));
        for ts in 0..10 {
            for &s in &[s0, s1] {
                let mut counts = HashMap::new();
                counts.insert(cricket, 3u32);
                counts.insert(flood, 1 + (ts as u32) % 3);
                b.add_document(s, ts, counts);
            }
        }
        let mut engine = ShardedEngine::new(Arc::new(b.build()), EngineConfig::default(), 4, 16);
        engine.set_patterns(flood, &[pattern(1.0)]);
        engine.finalize_with_threads(1);
        engine.publish();
        let front = engine.front();
        let registry = Arc::new(SubscriptionRegistry::new(Arc::clone(&front)));
        Self {
            engine,
            registry,
            front,
            flood,
            cricket,
            tick: 0,
        }
    }

    /// One "commit": re-mine `flood` with a new pattern score, publish a
    /// generation, and run the notify pass with `flood` dirty.
    fn commit_flood(&mut self, score: f64) {
        self.engine.set_patterns(self.flood, &[pattern(score)]);
        self.engine.publish();
        self.tick += 1;
        let dirty: BTreeSet<TermId> = [self.flood].into_iter().collect();
        self.registry.on_commit(self.tick, &dirty, |_| Vec::new());
    }
}

#[test]
fn block_policy_never_loses_a_diff() {
    let mut fx = Fixture::new();
    let handle = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood]).top_k(5),
            SubscriptionOptions::default()
                .capacity(2)
                .overflow(OverflowPolicy::Block),
        )
        .unwrap();

    // Drain from another thread with a delay, so the committer genuinely
    // blocks on the full channel and then completes every send.
    const COMMITS: usize = 8;
    let receiver = {
        let handle = handle.clone();
        std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < COMMITS {
                std::thread::sleep(Duration::from_millis(5));
                match handle.recv_timeout(Duration::from_secs(20)) {
                    Some(d) => got.push(d),
                    None => break,
                }
            }
            got
        })
    };
    for i in 0..COMMITS {
        fx.commit_flood(2.0 + i as f64);
    }
    let got = receiver.join().unwrap();

    assert_eq!(got.len(), COMMITS, "no diff may be lost under Block");
    let ticks: Vec<u64> = got.iter().map(|d| d.tick.unwrap()).collect();
    assert_eq!(ticks, (1..=COMMITS as u64).collect::<Vec<_>>());
    // The stream chains: each diff's previous is its predecessor's
    // current, and the last current matches a fresh query bit-for-bit.
    for pair in got.windows(2) {
        assert_eq!(pair[1].previous, pair[0].current);
    }
    let fresh = fx.front.query(&Query::terms([fx.flood]).top_k(5)).unwrap();
    let last = got.last().unwrap();
    assert_eq!(last.current.len(), fresh.results.len());
    for (a, b) in last.current.iter().zip(&fresh.results) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
    assert_eq!(handle.dropped(), 0);
    assert_eq!(handle.coalesced(), 0);
}

#[test]
fn coalesce_latest_converges_to_final_state() {
    let mut fx = Fixture::new();
    let handle = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood]).top_k(5),
            SubscriptionOptions::default()
                .capacity(1)
                .overflow(OverflowPolicy::CoalesceLatest),
        )
        .unwrap();
    let baseline = fx.front.query(&Query::terms([fx.flood]).top_k(5)).unwrap();

    const COMMITS: usize = 6;
    for i in 0..COMMITS {
        fx.commit_flood(3.0 + i as f64);
    }

    let diffs = handle.drain();
    assert_eq!(diffs.len(), 1, "capacity-1 coalescing leaves one diff");
    let diff = &diffs[0];
    assert_eq!(diff.coalesced as usize, COMMITS - 1);
    assert_eq!(handle.coalesced() as usize, COMMITS - 1);
    assert_eq!(diff.tick, Some(COMMITS as u64), "newest tick wins");
    // Spans the whole window: previous is the pre-commit baseline,
    // current is bit-identical to a fresh query now.
    assert_eq!(diff.previous, baseline.results);
    let fresh = fx.front.query(&Query::terms([fx.flood]).top_k(5)).unwrap();
    assert_eq!(diff.current.len(), fresh.results.len());
    for (a, b) in diff.current.iter().zip(&fresh.results) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
    assert!(handle.drain().is_empty());
}

#[test]
fn drop_counted_keeps_oldest_and_counts_overflow() {
    let mut fx = Fixture::new();
    let handle = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood]).top_k(5),
            SubscriptionOptions::default()
                .capacity(2)
                .overflow(OverflowPolicy::DropCounted),
        )
        .unwrap();

    const COMMITS: usize = 7;
    for i in 0..COMMITS {
        fx.commit_flood(4.0 + i as f64);
    }

    assert_eq!(handle.pending(), 2);
    assert_eq!(handle.dropped() as usize, COMMITS - 2);
    let metrics = fx.registry.metrics();
    assert_eq!(metrics.dropped as usize, COMMITS - 2);
    assert_eq!(metrics.notifications, 2);
    // The queue keeps history from the front: the first two commits.
    let diffs = handle.drain();
    assert_eq!(diffs[0].tick, Some(1));
    assert_eq!(diffs[1].tick, Some(2));
}

#[test]
fn drop_counted_diff_stream_stays_contiguous_across_drops() {
    let mut fx = Fixture::new();
    let handle = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood]).top_k(5),
            SubscriptionOptions::default()
                .capacity(1)
                .overflow(OverflowPolicy::DropCounted),
        )
        .unwrap();

    fx.commit_flood(2.0); // delivered, fills the capacity-1 queue
    fx.commit_flood(3.0); // dropped
    fx.commit_flood(4.0); // dropped
    let first = handle.drain();
    assert_eq!(first.len(), 1);
    assert_eq!(handle.dropped(), 2);

    // The next delivered diff spans the dropped window: its `previous`
    // is the last state the subscriber actually received (tick 1), not
    // the phantom tick-3 state it never saw.
    fx.commit_flood(5.0);
    let second = handle.drain();
    assert_eq!(second.len(), 1);
    assert_eq!(second[0].tick, Some(4));
    assert_eq!(
        second[0].previous, first[0].current,
        "`previous` must name a state the subscriber received"
    );
}

/// A committer blocked on a full `Block` channel must wake and observe
/// the disconnect when the last handle is dropped (or the subscription
/// closed) concurrently — the commit path may never wedge on an
/// abandoned subscription. The disconnect notification takes the queue
/// mutex before signalling so the wakeup cannot be lost between the
/// sender's disconnect check and its wait.
#[test]
fn blocked_sender_wakes_when_last_handle_drops() {
    let mut fx = Fixture::new();
    let handle = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood]).top_k(5),
            SubscriptionOptions::default()
                .capacity(1)
                .overflow(OverflowPolicy::Block),
        )
        .unwrap();
    fx.commit_flood(2.0); // fills the queue
    fx.engine.set_patterns(fx.flood, &[pattern(3.0)]);
    fx.engine.publish();

    let registry = Arc::clone(&fx.registry);
    let flood = fx.flood;
    let committer = std::thread::spawn(move || {
        let dirty: BTreeSet<TermId> = [flood].into_iter().collect();
        registry.on_commit(2, &dirty, |_| Vec::new())
    });
    std::thread::sleep(Duration::from_millis(50));
    drop(handle);
    let report = committer.join().unwrap();
    assert_eq!(report.notified, 0);
    assert_eq!(report.disconnected, 1, "sender observed the disconnect");
    assert_eq!(fx.registry.len(), 0, "registration garbage-collected");
}

#[test]
fn blocked_sender_wakes_when_subscription_closes() {
    let mut fx = Fixture::new();
    let handle = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood]).top_k(5),
            SubscriptionOptions::default()
                .capacity(1)
                .overflow(OverflowPolicy::Block),
        )
        .unwrap();
    fx.commit_flood(2.0);
    fx.engine.set_patterns(fx.flood, &[pattern(3.0)]);
    fx.engine.publish();

    let registry = Arc::clone(&fx.registry);
    let flood = fx.flood;
    let committer = std::thread::spawn(move || {
        let dirty: BTreeSet<TermId> = [flood].into_iter().collect();
        registry.on_commit(2, &dirty, |_| Vec::new())
    });
    std::thread::sleep(Duration::from_millis(50));
    handle.close();
    let report = committer.join().unwrap();
    assert_eq!(report.notified, 0);
    assert_eq!(report.disconnected, 1);
    assert_eq!(handle.drain().len(), 1, "queued diff stays drainable");
}

/// Registering while commits race: a fresh registration must never be
/// garbage-collected before its handle exists, its baseline must be
/// ordered against the notify pass (no commit falls silently between
/// snapshot and index insert), and the initial baseline diff is always
/// first on the channel.
#[test]
fn subscribing_under_concurrent_commits_never_loses_a_registration() {
    let fx = Fixture::new();
    let registry = Arc::clone(&fx.registry);
    let front = Arc::clone(&fx.front);
    let flood = fx.flood;
    let mut engine = fx.engine;
    let dirty: BTreeSet<TermId> = [flood].into_iter().collect();

    let stop = Arc::new(AtomicBool::new(false));
    let committer = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        let dirty = dirty.clone();
        std::thread::spawn(move || {
            let mut tick = 0u64;
            let mut score = 1.0;
            while !stop.load(Ordering::SeqCst) {
                tick += 1;
                score += 1.0;
                engine.set_patterns(flood, &[pattern(score)]);
                engine.publish();
                registry.on_commit(tick, &dirty, |_| Vec::new());
            }
            (engine, tick)
        })
    };

    const SUBS: usize = 50;
    let mut handles = Vec::with_capacity(SUBS);
    for _ in 0..SUBS {
        handles.push(
            registry
                .subscribe(
                    &Query::terms([flood]).top_k(5),
                    SubscriptionOptions::default().notify_initial(true),
                )
                .unwrap(),
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::SeqCst);
    let (mut engine, tick) = committer.join().unwrap();

    assert_eq!(
        registry.len(),
        SUBS,
        "no live registration may be garbage-collected"
    );

    // One final commit: every registration hears it and converges to the
    // fresh point-in-time state, bit-for-bit.
    engine.set_patterns(flood, &[pattern(1000.0)]);
    engine.publish();
    registry.on_commit(tick + 1, &dirty, |_| Vec::new());
    let fresh = front.query(&Query::terms([flood]).top_k(5)).unwrap();
    for handle in &handles {
        let diffs = handle.drain();
        let last = diffs.last().expect("every registration hears the commit");
        assert!(
            diffs[0].previous.is_empty(),
            "the initial baseline is first on the channel"
        );
        for pair in diffs.windows(2) {
            assert!(
                pair[0].generation <= pair[1].generation,
                "generations arrive in order"
            );
        }
        assert_eq!(last.current.len(), fresh.results.len());
        for (a, b) in last.current.iter().zip(&fresh.results) {
            assert_eq!(a.doc, b.doc);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }
}

#[test]
fn non_matching_subscriptions_are_never_evaluated() {
    let mut fx = Fixture::new();
    let _quiet = fx
        .registry
        .subscribe(
            &Query::terms([fx.cricket]).top_k(5),
            SubscriptionOptions::default(),
        )
        .unwrap();
    for i in 0..5 {
        fx.commit_flood(2.0 + i as f64);
    }
    let metrics = fx.registry.metrics();
    assert_eq!(
        metrics.evaluations, 0,
        "a registration outside the dirty set costs nothing"
    );
    assert_eq!(metrics.notifications, 0);
}

#[test]
fn duplicate_terms_collapse_to_one_canonical_identity() {
    let fx = Fixture::new();
    let once = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood]).top_k(5),
            SubscriptionOptions::default(),
        )
        .unwrap();
    let twice = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood, fx.flood, fx.flood]).top_k(5),
            SubscriptionOptions::default(),
        )
        .unwrap();
    assert_eq!(once.key(), twice.key(), "registry keys agree");
    assert_eq!(twice.key().terms(), &[fx.flood]);
}

#[test]
fn initial_baseline_and_unchanged_suppression() {
    let mut fx = Fixture::new();
    let handle = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood]).top_k(5),
            SubscriptionOptions::default().notify_initial(true),
        )
        .unwrap();
    let initial = handle.try_recv().expect("initial baseline diff");
    assert_eq!(initial.tick, None);
    assert!(initial.previous.is_empty());
    assert_eq!(initial.current.len(), initial.entered.len());

    // Re-publishing the identical pattern changes nothing: the
    // registration is evaluated (the term is dirty) but stays silent.
    fx.commit_flood(1.0);
    assert!(handle.try_recv().is_none());
    let metrics = fx.registry.metrics();
    assert_eq!(metrics.evaluations, 1);
    assert_eq!(metrics.notifications, 1, "only the initial diff");
}

#[test]
fn dropping_every_handle_garbage_collects_the_registration() {
    let mut fx = Fixture::new();
    let handle = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood]).top_k(5),
            SubscriptionOptions::default(),
        )
        .unwrap();
    let clone = handle.clone();
    drop(handle);
    fx.commit_flood(2.0);
    assert_eq!(fx.registry.len(), 1, "a live clone keeps the registration");
    assert!(clone.try_recv().is_some());
    drop(clone);
    fx.commit_flood(3.0);
    assert_eq!(fx.registry.len(), 0, "last drop disconnects");
}

#[test]
fn unsubscribe_closes_but_pending_diffs_stay_drainable() {
    let mut fx = Fixture::new();
    let handle = fx
        .registry
        .subscribe(
            &Query::terms([fx.flood]).top_k(5),
            SubscriptionOptions::default(),
        )
        .unwrap();
    fx.commit_flood(2.0);
    assert!(fx.registry.unsubscribe(handle.id()));
    assert!(!fx.registry.unsubscribe(handle.id()));
    assert!(handle.is_closed());
    assert_eq!(handle.drain().len(), 1);
    fx.commit_flood(3.0);
    assert!(handle.try_recv().is_none());
}

#[test]
fn vacuous_standing_queries_are_rejected() {
    let fx = Fixture::new();
    let err = fx
        .registry
        .subscribe(
            &Query::text("nosuchword").unknown_words(stb_search::UnknownWords::EmptyResponse),
            SubscriptionOptions::default(),
        )
        .unwrap_err();
    assert!(matches!(err, stb_search::QueryError::EmptyQuery));
}
