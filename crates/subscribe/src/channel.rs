//! Bounded per-subscription notification channels with configurable
//! overflow behavior.

use crate::diff::ResultDiff;
use crate::registry::SubscriptionId;
use stb_search::QueryKey;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// What the commit-side sender does when a subscription's channel is full
/// — the same backpressure vocabulary the ingest admission path speaks
/// (`Backpressure::{Block, Shed, Error}`), specialized to notifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Wait for the subscriber to drain the channel. No diff is ever
    /// lost, at the price of coupling commit latency to the slowest
    /// blocking subscriber (senders still abort if every handle is
    /// dropped, so an abandoned subscription cannot wedge a commit).
    Block,
    /// Merge every queued diff plus the incoming one into a single diff
    /// spanning oldest `previous` → newest `current`, with the number of
    /// merged diffs counted in [`ResultDiff::coalesced`]. The subscriber
    /// always converges to the final state; intermediate states are
    /// collapsed, never reordered.
    #[default]
    CoalesceLatest,
    /// Drop the incoming diff and count it (visible via
    /// [`SubscriptionHandle::dropped`] and the registry metrics). The
    /// subscriber keeps its queued history but may miss newer states
    /// until it drains.
    DropCounted,
}

/// Outcome of pushing one diff into a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendOutcome {
    /// Enqueued as-is.
    Delivered,
    /// Enqueued after merging `n` queued diffs into it.
    Coalesced(u64),
    /// Dropped under [`OverflowPolicy::DropCounted`].
    Dropped,
    /// Every receiving handle is gone (or the channel was closed); the
    /// registry should garbage-collect the registration.
    Disconnected,
}

#[derive(Debug, Default)]
struct Queue {
    diffs: VecDeque<ResultDiff>,
}

/// The shared state behind a subscription's handles.
#[derive(Debug)]
pub(crate) struct DiffChannel {
    queue: Mutex<Queue>,
    /// Signaled when a diff is pushed or the channel closes.
    ready: Condvar,
    /// Signaled when space frees up or the channel closes.
    space: Condvar,
    capacity: usize,
    policy: OverflowPolicy,
    /// Live receiving handles; at 0 the sender treats the channel as
    /// disconnected.
    receivers: AtomicUsize,
    closed: AtomicBool,
    delivered: AtomicU64,
    dropped: AtomicU64,
    coalesced: AtomicU64,
}

impl DiffChannel {
    pub(crate) fn new(capacity: usize, policy: OverflowPolicy) -> Arc<Self> {
        Arc::new(Self {
            queue: Mutex::new(Queue::default()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            policy,
            receivers: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Queue> {
        // Pushes and pops never panic while holding the lock; recover the
        // queue either way rather than poisoning every later notification.
        match self.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn disconnected(&self) -> bool {
        self.closed.load(SeqCst) || self.receivers.load(SeqCst) == 0
    }

    /// Pushes one diff under the channel's overflow policy. Called from
    /// the commit path with no registry lock held, so a `Block` wait can
    /// never deadlock against `subscribe`/`unsubscribe`.
    pub(crate) fn send(&self, diff: ResultDiff) -> SendOutcome {
        if self.disconnected() {
            return SendOutcome::Disconnected;
        }
        let mut q = self.lock();
        match self.policy {
            OverflowPolicy::Block => {
                while q.diffs.len() >= self.capacity {
                    if self.disconnected() {
                        return SendOutcome::Disconnected;
                    }
                    q = match self.space.wait(q) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                if self.disconnected() {
                    return SendOutcome::Disconnected;
                }
                q.diffs.push_back(diff);
                self.delivered.fetch_add(1, SeqCst);
                self.ready.notify_all();
                SendOutcome::Delivered
            }
            OverflowPolicy::CoalesceLatest => {
                if q.diffs.len() >= self.capacity {
                    let mut merged = q
                        .diffs
                        .pop_front()
                        .unwrap_or_else(|| unreachable!("capacity >= 1 and queue is full"));
                    let mut absorbed = 0u64;
                    while let Some(next) = q.diffs.pop_front() {
                        merged = ResultDiff::coalesce(merged, next);
                        absorbed += 1;
                    }
                    merged = ResultDiff::coalesce(merged, diff);
                    absorbed += 1;
                    q.diffs.push_back(merged);
                    self.delivered.fetch_add(1, SeqCst);
                    self.coalesced.fetch_add(absorbed, SeqCst);
                    self.ready.notify_all();
                    SendOutcome::Coalesced(absorbed)
                } else {
                    q.diffs.push_back(diff);
                    self.delivered.fetch_add(1, SeqCst);
                    self.ready.notify_all();
                    SendOutcome::Delivered
                }
            }
            OverflowPolicy::DropCounted => {
                if q.diffs.len() >= self.capacity {
                    self.dropped.fetch_add(1, SeqCst);
                    SendOutcome::Dropped
                } else {
                    q.diffs.push_back(diff);
                    self.delivered.fetch_add(1, SeqCst);
                    self.ready.notify_all();
                    SendOutcome::Delivered
                }
            }
        }
    }

    fn pop(&self, q: &mut Queue) -> Option<ResultDiff> {
        let diff = q.diffs.pop_front();
        if diff.is_some() {
            self.space.notify_all();
        }
        diff
    }

    pub(crate) fn try_recv(&self) -> Option<ResultDiff> {
        let mut q = self.lock();
        self.pop(&mut q)
    }

    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Option<ResultDiff> {
        let deadline = Instant::now() + timeout;
        let mut q = self.lock();
        loop {
            if let Some(diff) = self.pop(&mut q) {
                return Some(diff);
            }
            if self.closed.load(SeqCst) {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, res) = match self.ready.wait_timeout(q, deadline - now) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let pair = poisoned.into_inner();
                    (pair.0, pair.1)
                }
            };
            q = guard;
            if res.timed_out() && q.diffs.is_empty() {
                return None;
            }
        }
    }

    pub(crate) fn drain(&self) -> Vec<ResultDiff> {
        let mut q = self.lock();
        let out: Vec<_> = q.diffs.drain(..).collect();
        if !out.is_empty() {
            self.space.notify_all();
        }
        out
    }

    pub(crate) fn pending(&self) -> usize {
        self.lock().diffs.len()
    }

    pub(crate) fn close(&self) {
        self.closed.store(true, SeqCst);
        // Order the flag flip against a Block sender's check-then-wait:
        // without taking the queue mutex, the notify below could land
        // between a sender's `disconnected()` check (under the lock) and
        // its `space.wait()`, and be lost — wedging the commit path
        // forever. Acquiring and releasing the mutex forces any sender
        // that saw the old flag to already be parked in `wait`.
        drop(self.lock());
        self.space.notify_all();
        self.ready.notify_all();
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(SeqCst)
    }

    pub(crate) fn receivers(&self) -> usize {
        self.receivers.load(SeqCst)
    }

    pub(crate) fn delivered(&self) -> u64 {
        self.delivered.load(SeqCst)
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(SeqCst)
    }

    pub(crate) fn coalesced(&self) -> u64 {
        self.coalesced.load(SeqCst)
    }
}

/// The receiving side of one standing subscription.
///
/// Cloneable: clones share the same bounded queue (each delivered diff is
/// consumed by exactly one handle — clone-and-split is for handing the
/// stream to another thread, not for fan-out). When the last handle is
/// dropped the channel counts as disconnected: blocked senders wake and
/// the registry garbage-collects the registration on its next commit that
/// touches it.
#[derive(Debug)]
pub struct SubscriptionHandle {
    id: SubscriptionId,
    key: QueryKey,
    channel: Arc<DiffChannel>,
}

impl SubscriptionHandle {
    pub(crate) fn new(id: SubscriptionId, key: QueryKey, channel: Arc<DiffChannel>) -> Self {
        channel.receivers.fetch_add(1, SeqCst);
        Self { id, key, channel }
    }

    /// The subscription's identifier in its registry.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// The canonical key of the standing query — the same identity the
    /// result cache uses (sorted deduplicated terms, k, effective
    /// configuration, filters).
    pub fn key(&self) -> &QueryKey {
        &self.key
    }

    /// Takes the next pending diff without waiting.
    pub fn try_recv(&self) -> Option<ResultDiff> {
        self.channel.try_recv()
    }

    /// Waits up to `timeout` for the next diff. Returns `None` on timeout
    /// or when the subscription has been closed and the queue is empty.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<ResultDiff> {
        self.channel.recv_timeout(timeout)
    }

    /// Takes every pending diff at once, oldest first.
    pub fn drain(&self) -> Vec<ResultDiff> {
        self.channel.drain()
    }

    /// Number of diffs currently queued.
    pub fn pending(&self) -> usize {
        self.channel.pending()
    }

    /// Total diffs enqueued for this subscription (including coalesced
    /// merges, which enqueue one merged diff).
    pub fn delivered(&self) -> u64 {
        self.channel.delivered()
    }

    /// Diffs dropped under [`OverflowPolicy::DropCounted`].
    pub fn dropped(&self) -> u64 {
        self.channel.dropped()
    }

    /// Diffs merged away under [`OverflowPolicy::CoalesceLatest`].
    pub fn coalesced(&self) -> u64 {
        self.channel.coalesced()
    }

    /// Whether the subscription has been closed (via [`close`](Self::close)
    /// or `SubscriptionRegistry::unsubscribe`). Pending diffs remain
    /// drainable after closing.
    pub fn is_closed(&self) -> bool {
        self.channel.is_closed()
    }

    /// Closes the subscription from the receiving side: senders stop
    /// delivering and the registry garbage-collects the registration on
    /// the next commit that would have touched it.
    pub fn close(&self) {
        self.channel.close();
    }
}

impl Clone for SubscriptionHandle {
    fn clone(&self) -> Self {
        Self::new(self.id, self.key.clone(), Arc::clone(&self.channel))
    }
}

impl Drop for SubscriptionHandle {
    fn drop(&mut self) {
        if self.channel.receivers.fetch_sub(1, SeqCst) == 1 {
            // Last handle gone: wake any sender blocked on space so the
            // commit path can observe the disconnect instead of waiting
            // for a drain that will never come. The lock round-trip
            // orders the count change against a Block sender's
            // check-then-wait, so the wakeup cannot slip into the gap
            // between its `disconnected()` check and its `wait` (a lost
            // wakeup would block that sender forever).
            drop(self.channel.lock());
            self.channel.space.notify_all();
            self.channel.ready.notify_all();
        }
    }
}
