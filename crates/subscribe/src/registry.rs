//! The subscription registry: standing queries, the inverted
//! term→subscription index, and the commit-side notify pass.

use crate::channel::{DiffChannel, OverflowPolicy, SendOutcome, SubscriptionHandle};
use crate::diff::{ResultDiff, Trigger};
use stb_core::PatternRecord;
use stb_corpus::TermId;
use stb_obs::{Counter, LatencyHistogram, ObsRegistry};
use stb_search::{Query, QueryError, QueryKey, SearchResult, ServingFront};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Identifier of one standing registration within its registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

impl std::fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sub-{}", self.0)
    }
}

/// Per-subscription delivery configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriptionOptions {
    /// Bounded channel capacity in diffs (clamped to at least 1).
    pub capacity: usize,
    /// What the sender does when the channel is full.
    pub overflow: OverflowPolicy,
    /// Deliver an initial diff at registration time carrying the standing
    /// query's current results (`previous` empty, `tick` `None`), so the
    /// subscriber starts from an explicit baseline.
    pub notify_initial: bool,
    /// Also deliver diffs for re-evaluations whose results are
    /// bit-identical to the last delivered state (off by default — an
    /// affected registration whose top-k did not actually change stays
    /// silent).
    pub notify_unchanged: bool,
}

impl Default for SubscriptionOptions {
    fn default() -> Self {
        Self {
            capacity: 64,
            overflow: OverflowPolicy::default(),
            notify_initial: false,
            notify_unchanged: false,
        }
    }
}

impl SubscriptionOptions {
    /// Sets the channel capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the overflow policy.
    pub fn overflow(mut self, overflow: OverflowPolicy) -> Self {
        self.overflow = overflow;
        self
    }

    /// Requests the initial baseline diff.
    pub fn notify_initial(mut self, notify: bool) -> Self {
        self.notify_initial = notify;
        self
    }

    /// Requests diffs even when re-evaluation left the results unchanged.
    pub fn notify_unchanged(mut self, notify: bool) -> Self {
        self.notify_unchanged = notify;
        self
    }
}

/// One standing registration.
#[derive(Debug)]
struct SubEntry {
    id: SubscriptionId,
    /// The standing form of the query: terms resolved and deduplicated at
    /// registration time (text words are frozen to ids — later
    /// dictionary growth does not change what this subscription means).
    query: Query,
    key: QueryKey,
    options: SubscriptionOptions,
    /// The last result list actually *enqueued* to the channel. Neither
    /// suppressed unchanged diffs (the state genuinely did not change
    /// bitwise) nor `DropCounted` drops advance it, so every delivered
    /// diff's `previous` is a state the subscriber received.
    last: Mutex<Vec<SearchResult>>,
    channel: Arc<DiffChannel>,
}

#[derive(Debug, Default)]
struct Inner {
    subs: BTreeMap<u64, Arc<SubEntry>>,
    /// Inverted index: term → registrations whose canonical term set
    /// contains it. `BTreeMap`/`BTreeSet` keep the notify pass
    /// deterministic (ordered by term, then subscription id).
    term_index: BTreeMap<TermId, BTreeSet<u64>>,
    next_id: u64,
}

/// Point-in-time description of one registration (for operator
/// inspection; see [`SubscriptionRegistry::subscriptions`]).
#[derive(Debug, Clone)]
pub struct SubscriptionInfo {
    /// The subscription.
    pub id: SubscriptionId,
    /// Its canonical key (`describe()` renders it for logs).
    pub key: QueryKey,
    /// Diffs currently queued.
    pub pending: usize,
    /// Total diffs enqueued so far.
    pub delivered: u64,
    /// Diffs dropped (`DropCounted`).
    pub dropped: u64,
    /// Diffs merged away (`CoalesceLatest`).
    pub coalesced: u64,
}

/// Counters of one registry, read live.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscribeMetrics {
    /// Currently active registrations.
    pub active: usize,
    /// Registrations ever accepted.
    pub registered_total: u64,
    /// Standing-query re-evaluations run by commits.
    pub evaluations: u64,
    /// Re-evaluations that failed (counted, skipped; the registration
    /// stays).
    pub eval_errors: u64,
    /// Diffs enqueued to subscriber channels.
    pub notifications: u64,
    /// Diffs dropped under [`OverflowPolicy::DropCounted`].
    pub dropped: u64,
    /// Diffs merged away under [`OverflowPolicy::CoalesceLatest`].
    pub coalesced: u64,
}

/// What one commit's notify pass did (returned to the pipeline so it can
/// trace/span the work only when there was any).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NotifyReport {
    /// Registrations re-evaluated (their term set intersected the dirty
    /// set).
    pub evaluated: usize,
    /// Diffs enqueued (including coalesced merges).
    pub notified: usize,
    /// Diffs dropped by `DropCounted` channels.
    pub dropped: usize,
    /// Registrations garbage-collected (every handle dropped).
    pub disconnected: usize,
}

/// A registry of standing queries over one serving front.
///
/// `subscribe` validates and canonicalizes the query against the current
/// generation, takes a baseline snapshot, and indexes the registration by
/// its canonical term set. On each commit the ingest pipeline calls
/// [`on_commit`](Self::on_commit) with the tick's dirty terms; only
/// registrations whose term set intersects them are re-evaluated — cost
/// scales with `|dirty ∩ subscribed|`, not with the number of
/// registrations. Evaluation uses
/// [`ServingFront::query_snapshot`], so every notification is bracketed
/// to the generation it was computed from.
pub struct SubscriptionRegistry {
    front: Arc<ServingFront>,
    inner: Mutex<Inner>,
    registered_total: Arc<Counter>,
    evaluations: Arc<Counter>,
    eval_errors: Arc<Counter>,
    notifications: Arc<Counter>,
    dropped: Arc<Counter>,
    coalesced: Arc<Counter>,
    notify_ns: Arc<LatencyHistogram>,
}

impl SubscriptionRegistry {
    /// Creates an empty registry over `front`.
    pub fn new(front: Arc<ServingFront>) -> Self {
        Self {
            front,
            inner: Mutex::new(Inner::default()),
            registered_total: Arc::new(Counter::new()),
            evaluations: Arc::new(Counter::new()),
            eval_errors: Arc::new(Counter::new()),
            notifications: Arc::new(Counter::new()),
            dropped: Arc::new(Counter::new()),
            coalesced: Arc::new(Counter::new()),
            notify_ns: Arc::new(LatencyHistogram::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The serving front registrations evaluate against.
    pub fn front(&self) -> &Arc<ServingFront> {
        &self.front
    }

    /// Registers a standing query and returns its receiving handle.
    ///
    /// The query is validated and resolved *now* against the current
    /// generation (text words frozen to term ids, duplicates collapsed —
    /// the registration's identity is exactly the query's cache key). A
    /// query with no resolvable terms cannot ever be triggered and is
    /// rejected with [`QueryError::EmptyQuery`].
    pub fn subscribe(
        &self,
        query: &Query,
        options: SubscriptionOptions,
    ) -> Result<SubscriptionHandle, QueryError> {
        let (standing, key) = self.front.canonicalize(query)?;
        if key.terms().is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let channel = DiffChannel::new(options.capacity, options.overflow);
        let handle = {
            let mut inner = self.lock();
            // The baseline snapshot is taken while holding the registry
            // lock so it is ordered against `on_commit`'s collect phase:
            // a commit whose notify pass collected before this
            // registration was indexed published its generation first,
            // so the baseline taken here already reflects it — no commit
            // can fall silently between the baseline and the index
            // insert. (`query_snapshot` is a lock-free epoch load, so
            // holding the registry lock across it cannot deadlock.)
            let snapshot = self.front.query_snapshot(&standing)?;
            let id = SubscriptionId(inner.next_id);
            inner.next_id += 1;
            // The handle — and with it the channel's receiver count —
            // exists before the entry becomes visible, so a concurrent
            // notify pass can never garbage-collect a fresh registration
            // as receiver-less.
            let handle = SubscriptionHandle::new(id, key.clone(), Arc::clone(&channel));
            let entry = Arc::new(SubEntry {
                id,
                query: standing,
                key,
                options,
                last: Mutex::new(snapshot.results().to_vec()),
                channel,
            });
            for &term in entry.key.terms() {
                inner.term_index.entry(term).or_default().insert(id.0);
            }
            inner.subs.insert(id.0, Arc::clone(&entry));
            if options.notify_initial {
                let initial = ResultDiff::compute(
                    id,
                    None,
                    snapshot.generation,
                    Vec::new(),
                    snapshot.response.results,
                    Vec::new(),
                );
                // Still under the registry lock: any commit diff for
                // this registration is collected — and therefore sent —
                // only after the lock is released, so the baseline is
                // always first on the channel. The queue is freshly
                // created (capacity >= 1): this cannot block or drop.
                let _ = handle_send(self, &entry, initial);
            }
            handle
        };
        self.registered_total.inc();
        Ok(handle)
    }

    /// Removes a registration and closes its channel (pending diffs stay
    /// drainable on existing handles). Returns whether it existed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let entry = {
            let mut inner = self.lock();
            let entry = inner.subs.remove(&id.0);
            if let Some(e) = &entry {
                unindex(&mut inner, e);
            }
            entry
        };
        match entry {
            Some(e) => {
                e.channel.close();
                true
            }
            None => false,
        }
    }

    /// Number of active registrations.
    pub fn len(&self) -> usize {
        self.lock().subs.len()
    }

    /// Whether no registration is active.
    pub fn is_empty(&self) -> bool {
        self.lock().subs.is_empty()
    }

    /// A point-in-time description of every registration, ordered by id.
    pub fn subscriptions(&self) -> Vec<SubscriptionInfo> {
        self.lock()
            .subs
            .values()
            .map(|e| SubscriptionInfo {
                id: e.id,
                key: e.key.clone(),
                pending: e.channel.pending(),
                delivered: e.channel.delivered(),
                dropped: e.channel.dropped(),
                coalesced: e.channel.coalesced(),
            })
            .collect()
    }

    /// Live counter values.
    pub fn metrics(&self) -> SubscribeMetrics {
        SubscribeMetrics {
            active: self.len(),
            registered_total: self.registered_total.get(),
            evaluations: self.evaluations.get(),
            eval_errors: self.eval_errors.get(),
            notifications: self.notifications.get(),
            dropped: self.dropped.get(),
            coalesced: self.coalesced.get(),
        }
    }

    /// The notification-latency histogram (nanoseconds per delivered
    /// evaluation: snapshot query + diff + enqueue).
    pub fn notify_latency(&self) -> &Arc<LatencyHistogram> {
        &self.notify_ns
    }

    /// Adopts the registry's live cells into an [`ObsRegistry`] under the
    /// `subscribe_*` names, so the cells the notify pass already
    /// increments are the very cells the exposition renders.
    pub fn register_obs(&self, obs: &ObsRegistry) {
        obs.adopt_counter(
            "subscribe_registered_total",
            Arc::clone(&self.registered_total),
        );
        obs.adopt_counter("subscribe_evaluations_total", Arc::clone(&self.evaluations));
        obs.adopt_counter("subscribe_eval_errors_total", Arc::clone(&self.eval_errors));
        obs.adopt_counter(
            "subscribe_notifications_total",
            Arc::clone(&self.notifications),
        );
        obs.adopt_counter("subscribe_dropped_total", Arc::clone(&self.dropped));
        obs.adopt_counter("subscribe_coalesced_total", Arc::clone(&self.coalesced));
        obs.adopt_histogram("subscribe_notify_ns", Arc::clone(&self.notify_ns));
    }

    /// The commit-side notify pass: intersects the tick's dirty terms
    /// with the inverted index, re-evaluates only the affected
    /// registrations against the just-published generation, and pushes
    /// diffs under each channel's overflow policy.
    ///
    /// `patterns_of` is called lazily, at most once per affected term,
    /// to capture the triggering patterns — commits with no affected
    /// subscription never pay for pattern capture.
    ///
    /// The registry lock is held only to collect affected entries (and
    /// to garbage-collect disconnected ones); evaluation, diffing, and
    /// channel pushes run without it, so a `Block`ed channel can never
    /// deadlock against concurrent `subscribe`/`unsubscribe` calls.
    pub fn on_commit(
        &self,
        tick: u64,
        dirty: &BTreeSet<TermId>,
        patterns_of: impl Fn(TermId) -> Vec<PatternRecord>,
    ) -> NotifyReport {
        let mut report = NotifyReport::default();
        if dirty.is_empty() {
            return report;
        }
        let affected: Vec<(Arc<SubEntry>, Vec<TermId>)> = {
            let mut inner = self.lock();
            if inner.subs.is_empty() {
                return report;
            }
            // Intersect over the smaller side: a commit with few dirty
            // terms probes the index; a commit dirtying everything walks
            // the (ordered) index once.
            let mut hits: BTreeMap<u64, Vec<TermId>> = BTreeMap::new();
            if dirty.len() <= inner.term_index.len() {
                for &term in dirty {
                    if let Some(ids) = inner.term_index.get(&term) {
                        for &id in ids {
                            hits.entry(id).or_default().push(term);
                        }
                    }
                }
            } else {
                for (&term, ids) in &inner.term_index {
                    if dirty.contains(&term) {
                        for &id in ids {
                            hits.entry(id).or_default().push(term);
                        }
                    }
                }
            }
            // Garbage-collect disconnected registrations among the hits
            // before evaluating them.
            let mut out = Vec::with_capacity(hits.len());
            for (id, terms) in hits {
                let Some(entry) = inner.subs.get(&id) else {
                    continue;
                };
                if entry.channel.receivers() == 0 || entry.channel.is_closed() {
                    let entry = Arc::clone(entry);
                    inner.subs.remove(&id);
                    unindex(&mut inner, &entry);
                    report.disconnected += 1;
                    continue;
                }
                out.push((Arc::clone(entry), terms));
            }
            out
        };

        let mut pattern_cache: HashMap<TermId, Vec<PatternRecord>> = HashMap::new();
        let mut gone: Vec<SubscriptionId> = Vec::new();
        for (entry, terms) in affected {
            let started = Instant::now();
            report.evaluated += 1;
            self.evaluations.inc();
            let snapshot = match self.front.query_snapshot(&entry.query) {
                Ok(s) => s,
                Err(_) => {
                    // Standing queries were validated at registration and
                    // cannot become invalid; count and keep going rather
                    // than poisoning the commit path.
                    self.eval_errors.inc();
                    continue;
                }
            };
            let mut last = match entry.last.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let current = snapshot.response.results.clone();
            let diff = ResultDiff::compute(
                entry.id,
                Some(tick),
                snapshot.generation,
                last.clone(),
                current.clone(),
                Vec::new(),
            );
            if diff.is_unchanged() && !entry.options.notify_unchanged {
                continue;
            }
            let triggers: Vec<Trigger> = terms
                .iter()
                .map(|&term| Trigger {
                    term,
                    patterns: pattern_cache
                        .entry(term)
                        .or_insert_with(|| patterns_of(term))
                        .clone(),
                })
                .collect();
            let diff = ResultDiff { triggers, ..diff };
            // `last` is held across the send and advanced only when the
            // diff actually reached the queue: a `DropCounted` drop
            // leaves it at the last *enqueued* state, so the next
            // delivered diff spans the gap and `previous` always names a
            // state the subscriber received (diff-stream contiguity).
            match handle_send(self, &entry, diff) {
                SendOutcome::Delivered | SendOutcome::Coalesced(_) => {
                    *last = current;
                    report.notified += 1;
                    self.notify_ns.record_duration(started.elapsed());
                }
                SendOutcome::Dropped => report.dropped += 1,
                SendOutcome::Disconnected => gone.push(entry.id),
            }
        }
        if !gone.is_empty() {
            let mut inner = self.lock();
            for id in gone {
                if let Some(entry) = inner.subs.remove(&id.0) {
                    unindex(&mut inner, &entry);
                    report.disconnected += 1;
                }
            }
        }
        report
    }
}

/// Removes `entry`'s terms from the inverted index.
fn unindex(inner: &mut Inner, entry: &SubEntry) {
    for term in entry.key.terms() {
        if let Some(ids) = inner.term_index.get_mut(term) {
            ids.remove(&entry.id.0);
            if ids.is_empty() {
                inner.term_index.remove(term);
            }
        }
    }
}

/// Pushes one diff and folds the outcome into the registry counters.
fn handle_send(
    registry: &SubscriptionRegistry,
    entry: &Arc<SubEntry>,
    diff: ResultDiff,
) -> SendOutcome {
    let outcome = entry.channel.send(diff);
    match outcome {
        SendOutcome::Delivered => registry.notifications.inc(),
        SendOutcome::Coalesced(n) => {
            registry.notifications.inc();
            registry.coalesced.add(n);
        }
        SendOutcome::Dropped => registry.dropped.inc(),
        SendOutcome::Disconnected => {}
    }
    outcome
}
