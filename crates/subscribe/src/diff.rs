//! Result diffs: what changed in a standing query's top-k between two
//! serving generations, and why.

use stb_core::PatternRecord;
use stb_corpus::TermId;
use stb_search::SearchResult;
use std::collections::HashMap;

use crate::registry::SubscriptionId;

/// One subscribed term that triggered a re-evaluation, with the patterns
/// the commit (re-)mined for it.
///
/// Patterns are carried as [`PatternRecord`]s — the frozen geometric form
/// with the spatial footprint captured at mining time — so a notification
/// is self-contained: the subscriber can inspect *why* its results moved
/// without holding any reference into the serving state.
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    /// The dirty term that intersected this subscription's term set.
    pub term: TermId,
    /// The term's patterns as mined by the triggering commit.
    pub patterns: Vec<PatternRecord>,
}

/// A document present in both the previous and current top-k whose rank
/// or score changed.
#[derive(Debug, Clone, PartialEq)]
pub struct Reranked {
    /// The document.
    pub doc: stb_corpus::DocId,
    /// Its rank in the previous top-k (0 = best).
    pub previous_rank: usize,
    /// Its rank in the current top-k.
    pub rank: usize,
    /// Its previous score.
    pub previous_score: f64,
    /// Its current score.
    pub score: f64,
}

/// One notification on a subscription channel: the standing query's top-k
/// before and after a commit, the membership/rank changes between them,
/// and the triggering patterns.
///
/// Both full lists ride along (top-k lists are small by construction), so
/// a diff stream is trivially replayable: `current` at each delivered diff
/// *is* the point-in-time result list at that generation — the property
/// the `subscribe_equivalence` proptests pin down bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultDiff {
    /// The subscription this diff belongs to.
    pub subscription: SubscriptionId,
    /// The ingest tick whose commit produced this diff, or `None` for the
    /// initial registration snapshot
    /// ([`SubscriptionOptions::notify_initial`](crate::SubscriptionOptions::notify_initial)).
    pub tick: Option<u64>,
    /// The serving generation the current results were evaluated against.
    /// Evaluation loads the epoch cell once, so `current` and
    /// `generation` always belong together (never torn).
    pub generation: u64,
    /// The top-k before the triggering commit (the subscription's last
    /// delivered state).
    pub previous: Vec<SearchResult>,
    /// The top-k at `generation`, best first.
    pub current: Vec<SearchResult>,
    /// Documents in `current` but not `previous`, in current-rank order,
    /// carrying their current scores.
    pub entered: Vec<SearchResult>,
    /// Documents in `previous` but not `current`, in previous-rank order,
    /// carrying their previous scores.
    pub left: Vec<SearchResult>,
    /// Documents in both lists whose rank or score (bitwise) changed.
    pub reranked: Vec<Reranked>,
    /// The subscribed terms whose re-mining triggered this evaluation,
    /// with their new patterns. Sorted by term id.
    pub triggers: Vec<Trigger>,
    /// How many earlier undelivered diffs were merged into this one under
    /// [`OverflowPolicy::CoalesceLatest`](crate::OverflowPolicy::CoalesceLatest)
    /// (0 = delivered exactly as computed).
    pub coalesced: u64,
}

impl ResultDiff {
    /// Computes the diff between two top-k lists.
    pub(crate) fn compute(
        subscription: SubscriptionId,
        tick: Option<u64>,
        generation: u64,
        previous: Vec<SearchResult>,
        current: Vec<SearchResult>,
        triggers: Vec<Trigger>,
    ) -> Self {
        let prev_by_doc: HashMap<_, _> = previous
            .iter()
            .enumerate()
            .map(|(rank, r)| (r.doc, (rank, r.score)))
            .collect();
        let mut entered = Vec::new();
        let mut reranked = Vec::new();
        for (rank, r) in current.iter().enumerate() {
            match prev_by_doc.get(&r.doc) {
                None => entered.push(*r),
                Some(&(prev_rank, prev_score)) => {
                    if prev_rank != rank || prev_score.to_bits() != r.score.to_bits() {
                        reranked.push(Reranked {
                            doc: r.doc,
                            previous_rank: prev_rank,
                            rank,
                            previous_score: prev_score,
                            score: r.score,
                        });
                    }
                }
            }
        }
        let current_docs: HashMap<_, _> = current.iter().map(|r| (r.doc, ())).collect();
        let left = previous
            .iter()
            .filter(|r| !current_docs.contains_key(&r.doc))
            .copied()
            .collect();
        Self {
            subscription,
            tick,
            generation,
            previous,
            current,
            entered,
            left,
            reranked,
            triggers,
            coalesced: 0,
        }
    }

    /// Whether the diff carries no membership, rank, or score change.
    pub fn is_unchanged(&self) -> bool {
        self.entered.is_empty() && self.left.is_empty() && self.reranked.is_empty()
    }

    /// Merges an older undelivered diff into a newer one (coalescing):
    /// the result spans from the older diff's `previous` to the newer
    /// diff's `current`, with membership/rank changes recomputed across
    /// the whole span and triggers unioned per term (newest patterns win).
    pub(crate) fn coalesce(older: Self, newer: Self) -> Self {
        let mut triggers_by_term: std::collections::BTreeMap<TermId, Vec<PatternRecord>> = older
            .triggers
            .into_iter()
            .map(|t| (t.term, t.patterns))
            .collect();
        for t in newer.triggers {
            triggers_by_term.insert(t.term, t.patterns);
        }
        let triggers = triggers_by_term
            .into_iter()
            .map(|(term, patterns)| Trigger { term, patterns })
            .collect();
        let mut merged = Self::compute(
            newer.subscription,
            newer.tick,
            newer.generation,
            older.previous,
            newer.current,
            triggers,
        );
        merged.coalesced = older.coalesced + newer.coalesced + 1;
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stb_corpus::DocId;

    fn r(doc: u32, score: f64) -> SearchResult {
        SearchResult {
            doc: DocId(doc),
            score,
        }
    }

    fn diff(prev: Vec<SearchResult>, curr: Vec<SearchResult>) -> ResultDiff {
        ResultDiff::compute(SubscriptionId(1), Some(3), 7, prev, curr, Vec::new())
    }

    #[test]
    fn membership_changes_are_classified() {
        let d = diff(
            vec![r(1, 5.0), r(2, 4.0), r(3, 3.0)],
            vec![r(4, 6.0), r(1, 5.0), r(2, 4.0)],
        );
        assert_eq!(d.entered, vec![r(4, 6.0)]);
        assert_eq!(d.left, vec![r(3, 3.0)]);
        // Docs 1 and 2 moved down one rank with unchanged scores.
        assert_eq!(d.reranked.len(), 2);
        assert_eq!(d.reranked[0].doc, DocId(1));
        assert_eq!(d.reranked[0].previous_rank, 0);
        assert_eq!(d.reranked[0].rank, 1);
        assert!(!d.is_unchanged());
    }

    #[test]
    fn score_change_alone_is_a_rerank() {
        let d = diff(vec![r(1, 5.0)], vec![r(1, 5.5)]);
        assert!(d.entered.is_empty() && d.left.is_empty());
        assert_eq!(d.reranked.len(), 1);
        assert_eq!(d.reranked[0].previous_score, 5.0);
        assert_eq!(d.reranked[0].score, 5.5);
    }

    #[test]
    fn identical_lists_are_unchanged() {
        let d = diff(vec![r(1, 5.0), r(2, 4.0)], vec![r(1, 5.0), r(2, 4.0)]);
        assert!(d.is_unchanged());
        // Bitwise comparison: 0.0 vs -0.0 counts as a change.
        let d = diff(vec![r(1, 0.0)], vec![r(1, -0.0)]);
        assert!(!d.is_unchanged());
    }

    #[test]
    fn coalesce_spans_oldest_previous_to_newest_current() {
        let d1 = diff(vec![r(1, 5.0)], vec![r(2, 6.0)]);
        let mut d2 = diff(vec![r(2, 6.0)], vec![r(1, 7.0)]);
        d2.tick = Some(4);
        let merged = ResultDiff::coalesce(d1, d2);
        assert_eq!(merged.tick, Some(4));
        assert_eq!(merged.previous, vec![r(1, 5.0)]);
        assert_eq!(merged.current, vec![r(1, 7.0)]);
        // Doc 1 left and came back with a new score: across the span it
        // is a rerank (same membership, different score).
        assert!(merged.entered.is_empty() && merged.left.is_empty());
        assert_eq!(merged.reranked.len(), 1);
        assert_eq!(merged.coalesced, 1);
    }

    #[test]
    fn coalesce_unions_triggers_newest_wins() {
        let mut d1 = diff(vec![], vec![r(1, 1.0)]);
        d1.triggers = vec![Trigger {
            term: TermId(7),
            patterns: Vec::new(),
        }];
        let mut d2 = diff(vec![r(1, 1.0)], vec![r(1, 2.0)]);
        d2.triggers = vec![Trigger {
            term: TermId(3),
            patterns: Vec::new(),
        }];
        let merged = ResultDiff::coalesce(d1, d2);
        let terms: Vec<_> = merged.triggers.iter().map(|t| t.term).collect();
        assert_eq!(terms, vec![TermId(3), TermId(7)]);
    }
}
