//! Continuous queries: standing subscriptions with incremental diff
//! evaluation over live ingest.
//!
//! Point-in-time queries answer "who is bursty *now*"; the alerting
//! workload the paper's burstiness signal exists for is the standing form
//! of the same question — "tell me when these terms go bursty in this
//! window/region". This crate turns the typed query DSL of `stb-search`
//! into that push modality:
//!
//! * A [`SubscriptionRegistry`] accepts standing [`Query`]s (time/region
//!   filters included) and hands back a cloneable [`SubscriptionHandle`]
//!   yielding [`ResultDiff`]s — which documents entered, left, or
//!   re-ranked within the top-k, plus the mined patterns that triggered
//!   the re-evaluation.
//! * Registrations are indexed by their canonical term set (the same
//!   deduplicated [`stb_search::QueryKey`] identity the result cache
//!   uses), so a commit intersects its dirty terms with the inverted
//!   term→subscription index and re-evaluates **only affected
//!   registrations** — cost scales with `|dirty ∩ subscribed|`, not with
//!   the number of standing queries.
//! * Every evaluation runs through
//!   [`ServingFront::query_snapshot`](stb_search::ServingFront::query_snapshot),
//!   which brackets the response to the serving generation it was computed
//!   from; a notification therefore never mixes state from two
//!   generations.
//! * Diffs are pushed through bounded channels with a configurable
//!   [`OverflowPolicy`] — [`Block`](OverflowPolicy::Block),
//!   [`CoalesceLatest`](OverflowPolicy::CoalesceLatest), or
//!   [`DropCounted`](OverflowPolicy::DropCounted) — the same backpressure
//!   vocabulary the ingest admission path speaks.
//!
//! The registry is wired into the ingest pipeline by `stb-ingest`
//! (`SearchHandle::subscribe` / the `commit_tick` notify hook); this crate
//! is deliberately below `stb-ingest` in the dependency order and knows
//! nothing about WALs or ticks beyond the tick number stamped on each
//! diff.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod channel;
pub mod diff;
pub mod registry;

pub use channel::{OverflowPolicy, SubscriptionHandle};
pub use diff::{Reranked, ResultDiff, Trigger};
pub use registry::{
    NotifyReport, SubscribeMetrics, SubscriptionId, SubscriptionInfo, SubscriptionOptions,
    SubscriptionRegistry,
};

// Re-exported for convenience: the types a subscriber interacts with.
pub use stb_search::{Query, QueryError, SearchResult};
