//! Weighted planar points.

use stb_geo::Point2D;

/// A planar point carrying a weight.
///
/// In the regional mining, each stream contributes one weighted point per
/// snapshot: its position on the map and its burstiness `B(t, D_x[i])` for
/// the term under consideration (Eq. 7 of the paper). Masked streams (those
/// already absorbed into a reported rectangle) carry weight `-inf` so that no
/// later rectangle can profitably contain them — this is exactly the masking
/// step of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WPoint {
    /// Horizontal map coordinate.
    pub x: f64,
    /// Vertical map coordinate.
    pub y: f64,
    /// Weight (burstiness) of the point; may be negative or `-inf`.
    pub weight: f64,
}

impl WPoint {
    /// Creates a weighted point.
    pub fn new(x: f64, y: f64, weight: f64) -> Self {
        Self { x, y, weight }
    }

    /// Creates a weighted point at a [`Point2D`] position.
    pub fn at(pos: Point2D, weight: f64) -> Self {
        Self::new(pos.x, pos.y, weight)
    }

    /// The position of the point.
    pub fn position(&self) -> Point2D {
        Point2D::new(self.x, self.y)
    }

    /// Whether the point is masked (weight is negative infinity).
    pub fn is_masked(&self) -> bool {
        self.weight == f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_position() {
        let p = WPoint::new(1.0, 2.0, 3.5);
        assert_eq!(p.position(), Point2D::new(1.0, 2.0));
        assert!(!p.is_masked());
    }

    #[test]
    fn at_builds_from_point2d() {
        let p = WPoint::at(Point2D::new(-1.0, 4.0), 0.5);
        assert_eq!(p.x, -1.0);
        assert_eq!(p.y, 4.0);
        assert_eq!(p.weight, 0.5);
    }

    #[test]
    fn masked_detection() {
        let p = WPoint::new(0.0, 0.0, f64::NEG_INFINITY);
        assert!(p.is_masked());
        let q = WPoint::new(0.0, 0.0, -1e300);
        assert!(!q.is_masked());
    }
}
