//! Weighted planar points.

use stb_geo::Point2D;

/// A planar point carrying a weight.
///
/// In the regional mining, each stream contributes one weighted point per
/// snapshot: its position on the map and its burstiness `B(t, D_x[i])` for
/// the term under consideration (Eq. 7 of the paper). Masked streams (those
/// already absorbed into a reported rectangle) carry weight `-inf` so that no
/// later rectangle can profitably contain them — this is exactly the masking
/// step of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WPoint {
    /// Horizontal map coordinate.
    pub x: f64,
    /// Vertical map coordinate.
    pub y: f64,
    /// Weight (burstiness) of the point; may be negative or `-inf`.
    pub weight: f64,
}

/// Collapses `-0.0` to `+0.0` so coordinate compression, which orders by
/// [`f64::total_cmp`] (where `-0.0 < +0.0`), never sees two distinct zeros.
fn canonical(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

impl WPoint {
    /// Creates a weighted point.
    ///
    /// Coordinates must be finite and the weight must not be `NaN` or
    /// `+inf` (`-inf` marks a masked point); both are debug-asserted. The
    /// rectangle kernels index coordinates with a total order, so a `NaN`
    /// coordinate would otherwise silently corrupt the search rather than
    /// fail loudly.
    pub fn new(x: f64, y: f64, weight: f64) -> Self {
        debug_assert!(
            x.is_finite() && y.is_finite(),
            "WPoint coordinates must be finite, got ({x}, {y})"
        );
        debug_assert!(
            !weight.is_nan() && weight != f64::INFINITY,
            "WPoint weight must be finite or -inf, got {weight}"
        );
        Self {
            x: canonical(x),
            y: canonical(y),
            weight,
        }
    }

    /// Creates a weighted point at a [`Point2D`] position.
    pub fn at(pos: Point2D, weight: f64) -> Self {
        Self::new(pos.x, pos.y, weight)
    }

    /// The position of the point.
    pub fn position(&self) -> Point2D {
        Point2D::new(self.x, self.y)
    }

    /// Whether the point is masked (weight is negative infinity).
    pub fn is_masked(&self) -> bool {
        self.weight == f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_position() {
        let p = WPoint::new(1.0, 2.0, 3.5);
        assert_eq!(p.position(), Point2D::new(1.0, 2.0));
        assert!(!p.is_masked());
    }

    #[test]
    fn at_builds_from_point2d() {
        let p = WPoint::at(Point2D::new(-1.0, 4.0), 0.5);
        assert_eq!(p.x, -1.0);
        assert_eq!(p.y, 4.0);
        assert_eq!(p.weight, 0.5);
    }

    #[test]
    fn negative_zero_coordinates_are_canonicalized() {
        let p = WPoint::new(-0.0, -0.0, 1.0);
        assert!(p.x.is_sign_positive());
        assert!(p.y.is_sign_positive());
        assert_eq!(p.x.total_cmp(&0.0), std::cmp::Ordering::Equal);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "coordinates must be finite")]
    fn nan_coordinates_are_rejected() {
        let _ = WPoint::new(f64::NAN, 0.0, 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "weight must be finite or -inf")]
    fn nan_weight_is_rejected() {
        let _ = WPoint::new(0.0, 0.0, f64::NAN);
    }

    #[test]
    fn masked_detection() {
        let p = WPoint::new(0.0, 0.0, f64::NEG_INFINITY);
        assert!(p.is_masked());
        let q = WPoint::new(0.0, 0.0, -1e300);
        assert!(!q.is_masked());
    }
}
