//! Max-subsegment segment tree: the DGM-style inner kernel of the
//! rectangle sweep.
//!
//! The `O(m^2 log m)` bichromatic-discrepancy algorithm of Dobkin,
//! Gunopulos & Maass replaces the per-x-pair Kadane re-scan of the
//! y-buckets with a segment tree over the compressed y-coordinates. Every
//! node maintains, for its leaf range, the weight `total`, the best
//! (non-empty) `prefix` sum, the best `suffix` sum, and the best subsegment
//! sum `best` — so a point-weight *add* costs `O(log m)` node
//! recombinations and the best achievable y-interval sum over the current
//! column range is read off the root in `O(1)`.
//!
//! The nodes deliberately do **not** track which leaf interval achieves
//! `best`: dropping the argmax bookkeeping keeps a node at four `f64`s and
//! every combine branch-free (three adds, four `max`es), which is what
//! makes the tree kernel beat the cache-friendly Kadane sweep in practice
//! and not just asymptotically. The caller ([`crate::RectWorkspace`])
//! remembers the winning column pair and recovers the y-interval with one
//! `O(m)` Kadane pass at the end of the sweep.
//!
//! The tree is an arena of `2 * m.next_power_of_two()` nodes that is built
//! once per workspace and *reset* (an `O(m)` memcpy from a precomputed
//! zero template) at the start of every left-boundary iteration, so the
//! sweep performs no per-iteration allocation.
//!
//! Masked points (`-inf` weight, Algorithm 1 of the paper) need no special
//! casing: a `-inf` add poisons its bucket, every aggregate containing the
//! bucket becomes `-inf`, and as long as no `+inf` weight enters the tree
//! (debug-asserted by [`crate::WPoint`]'s constructor; a `+inf` smuggled
//! in through the public fields in a release build is the caller's bug),
//! no `inf - inf = NaN` can arise.

/// Aggregates of a leaf range. `prefix`/`suffix`/`best` are over
/// *non-empty* leaf sub-ranges.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Sum of all leaf values in the range.
    total: f64,
    /// Best sum of a non-empty prefix of the range.
    prefix: f64,
    /// Best sum of a non-empty suffix of the range.
    suffix: f64,
    /// Best sum of a non-empty contiguous sub-range.
    best: f64,
}

impl Node {
    /// A leaf holding value `v`.
    fn leaf(v: f64) -> Self {
        Node {
            total: v,
            prefix: v,
            suffix: v,
            best: v,
        }
    }

    /// The identity of the combine operation: a vacant padding slot that
    /// contributes no weight and whose (non-existent) segments never win.
    fn identity() -> Self {
        Node {
            total: 0.0,
            prefix: f64::NEG_INFINITY,
            suffix: f64::NEG_INFINITY,
            best: f64::NEG_INFINITY,
        }
    }

    /// Combines the aggregates of two adjacent ranges (`l` left of `r`).
    /// Branch-free: `f64::max` lowers to a max instruction, not a jump.
    #[inline]
    fn combine(l: Node, r: Node) -> Self {
        Node {
            total: l.total + r.total,
            prefix: (l.total + r.prefix).max(l.prefix),
            suffix: (r.total + l.suffix).max(r.suffix),
            best: (l.suffix + r.prefix).max(l.best).max(r.best),
        }
    }
}

/// Segment tree over `m` weight buckets supporting `O(log m)` point-weight
/// adds and an `O(1)` root query for the maximum bucket-interval sum.
///
/// # Example
///
/// ```
/// use stb_discrepancy::MaxSegTree;
///
/// let mut tree = MaxSegTree::new(4);
/// tree.add(0, 2.0);
/// tree.add(1, -5.0);
/// tree.add(2, 3.0);
/// tree.add(3, 1.0);
/// // Best interval is buckets 2..=3 with sum 4.0.
/// assert_eq!(tree.best(), Some(4.0));
/// ```
#[derive(Debug, Clone)]
pub struct MaxSegTree {
    /// Number of real leaves (weight buckets).
    n: usize,
    /// Power-of-two leaf capacity; leaves live at `nodes[size..size + n]`.
    size: usize,
    /// 1-indexed implicit binary tree, `nodes[1]` is the root.
    nodes: Vec<Node>,
    /// Precomputed all-zero tree for O(m) resets.
    zero: Vec<Node>,
}

impl MaxSegTree {
    /// Creates a tree over `n` buckets, all holding weight `0.0`.
    pub fn new(n: usize) -> Self {
        let size = n.next_power_of_two().max(1);
        let mut zero = vec![Node::identity(); 2 * size];
        for slot in zero.iter_mut().skip(size).take(n) {
            *slot = Node::leaf(0.0);
        }
        for i in (1..size).rev() {
            zero[i] = Node::combine(zero[2 * i], zero[2 * i + 1]);
        }
        Self {
            n,
            size,
            nodes: zero.clone(),
            zero,
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tree has no buckets.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Resets every bucket to weight `0.0` without reallocating.
    pub fn reset(&mut self) {
        self.nodes.copy_from_slice(&self.zero);
    }

    /// Adds `w` to bucket `leaf` and recombines the `O(log m)` ancestors.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `leaf >= self.len()`.
    #[inline]
    pub fn add(&mut self, leaf: usize, w: f64) {
        debug_assert!(leaf < self.n, "bucket {leaf} out of range (len {})", self.n);
        let nodes = &mut self.nodes[..];
        let mut i = self.size + leaf;
        // Carry the updated node up in a register: each level loads only
        // the sibling and stores the recombined parent, instead of
        // re-loading the freshly written child through the store buffer.
        let mut cur = Node::leaf(nodes[i].total + w);
        nodes[i] = cur;
        while i > 1 {
            let sib = nodes[i ^ 1];
            cur = if i & 1 == 0 {
                Node::combine(cur, sib)
            } else {
                Node::combine(sib, cur)
            };
            i /= 2;
            nodes[i] = cur;
        }
    }

    /// The maximum sum of any non-empty bucket interval, or `None` when
    /// the tree has no buckets. The achieving interval is intentionally
    /// not tracked (see the module docs); recover it with one linear
    /// Kadane pass over the bucket values when needed.
    #[inline]
    pub fn best(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        Some(self.nodes[1].best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force best non-empty subsegment sum of `values`.
    fn brute(values: &[f64]) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for s in 0..values.len() {
            let mut sum = 0.0;
            for &v in &values[s..] {
                sum += v;
                best = best.max(sum);
            }
        }
        best
    }

    fn tree_of(values: &[f64]) -> MaxSegTree {
        let mut tree = MaxSegTree::new(values.len());
        for (i, &v) in values.iter().enumerate() {
            tree.add(i, v);
        }
        tree
    }

    #[test]
    fn empty_tree_has_no_best() {
        assert!(MaxSegTree::new(0).best().is_none());
        assert!(MaxSegTree::new(0).is_empty());
    }

    #[test]
    fn fresh_tree_is_all_zero() {
        let tree = MaxSegTree::new(5);
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.best(), Some(0.0));
    }

    #[test]
    fn single_bucket() {
        assert_eq!(tree_of(&[3.5]).best(), Some(3.5));
        assert_eq!(tree_of(&[-2.0]).best(), Some(-2.0));
    }

    #[test]
    fn matches_brute_force_on_fixed_sequences() {
        let cases: Vec<Vec<f64>> = vec![
            vec![2.0, -5.0, 3.0, 1.0],
            vec![-1.0, -2.0, -3.0],
            vec![1.0, 1.0, 1.0, 1.0, 1.0],
            vec![5.0, -1.0, -1.0, 5.0],
            vec![0.0, 0.0, 2.0, 0.0, -1.0, 3.0],
            vec![-2.0, 7.0],
        ];
        for values in cases {
            assert_eq!(tree_of(&values).best(), Some(brute(&values)), "{values:?}");
        }
    }

    #[test]
    fn matches_brute_force_on_pseudorandom_sequences() {
        // Deterministic LCG so the crate needs no rand dependency.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 6.0 - 3.0
        };
        for n in [1usize, 2, 3, 7, 8, 9, 31, 64, 100] {
            let values: Vec<f64> = (0..n).map(|_| next()).collect();
            let tree_best = tree_of(&values).best().unwrap();
            assert!(
                (tree_best - brute(&values)).abs() < 1e-9,
                "n={n}: {tree_best} vs {}",
                brute(&values)
            );
        }
    }

    #[test]
    fn incremental_adds_accumulate() {
        let mut tree = MaxSegTree::new(3);
        tree.add(1, 2.0);
        tree.add(1, 3.0);
        assert_eq!(tree.best(), Some(5.0));
        tree.add(0, 1.0);
        tree.add(2, 1.0);
        assert_eq!(tree.best(), Some(7.0));
    }

    #[test]
    fn neg_inf_poisons_its_bucket_only() {
        // Bridging over the poisoned bucket is -inf; the best stays single.
        assert_eq!(tree_of(&[4.0, f64::NEG_INFINITY, 6.0]).best(), Some(6.0));
        let all_poison = tree_of(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        let best = all_poison.best().unwrap();
        assert_eq!(best, f64::NEG_INFINITY);
        assert!(!best.is_nan());
    }

    #[test]
    fn reset_restores_zero_state() {
        let mut tree = tree_of(&[1.0, -2.0, f64::NEG_INFINITY, 3.0]);
        tree.reset();
        assert_eq!(tree.best(), Some(0.0));
        tree.add(3, 2.5);
        assert_eq!(tree.best(), Some(2.5));
    }

    #[test]
    fn non_power_of_two_padding_never_wins() {
        // n = 5 pads to 8; the padding slots must not surface in the root.
        assert_eq!(tree_of(&[-1.0, -1.0, -1.0, -1.0, -0.5]).best(), Some(-0.5));
    }
}
