//! `R-Bursty`: all non-overlapping positive-score rectangles (Algorithm 1).
//!
//! Given a term's per-stream burstiness values at one timestamp (weighted
//! points on the map), Algorithm 1 of the paper repeatedly extracts the
//! maximum-score rectangle, reports it, masks the streams it contains with
//! `-inf` weights, and stops once the best remaining rectangle has a
//! non-positive score. The result is the set of *Bursty Rectangles*
//! (Definition 1): non-overlapping (in terms of contained streams),
//! positive-score regions, at most `n` of them.
//!
//! The extraction loop is *incremental*: one [`RectWorkspace`] (coordinate
//! compression, per-column point lists, kernel scratch state) is built up
//! front and reused across every round, with masking applied as `O(1)`
//! point-weight updates instead of re-collecting and re-compressing the
//! whole input after each reported rectangle. The reference from-scratch
//! loop is kept as [`RBursty::find_from_scratch`] and property-tested to
//! produce byte-identical rectangle sequences.

use crate::max_rect::{RectKernel, RectWorkspace};
use crate::weighted_point::WPoint;
use stb_geo::Rect;

/// One bursty rectangle reported by [`RBursty`].
#[derive(Debug, Clone, PartialEq)]
pub struct BurstyRectangle {
    /// The reported region.
    pub rect: Rect,
    /// Indices (into the input point slice, i.e. stream indices) of the
    /// streams contained in the rectangle.
    pub members: Vec<usize>,
    /// The r-score of the rectangle (sum of member burstiness values);
    /// strictly positive.
    pub score: f64,
}

/// Configuration of the R-Bursty extraction.
///
/// # Example
///
/// Two positive-burstiness streams close together, one negative outlier far
/// away: Algorithm 1 reports a single rectangle containing the pair.
///
/// ```
/// use stb_discrepancy::{RBursty, WPoint};
///
/// let points = vec![
///     WPoint::new(0.0, 0.0, 2.0),
///     WPoint::new(1.0, 1.0, 1.5),
///     WPoint::new(50.0, 50.0, -1.0),
/// ];
/// let rects = RBursty::new().find(&points);
/// assert_eq!(rects.len(), 1);
/// assert_eq!(rects[0].members, vec![0, 1]);
/// assert!((rects[0].score - 3.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct RBursty {
    /// Upper bound on the number of rectangles reported. The theoretical
    /// bound is the number of streams; lowering this trades completeness for
    /// speed. `None` means no limit beyond the theoretical one.
    pub max_rectangles: Option<usize>,
    /// Minimum r-score for a rectangle to be reported. The paper uses 0
    /// (strictly positive scores); raising it suppresses noise-level
    /// rectangles.
    pub min_score: f64,
    /// The exact maximum-weight rectangle kernel driving each extraction
    /// round (see [`RectKernel`]).
    pub kernel: RectKernel,
}

impl Default for RBursty {
    fn default() -> Self {
        Self {
            max_rectangles: None,
            min_score: 0.0,
            kernel: RectKernel::default(),
        }
    }
}

impl RBursty {
    /// Creates the default configuration (no rectangle cap, strictly
    /// positive scores, the [`RectKernel::Tree`] kernel).
    pub fn new() -> Self {
        Self::default()
    }

    /// Limits the number of reported rectangles.
    pub fn with_max_rectangles(mut self, max: usize) -> Self {
        self.max_rectangles = Some(max);
        self
    }

    /// Sets the minimum reported r-score.
    pub fn with_min_score(mut self, min_score: f64) -> Self {
        self.min_score = min_score.max(0.0);
        self
    }

    /// Selects the exact rectangle kernel.
    pub fn with_kernel(mut self, kernel: RectKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Runs Algorithm 1 on the given weighted points (one per stream) and
    /// returns all non-overlapping bursty rectangles, strongest first.
    ///
    /// The search state is built once and reused across extraction rounds;
    /// masking a reported rectangle's members is an `O(1)`-per-point weight
    /// update on the shared workspace.
    ///
    /// Zero-weight streams deserve a note: they contribute nothing to any
    /// score, so they are reported as members of the *first* rectangle
    /// that geometrically covers them and never again (a claimed set, not
    /// a `-inf` mask — masking them would make their location poison later
    /// rectangles, letting a stream with no burstiness at all veto a
    /// nearby region's shape). Member disjointness across the reported
    /// rectangles is preserved either way.
    pub fn find(&self, points: &[WPoint]) -> Vec<BurstyRectangle> {
        let Some(mut ws) = RectWorkspace::new(points) else {
            return Vec::new();
        };
        let mut claimed = vec![false; points.len()];
        let mut out = Vec::new();
        let cap = self.max_rectangles.unwrap_or(points.len());
        while out.len() < cap {
            let Some((score, rect)) = ws.best_rect(self.kernel, self.min_score) else {
                break;
            };
            let members = claim_members(points, &rect, &mut claimed);
            // Mask the members so no later rectangle can contain them
            // (Algorithm 1, step 2).
            for &m in &members {
                ws.mask(m);
            }
            out.push(BurstyRectangle {
                rect,
                members,
                score,
            });
        }
        out
    }

    /// Reference implementation of [`RBursty::find`] that rebuilds the
    /// entire search state from scratch after every masking round, the way
    /// Algorithm 1 is usually read (the paper does not specify state
    /// reuse; both paths implement the same extract-mask-repeat semantics,
    /// including the zero-weight claiming rule documented on
    /// [`RBursty::find`]).
    ///
    /// Kept for testing and benchmarking: it produces byte-identical
    /// rectangle sequences to the incremental path (property-tested), at
    /// the cost of re-collecting, re-sorting, and re-allocating the input
    /// every round.
    pub fn find_from_scratch(&self, points: &[WPoint]) -> Vec<BurstyRectangle> {
        let mut working: Vec<WPoint> = points.to_vec();
        let mut claimed = vec![false; points.len()];
        let mut out = Vec::new();
        let cap = self.max_rectangles.unwrap_or(points.len());
        while out.len() < cap {
            let Some(mut ws) = RectWorkspace::new(&working) else {
                break;
            };
            let Some((score, rect)) = ws.best_rect(self.kernel, self.min_score) else {
                break;
            };
            let members = claim_members(points, &rect, &mut claimed);
            for &m in &members {
                // Zero-weight members carry no mass to mask; leaving them
                // untouched keeps the rebuilt search domain identical to
                // the incremental workspace (which never indexes them).
                if working[m].weight != 0.0 {
                    working[m].weight = f64::NEG_INFINITY;
                }
            }
            out.push(BurstyRectangle {
                rect,
                members,
                score,
            });
        }
        out
    }
}

/// The not-yet-claimed points contained in `rect`, in input order; marks
/// them claimed. A winning rectangle can never contain a masked (`-inf`)
/// point, so claiming matters only for zero-weight points, which would
/// otherwise be reported as members of every rectangle that geometrically
/// covers them.
fn claim_members(points: &[WPoint], rect: &Rect, claimed: &mut [bool]) -> Vec<usize> {
    let mut members = Vec::new();
    for (i, p) in points.iter().enumerate() {
        if !claimed[i] && rect.contains(&p.position()) {
            claimed[i] = true;
            members.push(i);
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn wp(x: f64, y: f64, w: f64) -> WPoint {
        WPoint::new(x, y, w)
    }

    #[test]
    fn empty_input_gives_no_rectangles() {
        assert!(RBursty::new().find(&[]).is_empty());
        assert!(RBursty::new().find_from_scratch(&[]).is_empty());
    }

    #[test]
    fn all_non_positive_gives_no_rectangles() {
        let pts = vec![wp(0.0, 0.0, 0.0), wp(1.0, 1.0, -3.0)];
        assert!(RBursty::new().find(&pts).is_empty());
    }

    #[test]
    fn single_cluster_reported_once() {
        let pts = vec![
            wp(0.0, 0.0, 2.0),
            wp(1.0, 0.5, 3.0),
            wp(0.5, 1.0, 1.0),
            wp(50.0, 50.0, -1.0),
        ];
        let rects = RBursty::new().find(&pts);
        assert_eq!(rects.len(), 1);
        assert_eq!(rects[0].members, vec![0, 1, 2]);
        assert!((rects[0].score - 6.0).abs() < 1e-12);
    }

    #[test]
    fn two_distant_clusters_reported_separately() {
        let pts = vec![
            // Cluster A around the origin.
            wp(0.0, 0.0, 2.0),
            wp(1.0, 1.0, 2.0),
            // A strongly negative gap point.
            wp(25.0, 25.0, -50.0),
            // Cluster B far away.
            wp(50.0, 50.0, 3.0),
            wp(51.0, 51.0, 3.0),
        ];
        let rects = RBursty::new().find(&pts);
        assert_eq!(rects.len(), 2);
        // Strongest first: cluster B has score 6, cluster A has 4.
        assert_eq!(rects[0].members, vec![3, 4]);
        assert!((rects[0].score - 6.0).abs() < 1e-12);
        assert_eq!(rects[1].members, vec![0, 1]);
        assert!((rects[1].score - 4.0).abs() < 1e-12);
    }

    #[test]
    fn reported_rectangles_never_share_streams() {
        let pts: Vec<WPoint> = (0..20)
            .map(|i| {
                wp(
                    (i % 5) as f64,
                    (i / 5) as f64,
                    if i % 3 == 0 { 2.0 } else { -0.5 },
                )
            })
            .collect();
        let rects = RBursty::new().find(&pts);
        let mut seen: HashSet<usize> = HashSet::new();
        for r in &rects {
            for &m in &r.members {
                assert!(seen.insert(m), "stream {m} reported twice");
            }
            assert!(r.score > 0.0);
        }
    }

    #[test]
    fn scores_are_non_increasing() {
        let pts: Vec<WPoint> = (0..15)
            .map(|i| wp(i as f64 * 3.0, (i * 7 % 11) as f64, (i % 4) as f64 - 1.0))
            .collect();
        let rects = RBursty::new().find(&pts);
        for w in rects.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
    }

    #[test]
    fn rectangle_count_bounded_by_streams() {
        let pts: Vec<WPoint> = (0..30).map(|i| wp(i as f64, 0.0, 1.0)).collect();
        let rects = RBursty::new().find(&pts);
        assert!(rects.len() <= pts.len());
        // All-positive points on a line are absorbed into one rectangle.
        assert_eq!(rects.len(), 1);
        assert_eq!(rects[0].members.len(), 30);
    }

    #[test]
    fn max_rectangles_cap_is_respected() {
        let pts = vec![
            wp(0.0, 0.0, 1.0),
            wp(100.0, 0.0, -5.0),
            wp(200.0, 0.0, 1.0),
            wp(300.0, 0.0, -5.0),
            wp(400.0, 0.0, 1.0),
        ];
        let all = RBursty::new().find(&pts);
        assert_eq!(all.len(), 3);
        let capped = RBursty::new().with_max_rectangles(2).find(&pts);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn min_score_threshold_filters_weak_rectangles() {
        let pts = vec![
            wp(0.0, 0.0, 10.0),
            wp(100.0, 100.0, -1.0),
            wp(200.0, 200.0, 0.2),
        ];
        let all = RBursty::new().find(&pts);
        assert_eq!(all.len(), 2);
        let strong = RBursty::new().with_min_score(1.0).find(&pts);
        assert_eq!(strong.len(), 1);
        assert_eq!(strong[0].members, vec![0]);
    }

    #[test]
    fn splits_region_when_splitting_beats_bridging() {
        // Automatic decision discussed in Section 4: two positives separated
        // by a heavy negative should be two rectangles, not one.
        let pts = vec![wp(0.0, 0.0, 3.0), wp(5.0, 0.0, -10.0), wp(10.0, 0.0, 3.0)];
        let rects = RBursty::new().find(&pts);
        assert_eq!(rects.len(), 2);
        // And with a mild negative it should be a single bridged rectangle.
        let pts2 = vec![wp(0.0, 0.0, 3.0), wp(5.0, 0.0, -0.5), wp(10.0, 0.0, 3.0)];
        let rects2 = RBursty::new().find(&pts2);
        assert_eq!(rects2.len(), 1);
        assert_eq!(rects2[0].members.len(), 3);
    }

    /// Fixed configurations exercising multi-round extraction, zero-weight
    /// members, duplicates, and pre-masked input.
    fn tricky_configs() -> Vec<Vec<WPoint>> {
        vec![
            // Three clusters, extracted over three rounds.
            vec![
                wp(0.0, 0.0, 1.0),
                wp(100.0, 0.0, -5.0),
                wp(200.0, 0.0, 2.0),
                wp(300.0, 0.0, -5.0),
                wp(400.0, 0.0, 3.0),
            ],
            // A zero-weight point inside the first reported rectangle.
            vec![
                wp(0.0, 0.0, 2.0),
                wp(1.0, 1.0, 0.0),
                wp(2.0, 2.0, 2.0),
                wp(50.0, 50.0, 1.0),
            ],
            // Duplicate coordinates and a pre-masked point.
            vec![
                wp(1.0, 1.0, 2.0),
                wp(1.0, 1.0, 3.0),
                wp(2.0, 2.0, f64::NEG_INFINITY),
                wp(10.0, 10.0, 1.5),
            ],
            // All mass in one column, split by a deep negative.
            vec![
                wp(0.0, 0.0, 4.0),
                wp(0.0, 1.0, -9.0),
                wp(0.0, 2.0, 5.0),
                wp(0.0, 3.0, 0.0),
            ],
        ]
    }

    #[test]
    fn incremental_workspace_matches_from_scratch_path() {
        for pts in tricky_configs() {
            for kernel in [RectKernel::Tree, RectKernel::Sweep] {
                let rb = RBursty::new().with_kernel(kernel);
                assert_eq!(
                    rb.find(&pts),
                    rb.find_from_scratch(&pts),
                    "kernel {kernel:?} on {pts:?}"
                );
            }
        }
    }

    #[test]
    fn kernels_agree_on_rectangle_scores() {
        for pts in tricky_configs() {
            let tree = RBursty::new().with_kernel(RectKernel::Tree).find(&pts);
            let sweep = RBursty::new().with_kernel(RectKernel::Sweep).find(&pts);
            assert_eq!(tree.len(), sweep.len(), "{pts:?}");
            for (a, b) in tree.iter().zip(&sweep) {
                assert!((a.score - b.score).abs() < 1e-9, "{pts:?}");
                assert_eq!(a.members, b.members, "{pts:?}");
            }
        }
    }

    #[test]
    fn zero_weight_member_is_claimed_exactly_once() {
        // The zero-weight point at (1, 1) sits inside the first reported
        // rectangle; it must be a member there and never reappear.
        let pts = vec![
            wp(0.0, 0.0, 2.0),
            wp(1.0, 1.0, 0.0),
            wp(2.0, 2.0, 2.0),
            wp(0.5, 1.5, 3.0),
        ];
        let rects = RBursty::new().find(&pts);
        let mut seen: HashSet<usize> = HashSet::new();
        for r in &rects {
            for &m in &r.members {
                assert!(seen.insert(m), "stream {m} reported twice");
            }
        }
        assert!(rects[0].members.contains(&1));
    }
}
