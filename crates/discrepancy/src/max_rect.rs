//! Maximum-weight axis-aligned rectangle over weighted points.
//!
//! This is the numeric core of the regional mining: given the per-stream
//! burstiness values at one timestamp (as weighted points on the map), find
//! the axis-aligned rectangle whose contained points have the largest total
//! weight. The paper's reference for this kernel is the bichromatic-
//! discrepancy algorithm of Dobkin, Gunopulos & Maass (DGM) at
//! `O(m^2 log m)`; this module implements it together with the simpler
//! alternatives used for testing, ablation, and small inputs:
//!
//! | kernel | complexity | role |
//! |---|---|---|
//! | [`max_weight_rect_naive`] | `O(m^5)` (`O(m^4)` rectangles × `O(m)` scan) | brute-force test oracle |
//! | [`RectKernel::Sweep`] | `O(m_x^2 · m_y)` ≈ `O(m^3)` | exact Kadane sweep; lowest constants on tiny inputs |
//! | [`RectKernel::Tree`] | `O(m^2 log m)` | exact DGM max-subsegment tree; the default |
//! | [`max_weight_rect_grid`] | `O(m + r^3)` at grid resolution `r` | boundary-restricted approximation for ablations |
//!
//! Both exact kernels run over a shared [`RectWorkspace`] (coordinate
//! compression, per-column point lists, scratch buffers) and share a
//! prefix-sum *upper-bound pruner*: the positive weight mass of the columns
//! `[left..right]` bounds every rectangle with those x-boundaries, so
//! column pairs — and, because the bound is monotone in `left`, entire
//! tails of the sweep — that cannot beat the incumbent are skipped without
//! being scored. The workspace also supports `O(1)` point masking, which
//! [`crate::RBursty`] uses to run Algorithm 1 without rebuilding the search
//! state after every extraction round. Masked points (`-inf` weight)
//! poison any rectangle containing them, exactly as intended by
//! Algorithm 1 of the paper.

use crate::maxseg_tree::MaxSegTree;
use crate::weighted_point::WPoint;
use stb_geo::Rect;

/// Result of a maximum-weight rectangle search.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxRect {
    /// The maximizing rectangle (boundaries lie on point coordinates).
    pub rect: Rect,
    /// Total weight of the points contained in the rectangle.
    pub score: f64,
    /// Indices (into the input slice) of the points contained in the
    /// rectangle.
    pub members: Vec<usize>,
}

/// Choice of the exact maximum-weight rectangle kernel.
///
/// Both kernels return the same optimal score (property-tested against
/// [`max_weight_rect_naive`]); they may break ties between equal-score
/// rectangles differently. [`RectKernel::Tree`] is asymptotically faster
/// and the default everywhere; [`RectKernel::Sweep`] has lower constants on
/// very small inputs and serves as an independent implementation to test
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RectKernel {
    /// DGM-style max-subsegment segment tree over the y-buckets,
    /// `O(m^2 log m)` (see [`MaxSegTree`]).
    #[default]
    Tree,
    /// Kadane re-scan of the y-buckets for every x-boundary pair,
    /// `O(m_x^2 · m_y)`.
    Sweep,
}

fn members_of(points: &[WPoint], rect: &Rect) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| rect.contains(&p.position()))
        .map(|(i, _)| i)
        .collect()
}

/// Sorts and deduplicates coordinate values under one total order
/// (`f64::total_cmp` for both steps), so NaN or mixed-zero inputs can
/// never silently corrupt the coordinate index: the `total_cmp` binary
/// searches over the result find exactly the values kept here, even for
/// `-0.0` vs `+0.0` points built through [`WPoint`]'s public fields
/// (the constructor additionally canonicalizes `-0.0` and rejects NaN).
fn dedup_sorted(values: &mut Vec<f64>) {
    values.sort_by(f64::total_cmp);
    values.dedup_by(|a, b| a.total_cmp(b).is_eq());
}

/// Maximum-sum contiguous bucket interval whose sum strictly exceeds
/// `floor`: `(sum, first_bucket, last_bucket)`, ties broken towards the
/// earliest improving interval (Kadane). Threading the caller's incumbent
/// through `floor` keeps the improvement branch almost-never-taken in the
/// sweep's hot loop instead of re-warming a per-call incumbent from zero.
fn kadane_above(buckets: &[f64], floor: f64) -> Option<(f64, usize, usize)> {
    let mut best = floor;
    let mut out = None;
    let mut cur_sum = 0.0;
    let mut cur_start = 0usize;
    for (yi, &b) in buckets.iter().enumerate() {
        if cur_sum <= 0.0 {
            cur_sum = b;
            cur_start = yi;
        } else {
            cur_sum += b;
        }
        if cur_sum > best {
            best = cur_sum;
            out = Some((cur_sum, cur_start, yi));
        }
    }
    out
}

/// One weighted point bucketed into its x-column: the compressed
/// y-coordinate index and the (maskable) weight.
#[derive(Debug, Clone, Copy)]
struct ColPoint {
    yi: u32,
    weight: f64,
}

/// Reusable search state for the exact kernels: coordinate compression,
/// per-column point lists, and the scratch buffers of both kernels.
///
/// Built once from a point set, it answers repeated [`best_rect`] queries
/// with zero allocation, and supports `O(1)` per-point [`mask`]ing between
/// queries — the extraction loop of Algorithm 1 ([`crate::RBursty`]) masks
/// the members of each reported rectangle and re-queries instead of
/// re-collecting and re-compressing the whole input every round.
///
/// Zero-weight points are excluded: they can neither help nor hurt any
/// rectangle, and the optimal rectangle can always be shrunk to the
/// bounding box of its non-zero contents, so the search cost scales with
/// the number of streams that actually carry signal for the term — on real
/// corpora a small fraction of all streams.
///
/// [`best_rect`]: RectWorkspace::best_rect
/// [`mask`]: RectWorkspace::mask
#[derive(Debug, Clone)]
pub struct RectWorkspace {
    /// Distinct x-coordinates of the non-zero-weight points, ascending.
    xs: Vec<f64>,
    /// Distinct y-coordinates of the non-zero-weight points, ascending.
    ys: Vec<f64>,
    /// Points grouped by x-coordinate index, in input order within a column.
    by_x: Vec<Vec<ColPoint>>,
    /// For every input point index: its `(column, slot)` in `by_x`, or
    /// `None` for zero-weight points that are not part of the search.
    point_col: Vec<Option<(u32, u32)>>,
    /// `pos_prefix[i]` = total positive weight in columns `[0, i)`;
    /// recomputed by every [`Self::best_rect`] call (masking changes it).
    pos_prefix: Vec<f64>,
    /// Scratch y-buckets of the Kadane sweep kernel.
    buckets: Vec<f64>,
    /// Scratch max-subsegment tree of the DGM kernel.
    tree: MaxSegTree,
}

impl RectWorkspace {
    /// Builds the workspace, or `None` when no point carries weight (the
    /// search domain is empty: no rectangle can have a non-zero score).
    pub fn new(points: &[WPoint]) -> Option<Self> {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for p in points {
            if p.weight != 0.0 {
                xs.push(p.x);
                ys.push(p.y);
            }
        }
        if xs.is_empty() {
            return None;
        }
        dedup_sorted(&mut xs);
        dedup_sorted(&mut ys);
        let mut by_x: Vec<Vec<ColPoint>> = vec![Vec::new(); xs.len()];
        let mut point_col = vec![None; points.len()];
        for (idx, p) in points.iter().enumerate() {
            if p.weight == 0.0 {
                continue;
            }
            let xi = xs
                .binary_search_by(|v| v.total_cmp(&p.x))
                .expect("x coordinate must be present");
            let yi = ys
                .binary_search_by(|v| v.total_cmp(&p.y))
                .expect("y coordinate must be present");
            point_col[idx] = Some((xi as u32, by_x[xi].len() as u32));
            by_x[xi].push(ColPoint {
                yi: yi as u32,
                weight: p.weight,
            });
        }
        Some(Self {
            pos_prefix: vec![0.0; xs.len() + 1],
            buckets: vec![0.0; ys.len()],
            tree: MaxSegTree::new(ys.len()),
            xs,
            ys,
            by_x,
            point_col,
        })
    }

    /// Masks the point at input index `idx` with `-inf` weight, so no
    /// later rectangle can profitably contain it (Algorithm 1, step 2).
    /// A no-op for zero-weight points, which are not part of the search.
    pub fn mask(&mut self, idx: usize) {
        if let Some((xi, slot)) = self.point_col[idx] {
            self.by_x[xi as usize][slot as usize].weight = f64::NEG_INFINITY;
        }
    }

    /// The best rectangle with score strictly greater than
    /// `floor.max(0.0)`, under the current (possibly masked) weights.
    ///
    /// Returns `(score, rect)` or `None` when no rectangle clears the
    /// floor. Passing the caller's minimum-score threshold as `floor`
    /// (instead of filtering afterwards) feeds the pruner a better
    /// incumbent from the start.
    pub fn best_rect(&mut self, kernel: RectKernel, floor: f64) -> Option<(f64, Rect)> {
        let m = self.xs.len();
        self.pos_prefix[0] = 0.0;
        for i in 0..m {
            let col_pos: f64 = self.by_x[i].iter().map(|c| c.weight.max(0.0)).sum();
            self.pos_prefix[i + 1] = self.pos_prefix[i] + col_pos;
        }
        match kernel {
            RectKernel::Tree => self.best_rect_tree(floor.max(0.0)),
            RectKernel::Sweep => self.best_rect_sweep(floor.max(0.0)),
        }
    }

    /// DGM kernel: extend `right` by adding each column's points into the
    /// max-subsegment tree (`O(log m)` each) and read the best achievable
    /// y-interval *sum* off the root in `O(1)`. The tree does not track
    /// which interval wins (that would put argmax bookkeeping in every
    /// combine — see [`MaxSegTree`]'s module docs), so the sweep records
    /// the winning column pair and recovers the y-interval with one `O(m)`
    /// Kadane pass at the end.
    fn best_rect_tree(&mut self, floor: f64) -> Option<(f64, Rect)> {
        let m = self.xs.len();
        let total_pos = self.pos_prefix[m];
        let mut best = floor;
        let mut best_pair = None;
        for left in 0..m {
            // The positive mass right of `left` bounds every rectangle this
            // iteration can produce — and it only shrinks as `left` grows.
            if total_pos - self.pos_prefix[left] <= best {
                break;
            }
            self.tree.reset();
            for right in left..m {
                for c in &self.by_x[right] {
                    self.tree.add(c.yi as usize, c.weight);
                }
                if self.pos_prefix[right + 1] - self.pos_prefix[left] <= best {
                    continue;
                }
                let score = self.tree.best().expect("ys is non-empty");
                if score > best {
                    best = score;
                    best_pair = Some((left, right));
                }
            }
        }
        let (left, right) = best_pair?;
        // Recovery pass: accumulate the winning columns' buckets and find
        // the maximizing y-interval (and its linearly-accumulated score,
        // which is what the reported member weights sum to).
        self.buckets.iter_mut().for_each(|b| *b = 0.0);
        for col in &self.by_x[left..=right] {
            for c in col {
                self.buckets[c.yi as usize] += c.weight;
            }
        }
        // Recovery uses the same floor as the sweep, preserving the
        // strictly-greater-than-floor contract: the tree found a sum above
        // `floor` over these buckets, so the linear re-scan finds one too,
        // except when the optimum straddles `floor` within summation-order
        // rounding (an ulp-scale tie real burstiness inputs never
        // produce). Reporting nothing then is the conservative reading of
        // the contract — the pre-workspace code broke out of extraction on
        // such scores as well — and a genuinely broken recovery cannot
        // hide here: the kernel-equivalence proptests would catch it.
        let (score, y_start, y_end) = kadane_above(&self.buckets, floor)?;
        Some((
            score,
            Rect::new(
                self.xs[left],
                self.ys[y_start],
                self.xs[right],
                self.ys[y_end],
            ),
        ))
    }

    /// Kadane kernel: re-scan the accumulated y-buckets for every
    /// x-boundary pair.
    fn best_rect_sweep(&mut self, floor: f64) -> Option<(f64, Rect)> {
        let m = self.xs.len();
        let total_pos = self.pos_prefix[m];
        let mut best = floor;
        let mut best_rect = None;
        for left in 0..m {
            if total_pos - self.pos_prefix[left] <= best {
                break;
            }
            self.buckets.iter_mut().for_each(|b| *b = 0.0);
            for right in left..m {
                for c in &self.by_x[right] {
                    self.buckets[c.yi as usize] += c.weight;
                }
                if self.pos_prefix[right + 1] - self.pos_prefix[left] <= best {
                    continue;
                }
                if let Some((score, y_start, y_end)) = kadane_above(&self.buckets, best) {
                    best = score;
                    best_rect = Some(Rect::new(
                        self.xs[left],
                        self.ys[y_start],
                        self.xs[right],
                        self.ys[y_end],
                    ));
                }
            }
        }
        best_rect.map(|r| (best, r))
    }
}

/// Exact maximum-weight axis-aligned rectangle with the default
/// ([`RectKernel::Tree`]) kernel.
///
/// Returns `None` when the input is empty or every point has non-positive
/// weight (no rectangle can achieve a positive score, and the burstiness
/// semantics only care about positive-score regions).
pub fn max_weight_rect(points: &[WPoint]) -> Option<MaxRect> {
    max_weight_rect_with(points, RectKernel::default())
}

/// Exact maximum-weight axis-aligned rectangle with an explicit kernel.
///
/// See [`max_weight_rect`]; both kernels return the same optimal score and
/// a valid maximizer.
pub fn max_weight_rect_with(points: &[WPoint], kernel: RectKernel) -> Option<MaxRect> {
    let mut ws = RectWorkspace::new(points)?;
    let (score, rect) = ws.best_rect(kernel, 0.0)?;
    Some(MaxRect {
        members: members_of(points, &rect),
        rect,
        score,
    })
}

/// Brute-force maximum-weight rectangle: enumerates every candidate rectangle
/// whose boundaries are point coordinates. `O(m^4)` pairs of corners with an
/// `O(m)` containment scan each — strictly a test oracle.
pub fn max_weight_rect_naive(points: &[WPoint]) -> Option<MaxRect> {
    if points.is_empty() {
        return None;
    }
    let mut xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let mut ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    dedup_sorted(&mut xs);
    dedup_sorted(&mut ys);
    let mut best: Option<(f64, Rect)> = None;
    for (i, &x1) in xs.iter().enumerate() {
        for &x2 in &xs[i..] {
            for (j, &y1) in ys.iter().enumerate() {
                for &y2 in &ys[j..] {
                    let rect = Rect::new(x1, y1, x2, y2);
                    let score: f64 = points
                        .iter()
                        .filter(|p| rect.contains(&p.position()))
                        .map(|p| p.weight)
                        .sum();
                    if score > 0.0 && best.as_ref().is_none_or(|(s, _)| score > *s) {
                        best = Some((score, rect));
                    }
                }
            }
        }
    }
    best.map(|(score, rect)| MaxRect {
        members: members_of(points, &rect),
        rect,
        score,
    })
}

/// Grid-restricted approximate maximum-weight rectangle.
///
/// Aggregates point weights into a `resolution x resolution` uniform grid
/// over the bounding box of the points and finds the best rectangle whose
/// boundaries are grid lines. Much cheaper when `resolution` is small
/// compared to the number of distinct coordinates, at the cost of missing
/// maximizers whose boundaries fall strictly between grid lines. Used as an
/// ablation of the exact algorithm (see EXPERIMENTS.md).
pub fn max_weight_rect_grid(points: &[WPoint], resolution: usize) -> Option<MaxRect> {
    if points.is_empty() || resolution == 0 {
        return None;
    }
    let min_x = points.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    let max_x = points.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
    let min_y = points.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
    let max_y = points.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
    let width = (max_x - min_x).max(f64::MIN_POSITIVE);
    let height = (max_y - min_y).max(f64::MIN_POSITIVE);

    // Cell weight accumulation.
    let mut cells = vec![vec![0.0f64; resolution]; resolution];
    for p in points {
        let cx = (((p.x - min_x) / width * resolution as f64) as usize).min(resolution - 1);
        let cy = (((p.y - min_y) / height * resolution as f64) as usize).min(resolution - 1);
        cells[cx][cy] += p.weight;
    }

    let cell_w = width / resolution as f64;
    let cell_h = height / resolution as f64;
    let mut best: Option<(f64, Rect)> = None;
    let mut buckets = vec![0.0f64; resolution];
    for left in 0..resolution {
        buckets.iter_mut().for_each(|b| *b = 0.0);
        for right in left..resolution {
            for (cy, bucket) in buckets.iter_mut().enumerate() {
                *bucket += cells[right][cy];
            }
            let mut cur_sum = 0.0;
            let mut cur_start = 0usize;
            for (cy, &b) in buckets.iter().enumerate() {
                if cur_sum <= 0.0 {
                    cur_sum = b;
                    cur_start = cy;
                } else {
                    cur_sum += b;
                }
                if cur_sum > 0.0 && best.as_ref().is_none_or(|(s, _)| cur_sum > *s) {
                    let rect = Rect::new(
                        min_x + left as f64 * cell_w,
                        min_y + cur_start as f64 * cell_h,
                        min_x + (right + 1) as f64 * cell_w,
                        min_y + (cy + 1) as f64 * cell_h,
                    );
                    best = Some((cur_sum, rect));
                }
            }
        }
    }
    best.map(|(score, rect)| MaxRect {
        members: members_of(points, &rect),
        rect,
        score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(x: f64, y: f64, w: f64) -> WPoint {
        WPoint::new(x, y, w)
    }

    const KERNELS: [RectKernel; 2] = [RectKernel::Tree, RectKernel::Sweep];

    #[test]
    fn empty_input() {
        for kernel in KERNELS {
            assert!(max_weight_rect_with(&[], kernel).is_none());
        }
        assert!(max_weight_rect(&[]).is_none());
        assert!(max_weight_rect_naive(&[]).is_none());
        assert!(max_weight_rect_grid(&[], 4).is_none());
        assert!(RectWorkspace::new(&[]).is_none());
    }

    #[test]
    fn all_negative_weights() {
        let pts = vec![wp(0.0, 0.0, -1.0), wp(1.0, 1.0, -2.0)];
        for kernel in KERNELS {
            assert!(max_weight_rect_with(&pts, kernel).is_none());
        }
        assert!(max_weight_rect_naive(&pts).is_none());
    }

    #[test]
    fn single_positive_point() {
        let pts = vec![wp(3.0, 4.0, 2.5)];
        for kernel in KERNELS {
            let r = max_weight_rect_with(&pts, kernel).unwrap();
            assert_eq!(r.score, 2.5);
            assert_eq!(r.members, vec![0]);
            assert!(r.rect.contains(&pts[0].position()));
        }
    }

    #[test]
    fn excludes_negative_point_when_beneficial() {
        // Two positive points far apart with a very negative point between
        // them: the best rectangle picks only one side.
        let pts = vec![wp(0.0, 0.0, 5.0), wp(5.0, 0.0, -100.0), wp(10.0, 0.0, 6.0)];
        for kernel in KERNELS {
            let r = max_weight_rect_with(&pts, kernel).unwrap();
            assert_eq!(r.score, 6.0);
            assert_eq!(r.members, vec![2]);
        }
    }

    #[test]
    fn includes_negative_point_when_bridging_pays_off() {
        // Including a slightly negative point lets the rectangle span two
        // strong positives.
        let pts = vec![wp(0.0, 0.0, 5.0), wp(5.0, 0.0, -1.0), wp(10.0, 0.0, 6.0)];
        for kernel in KERNELS {
            let r = max_weight_rect_with(&pts, kernel).unwrap();
            assert!((r.score - 10.0).abs() < 1e-12);
            assert_eq!(r.members, vec![0, 1, 2]);
        }
    }

    #[test]
    fn rectangle_uses_both_dimensions() {
        // A cluster of positives in one corner, negatives elsewhere.
        let pts = vec![
            wp(0.0, 0.0, 3.0),
            wp(1.0, 0.5, 2.0),
            wp(0.5, 1.0, 1.0),
            wp(8.0, 8.0, -4.0),
            wp(0.5, 8.0, -4.0),
            wp(8.0, 0.5, -4.0),
        ];
        for kernel in KERNELS {
            let r = max_weight_rect_with(&pts, kernel).unwrap();
            assert!((r.score - 6.0).abs() < 1e-12);
            assert_eq!(r.members, vec![0, 1, 2]);
        }
    }

    #[test]
    fn matches_naive_on_fixed_configurations() {
        let configs: Vec<Vec<WPoint>> = vec![
            vec![
                wp(0.0, 0.0, 1.0),
                wp(1.0, 1.0, 1.0),
                wp(2.0, 2.0, -3.0),
                wp(3.0, 3.0, 2.0),
            ],
            vec![
                wp(0.0, 0.0, -1.0),
                wp(0.0, 1.0, 2.0),
                wp(1.0, 0.0, 2.0),
                wp(1.0, 1.0, -1.0),
            ],
            vec![
                wp(0.0, 0.0, 1.5),
                wp(2.0, 0.0, -0.5),
                wp(4.0, 0.0, 2.5),
                wp(2.0, 3.0, 4.0),
                wp(4.0, 3.0, -2.0),
            ],
        ];
        for pts in configs {
            let slow = max_weight_rect_naive(&pts).unwrap();
            for kernel in KERNELS {
                let fast = max_weight_rect_with(&pts, kernel).unwrap();
                assert!((fast.score - slow.score).abs() < 1e-9, "{kernel:?} {pts:?}");
            }
        }
    }

    #[test]
    fn masked_points_are_never_profitably_included() {
        let pts = vec![
            wp(0.0, 0.0, 5.0),
            wp(1.0, 0.0, f64::NEG_INFINITY),
            wp(2.0, 0.0, 7.0),
        ];
        for kernel in KERNELS {
            let r = max_weight_rect_with(&pts, kernel).unwrap();
            // Best is the single point with weight 7 (bridging over the
            // masked point would poison the rectangle).
            assert_eq!(r.score, 7.0);
            assert_eq!(r.members, vec![2]);
        }
    }

    #[test]
    fn duplicate_coordinates_are_aggregated() {
        let pts = vec![wp(1.0, 1.0, 2.0), wp(1.0, 1.0, 3.0), wp(5.0, 5.0, -1.0)];
        for kernel in KERNELS {
            let r = max_weight_rect_with(&pts, kernel).unwrap();
            assert!((r.score - 5.0).abs() < 1e-12);
            assert_eq!(r.members, vec![0, 1]);
        }
    }

    #[test]
    fn workspace_masking_matches_rebuilt_search() {
        // Masking through the long-lived workspace must answer the next
        // query exactly like a workspace rebuilt from the masked input.
        let pts = vec![
            wp(0.0, 0.0, 4.0),
            wp(1.0, 1.0, 3.0),
            wp(5.0, 5.0, -100.0),
            wp(10.0, 10.0, 2.0),
            wp(11.0, 11.0, 1.0),
        ];
        for kernel in KERNELS {
            let mut ws = RectWorkspace::new(&pts).unwrap();
            let (first, rect) = ws.best_rect(kernel, 0.0).unwrap();
            assert!((first - 7.0).abs() < 1e-12, "{kernel:?}");
            let masked: Vec<usize> = (0..pts.len())
                .filter(|&i| rect.contains(&pts[i].position()))
                .collect();
            for &i in &masked {
                ws.mask(i);
            }
            let mut rebuilt_pts = pts.clone();
            for &i in &masked {
                rebuilt_pts[i].weight = f64::NEG_INFINITY;
            }
            let mut rebuilt = RectWorkspace::new(&rebuilt_pts).unwrap();
            let incremental = ws.best_rect(kernel, 0.0);
            let scratch = rebuilt.best_rect(kernel, 0.0);
            assert_eq!(incremental, scratch, "{kernel:?}");
            assert!((incremental.unwrap().0 - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn floor_prunes_below_threshold_results() {
        let pts = vec![wp(0.0, 0.0, 1.0), wp(10.0, 10.0, 0.5)];
        for kernel in KERNELS {
            let mut ws = RectWorkspace::new(&pts).unwrap();
            // Everything clears floor 0; the whole plane scores 1.5.
            let (score, _) = ws.best_rect(kernel, 0.0).unwrap();
            assert!((score - 1.5).abs() < 1e-12);
            // Nothing clears a floor above the global optimum.
            assert!(ws.best_rect(kernel, 2.0).is_none());
            // A negative floor behaves like 0: only positive scores exist.
            let (score, _) = ws.best_rect(kernel, -5.0).unwrap();
            assert!((score - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn mixed_zero_coordinates_are_one_boundary() {
        // -0.0 and +0.0 must collapse to a single compressed coordinate.
        let pts = vec![wp(-0.0, 0.0, 2.0), wp(0.0, -0.0, 3.0), wp(4.0, 4.0, -1.0)];
        for kernel in KERNELS {
            let r = max_weight_rect_with(&pts, kernel).unwrap();
            assert!((r.score - 5.0).abs() < 1e-12);
            assert_eq!(r.members, vec![0, 1]);
        }
    }

    #[test]
    fn mixed_zeros_through_public_fields_do_not_panic() {
        // Struct-literal construction bypasses WPoint::new's -0.0
        // canonicalization; the coordinate index must still be coherent
        // (total_cmp sort, total_cmp dedup, total_cmp search).
        let pts = vec![
            WPoint {
                x: -0.0,
                y: 1.0,
                weight: 2.0,
            },
            WPoint {
                x: 0.0,
                y: 2.0,
                weight: 3.0,
            },
            WPoint {
                x: 5.0,
                y: -0.0,
                weight: -1.0,
            },
        ];
        for kernel in KERNELS {
            let r = max_weight_rect_with(&pts, kernel).unwrap();
            assert!((r.score - 5.0).abs() < 1e-12, "{kernel:?}");
        }
    }

    #[test]
    fn grid_score_never_exceeds_exact() {
        let pts = vec![
            wp(0.0, 0.0, 1.0),
            wp(0.3, 0.7, 2.0),
            wp(4.0, 4.0, -1.0),
            wp(6.0, 2.0, 3.0),
            wp(9.0, 9.0, 1.5),
        ];
        let exact = max_weight_rect(&pts).unwrap().score;
        for res in [1, 2, 4, 8, 16] {
            if let Some(g) = max_weight_rect_grid(&pts, res) {
                assert!(g.score <= exact + 1e-9, "resolution {res}");
            }
        }
    }

    #[test]
    fn grid_converges_to_exact_with_fine_resolution() {
        let pts = vec![
            wp(0.0, 0.0, 2.0),
            wp(1.0, 1.0, 2.0),
            wp(5.0, 5.0, -10.0),
            wp(9.0, 9.0, 3.0),
        ];
        let exact = max_weight_rect(&pts).unwrap().score;
        let grid = max_weight_rect_grid(&pts, 64).unwrap().score;
        assert!((exact - grid).abs() < 1e-9);
    }
}
