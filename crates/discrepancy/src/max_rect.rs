//! Maximum-weight axis-aligned rectangle over weighted points.
//!
//! This is the numeric core of the regional mining: given the per-stream
//! burstiness values at one timestamp (as weighted points on the map), find
//! the axis-aligned rectangle whose contained points have the largest total
//! weight. The paper uses the bichromatic-discrepancy algorithm of Dobkin,
//! Gunopulos & Maass (`O(m^2 log m)`); we provide an exact coordinate-
//! compressed sweep ([`max_weight_rect`], `O(m_x^2 · (m_y + m))` ≈ `O(m^3)`)
//! that returns the same maximizer, a brute-force `O(m^4)` oracle used in
//! tests ([`max_weight_rect_naive`]), and a grid-restricted approximation
//! ([`max_weight_rect_grid`]) for ablation studies. See DESIGN.md §4 for the
//! substitution argument.

use crate::weighted_point::WPoint;
use stb_geo::Rect;

/// Result of a maximum-weight rectangle search.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxRect {
    /// The maximizing rectangle (boundaries lie on point coordinates).
    pub rect: Rect,
    /// Total weight of the points contained in the rectangle.
    pub score: f64,
    /// Indices (into the input slice) of the points contained in the
    /// rectangle.
    pub members: Vec<usize>,
}

fn members_of(points: &[WPoint], rect: &Rect) -> Vec<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| rect.contains(&p.position()))
        .map(|(i, _)| i)
        .collect()
}

fn dedup_sorted(values: &mut Vec<f64>) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    values.dedup();
}

/// Exact maximum-weight axis-aligned rectangle.
///
/// Returns `None` when the input is empty or every point has non-positive
/// weight (no rectangle can achieve a positive score, and the burstiness
/// semantics only care about positive-score regions).
///
/// The algorithm fixes every pair of x-boundaries taken from the distinct
/// point x-coordinates (left boundary swept outer, right boundary extended
/// incrementally), accumulates per-y-coordinate weight buckets, and runs a
/// 1-D maximum-sum subarray (Kadane) over the y-buckets. Masked points
/// (`-inf` weight) poison any rectangle containing them, exactly as intended
/// by Algorithm 1 of the paper.
pub fn max_weight_rect(points: &[WPoint]) -> Option<MaxRect> {
    if points.is_empty() {
        return None;
    }
    // Zero-weight points can neither help nor hurt any rectangle, and the
    // optimal rectangle can always be shrunk to the bounding box of its
    // non-zero contents, so they are excluded from the candidate boundary
    // coordinates. They are still counted as members when they fall inside
    // the winning rectangle (see `members_of` below). This makes the search
    // cost scale with the number of streams that actually carry signal for
    // the term, which on real corpora is a small fraction of all streams.
    let active: Vec<&WPoint> = points.iter().filter(|p| p.weight != 0.0).collect();
    if active.is_empty() {
        return None;
    }
    let mut xs: Vec<f64> = active.iter().map(|p| p.x).collect();
    let mut ys: Vec<f64> = active.iter().map(|p| p.y).collect();
    dedup_sorted(&mut xs);
    dedup_sorted(&mut ys);
    let y_index = |y: f64| -> usize {
        ys.binary_search_by(|v| v.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal))
            .expect("y coordinate must be present")
    };

    // Points grouped by x-coordinate index for incremental inclusion.
    let mut by_x: Vec<Vec<(usize, f64)>> = vec![Vec::new(); xs.len()];
    for p in &active {
        let xi = xs
            .binary_search_by(|v| v.partial_cmp(&p.x).unwrap_or(std::cmp::Ordering::Equal))
            .expect("x coordinate must be present");
        by_x[xi].push((y_index(p.y), p.weight));
    }

    let mut best: Option<(f64, Rect)> = None;
    let mut buckets = vec![0.0f64; ys.len()];

    for left in 0..xs.len() {
        buckets.iter_mut().for_each(|b| *b = 0.0);
        for right in left..xs.len() {
            for &(yi, w) in &by_x[right] {
                buckets[yi] += w;
            }
            // Kadane over the y-buckets.
            let mut cur_sum = 0.0;
            let mut cur_start = 0usize;
            for (yi, &b) in buckets.iter().enumerate() {
                if cur_sum <= 0.0 {
                    cur_sum = b;
                    cur_start = yi;
                } else {
                    cur_sum += b;
                }
                if cur_sum > 0.0 && best.as_ref().is_none_or(|(s, _)| cur_sum > *s) {
                    let rect = Rect::new(xs[left], ys[cur_start], xs[right], ys[yi]);
                    best = Some((cur_sum, rect));
                }
            }
        }
    }

    best.map(|(score, rect)| MaxRect {
        members: members_of(points, &rect),
        rect,
        score,
    })
}

/// Brute-force maximum-weight rectangle: enumerates every candidate rectangle
/// whose boundaries are point coordinates. `O(m^4)` pairs of corners with an
/// `O(m)` containment scan each — strictly a test oracle.
pub fn max_weight_rect_naive(points: &[WPoint]) -> Option<MaxRect> {
    if points.is_empty() {
        return None;
    }
    let mut xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let mut ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    dedup_sorted(&mut xs);
    dedup_sorted(&mut ys);
    let mut best: Option<(f64, Rect)> = None;
    for (i, &x1) in xs.iter().enumerate() {
        for &x2 in &xs[i..] {
            for (j, &y1) in ys.iter().enumerate() {
                for &y2 in &ys[j..] {
                    let rect = Rect::new(x1, y1, x2, y2);
                    let score: f64 = points
                        .iter()
                        .filter(|p| rect.contains(&p.position()))
                        .map(|p| p.weight)
                        .sum();
                    if score > 0.0 && best.as_ref().is_none_or(|(s, _)| score > *s) {
                        best = Some((score, rect));
                    }
                }
            }
        }
    }
    best.map(|(score, rect)| MaxRect {
        members: members_of(points, &rect),
        rect,
        score,
    })
}

/// Grid-restricted approximate maximum-weight rectangle.
///
/// Aggregates point weights into a `resolution x resolution` uniform grid
/// over the bounding box of the points and finds the best rectangle whose
/// boundaries are grid lines. Much cheaper when `resolution` is small
/// compared to the number of distinct coordinates, at the cost of missing
/// maximizers whose boundaries fall strictly between grid lines. Used as an
/// ablation of the exact algorithm (see EXPERIMENTS.md).
pub fn max_weight_rect_grid(points: &[WPoint], resolution: usize) -> Option<MaxRect> {
    if points.is_empty() || resolution == 0 {
        return None;
    }
    let min_x = points.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    let max_x = points.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
    let min_y = points.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
    let max_y = points.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
    let width = (max_x - min_x).max(f64::MIN_POSITIVE);
    let height = (max_y - min_y).max(f64::MIN_POSITIVE);

    // Cell weight accumulation.
    let mut cells = vec![vec![0.0f64; resolution]; resolution];
    for p in points {
        let cx = (((p.x - min_x) / width * resolution as f64) as usize).min(resolution - 1);
        let cy = (((p.y - min_y) / height * resolution as f64) as usize).min(resolution - 1);
        cells[cx][cy] += p.weight;
    }

    let cell_w = width / resolution as f64;
    let cell_h = height / resolution as f64;
    let mut best: Option<(f64, Rect)> = None;
    let mut buckets = vec![0.0f64; resolution];
    for left in 0..resolution {
        buckets.iter_mut().for_each(|b| *b = 0.0);
        for right in left..resolution {
            for (cy, bucket) in buckets.iter_mut().enumerate() {
                *bucket += cells[right][cy];
            }
            let mut cur_sum = 0.0;
            let mut cur_start = 0usize;
            for (cy, &b) in buckets.iter().enumerate() {
                if cur_sum <= 0.0 {
                    cur_sum = b;
                    cur_start = cy;
                } else {
                    cur_sum += b;
                }
                if cur_sum > 0.0 && best.as_ref().is_none_or(|(s, _)| cur_sum > *s) {
                    let rect = Rect::new(
                        min_x + left as f64 * cell_w,
                        min_y + cur_start as f64 * cell_h,
                        min_x + (right + 1) as f64 * cell_w,
                        min_y + (cy + 1) as f64 * cell_h,
                    );
                    best = Some((cur_sum, rect));
                }
            }
        }
    }
    best.map(|(score, rect)| MaxRect {
        members: members_of(points, &rect),
        rect,
        score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(x: f64, y: f64, w: f64) -> WPoint {
        WPoint::new(x, y, w)
    }

    #[test]
    fn empty_input() {
        assert!(max_weight_rect(&[]).is_none());
        assert!(max_weight_rect_naive(&[]).is_none());
        assert!(max_weight_rect_grid(&[], 4).is_none());
    }

    #[test]
    fn all_negative_weights() {
        let pts = vec![wp(0.0, 0.0, -1.0), wp(1.0, 1.0, -2.0)];
        assert!(max_weight_rect(&pts).is_none());
        assert!(max_weight_rect_naive(&pts).is_none());
    }

    #[test]
    fn single_positive_point() {
        let pts = vec![wp(3.0, 4.0, 2.5)];
        let r = max_weight_rect(&pts).unwrap();
        assert_eq!(r.score, 2.5);
        assert_eq!(r.members, vec![0]);
        assert!(r.rect.contains(&pts[0].position()));
    }

    #[test]
    fn excludes_negative_point_when_beneficial() {
        // Two positive points far apart with a very negative point between
        // them: the best rectangle picks only one side.
        let pts = vec![wp(0.0, 0.0, 5.0), wp(5.0, 0.0, -100.0), wp(10.0, 0.0, 6.0)];
        let r = max_weight_rect(&pts).unwrap();
        assert_eq!(r.score, 6.0);
        assert_eq!(r.members, vec![2]);
    }

    #[test]
    fn includes_negative_point_when_bridging_pays_off() {
        // Including a slightly negative point lets the rectangle span two
        // strong positives.
        let pts = vec![wp(0.0, 0.0, 5.0), wp(5.0, 0.0, -1.0), wp(10.0, 0.0, 6.0)];
        let r = max_weight_rect(&pts).unwrap();
        assert!((r.score - 10.0).abs() < 1e-12);
        assert_eq!(r.members, vec![0, 1, 2]);
    }

    #[test]
    fn rectangle_uses_both_dimensions() {
        // A cluster of positives in one corner, negatives elsewhere.
        let pts = vec![
            wp(0.0, 0.0, 3.0),
            wp(1.0, 0.5, 2.0),
            wp(0.5, 1.0, 1.0),
            wp(8.0, 8.0, -4.0),
            wp(0.5, 8.0, -4.0),
            wp(8.0, 0.5, -4.0),
        ];
        let r = max_weight_rect(&pts).unwrap();
        assert!((r.score - 6.0).abs() < 1e-12);
        assert_eq!(r.members, vec![0, 1, 2]);
    }

    #[test]
    fn matches_naive_on_fixed_configurations() {
        let configs: Vec<Vec<WPoint>> = vec![
            vec![
                wp(0.0, 0.0, 1.0),
                wp(1.0, 1.0, 1.0),
                wp(2.0, 2.0, -3.0),
                wp(3.0, 3.0, 2.0),
            ],
            vec![
                wp(0.0, 0.0, -1.0),
                wp(0.0, 1.0, 2.0),
                wp(1.0, 0.0, 2.0),
                wp(1.0, 1.0, -1.0),
            ],
            vec![
                wp(0.0, 0.0, 1.5),
                wp(2.0, 0.0, -0.5),
                wp(4.0, 0.0, 2.5),
                wp(2.0, 3.0, 4.0),
                wp(4.0, 3.0, -2.0),
            ],
        ];
        for pts in configs {
            let fast = max_weight_rect(&pts).unwrap();
            let slow = max_weight_rect_naive(&pts).unwrap();
            assert!((fast.score - slow.score).abs() < 1e-9, "{pts:?}");
        }
    }

    #[test]
    fn masked_points_are_never_profitably_included() {
        let pts = vec![
            wp(0.0, 0.0, 5.0),
            wp(1.0, 0.0, f64::NEG_INFINITY),
            wp(2.0, 0.0, 7.0),
        ];
        let r = max_weight_rect(&pts).unwrap();
        // Best is the single point with weight 7 (bridging over the masked
        // point would poison the rectangle).
        assert_eq!(r.score, 7.0);
        assert_eq!(r.members, vec![2]);
    }

    #[test]
    fn duplicate_coordinates_are_aggregated() {
        let pts = vec![wp(1.0, 1.0, 2.0), wp(1.0, 1.0, 3.0), wp(5.0, 5.0, -1.0)];
        let r = max_weight_rect(&pts).unwrap();
        assert!((r.score - 5.0).abs() < 1e-12);
        assert_eq!(r.members, vec![0, 1]);
    }

    #[test]
    fn grid_score_never_exceeds_exact() {
        let pts = vec![
            wp(0.0, 0.0, 1.0),
            wp(0.3, 0.7, 2.0),
            wp(4.0, 4.0, -1.0),
            wp(6.0, 2.0, 3.0),
            wp(9.0, 9.0, 1.5),
        ];
        let exact = max_weight_rect(&pts).unwrap().score;
        for res in [1, 2, 4, 8, 16] {
            if let Some(g) = max_weight_rect_grid(&pts, res) {
                assert!(g.score <= exact + 1e-9, "resolution {res}");
            }
        }
    }

    #[test]
    fn grid_converges_to_exact_with_fine_resolution() {
        let pts = vec![
            wp(0.0, 0.0, 2.0),
            wp(1.0, 1.0, 2.0),
            wp(5.0, 5.0, -10.0),
            wp(9.0, 9.0, 3.0),
        ];
        let exact = max_weight_rect(&pts).unwrap().score;
        let grid = max_weight_rect_grid(&pts, 64).unwrap().score;
        assert!((exact - grid).abs() < 1e-9);
    }
}
