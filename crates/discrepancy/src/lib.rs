//! Spatial discrepancy maximization: max-weight rectangles and `R-Bursty`.
//!
//! The regional pattern mining of the paper (Section 4) needs, for every
//! snapshot of the collection, the set of *all non-overlapping axis-aligned
//! rectangles with positive r-score* — where the r-score of a rectangle is
//! the sum of the per-stream burstiness values of the streams falling inside
//! it (Eq. 8). The paper obtains the single best rectangle with the
//! bichromatic-discrepancy algorithm of Dobkin, Gunopulos & Maass and then
//! iterates (Algorithm 1, `R-Bursty`).
//!
//! This crate provides:
//!
//! * [`WPoint`] — a weighted planar point (a stream's map position and its
//!   burstiness at the current timestamp).
//! * [`max_weight_rect`] — an exact maximizer of the rectangle score over
//!   all axis-aligned rectangles (coordinate-compressed Kadane sweep,
//!   `O(m^3)` in the number of distinct points). A brute-force
//!   `O(m^4)` oracle ([`max_weight_rect_naive`]) and a grid-restricted
//!   approximation ([`max_weight_rect_grid`]) are provided for testing and
//!   ablation.
//! * [`RBursty`] — Algorithm 1: iteratively report the best rectangle and
//!   mask its streams until no positive-score rectangle remains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bursty_rect;
pub mod max_rect;
pub mod weighted_point;

pub use bursty_rect::{BurstyRectangle, RBursty};
pub use max_rect::{max_weight_rect, max_weight_rect_grid, max_weight_rect_naive, MaxRect};
pub use weighted_point::WPoint;
