//! Spatial discrepancy maximization: max-weight rectangles and `R-Bursty`.
//!
//! The regional pattern mining of the paper (Section 4) needs, for every
//! snapshot of the collection, the set of *all non-overlapping axis-aligned
//! rectangles with positive r-score* — where the r-score of a rectangle is
//! the sum of the per-stream burstiness values of the streams falling inside
//! it (Eq. 8). The paper obtains the single best rectangle with the
//! bichromatic-discrepancy algorithm of Dobkin, Gunopulos & Maass and then
//! iterates (Algorithm 1, `R-Bursty`).
//!
//! This crate provides:
//!
//! * [`WPoint`] — a weighted planar point (a stream's map position and its
//!   burstiness at the current timestamp).
//! * [`max_weight_rect`] — an exact maximizer of the rectangle score over
//!   all axis-aligned rectangles. Two exact kernels are selectable through
//!   [`RectKernel`]: the default DGM-style max-subsegment-tree sweep
//!   ([`MaxSegTree`], `O(m^2 log m)`) and the Kadane re-scan sweep
//!   (`O(m^3)`); both share a prefix-sum upper-bound pruner and a reusable
//!   [`RectWorkspace`]. A brute-force oracle ([`max_weight_rect_naive`])
//!   and a grid-restricted approximation ([`max_weight_rect_grid`]) are
//!   provided for testing and ablation — see [`max_rect`] for the full
//!   complexity table.
//! * [`RBursty`] — Algorithm 1: iteratively report the best rectangle and
//!   mask its streams until no positive-score rectangle remains. The
//!   extraction loop reuses one workspace across rounds, applying masking
//!   as `O(1)` point-weight updates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bursty_rect;
pub mod max_rect;
pub mod maxseg_tree;
pub mod weighted_point;

pub use bursty_rect::{BurstyRectangle, RBursty};
pub use max_rect::{
    max_weight_rect, max_weight_rect_grid, max_weight_rect_naive, max_weight_rect_with, MaxRect,
    RectKernel, RectWorkspace,
};
pub use maxseg_tree::MaxSegTree;
pub use weighted_point::WPoint;
