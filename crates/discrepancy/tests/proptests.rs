//! Property-based tests for the spatial discrepancy substrate.

use proptest::prelude::*;
use stb_discrepancy::{
    max_weight_rect, max_weight_rect_grid, max_weight_rect_naive, max_weight_rect_with, RBursty,
    RectKernel, WPoint,
};
use std::collections::HashSet;

fn arb_points() -> impl Strategy<Value = Vec<WPoint>> {
    prop::collection::vec(
        (-50.0f64..50.0, -50.0f64..50.0, -5.0f64..5.0).prop_map(|(x, y, w)| WPoint::new(x, y, w)),
        0..14,
    )
}

fn arb_points_larger() -> impl Strategy<Value = Vec<WPoint>> {
    prop::collection::vec(
        (-100.0f64..100.0, -100.0f64..100.0, -3.0f64..3.0)
            .prop_map(|(x, y, w)| WPoint::new(x, y, w)),
        0..40,
    )
}

/// Hostile configurations for the exact kernels: coordinates drawn from a
/// tiny grid (forcing duplicates in both dimensions), and weights that are
/// routinely zero or `-inf` (pre-masked points) besides ordinary values.
fn arb_messy_points() -> impl Strategy<Value = Vec<WPoint>> {
    prop::collection::vec(
        (0usize..6, 0usize..6, 0usize..6, -4.0f64..4.0).prop_map(|(xi, yi, kind, w)| {
            let weight = match kind {
                0 => 0.0,
                1 => f64::NEG_INFINITY,
                _ => w,
            };
            WPoint::new(xi as f64, yi as f64, weight)
        }),
        0..22,
    )
}

proptest! {
    #[test]
    fn exact_matches_naive_oracle(points in arb_points()) {
        let fast = max_weight_rect(&points);
        let slow = max_weight_rect_naive(&points);
        match (fast, slow) {
            (None, None) => {}
            (Some(f), Some(s)) => prop_assert!((f.score - s.score).abs() < 1e-9,
                "fast {} vs naive {}", f.score, s.score),
            (f, s) => prop_assert!(false, "presence mismatch: {f:?} vs {s:?}"),
        }
    }

    #[test]
    fn reported_score_equals_member_weight_sum(points in arb_points_larger()) {
        if let Some(r) = max_weight_rect(&points) {
            let sum: f64 = r.members.iter().map(|&i| points[i].weight).sum();
            prop_assert!((sum - r.score).abs() < 1e-9);
            prop_assert!(r.score > 0.0);
            for &i in &r.members {
                prop_assert!(r.rect.contains(&points[i].position()));
            }
            // Points outside the rectangle are not members.
            for (i, p) in points.iter().enumerate() {
                if r.rect.contains(&p.position()) {
                    prop_assert!(r.members.contains(&i));
                }
            }
        }
    }

    #[test]
    fn exact_at_least_as_good_as_any_single_point(points in arb_points_larger()) {
        let best_single = points.iter().map(|p| p.weight).fold(f64::NEG_INFINITY, f64::max);
        if best_single > 0.0 {
            let r = max_weight_rect(&points).expect("a positive point guarantees a rectangle");
            prop_assert!(r.score >= best_single - 1e-9);
        }
    }

    #[test]
    fn grid_never_beats_exact(points in arb_points_larger(), resolution in 1usize..20) {
        let exact = max_weight_rect(&points).map(|r| r.score).unwrap_or(0.0);
        let grid = max_weight_rect_grid(&points, resolution).map(|r| r.score).unwrap_or(0.0);
        prop_assert!(grid <= exact + 1e-9);
    }

    #[test]
    fn rbursty_rectangles_are_disjoint_positive_sorted(points in arb_points_larger()) {
        let rects = RBursty::new().find(&points);
        let mut seen: HashSet<usize> = HashSet::new();
        for r in &rects {
            prop_assert!(r.score > 0.0);
            let sum: f64 = r.members.iter().map(|&i| points[i].weight).sum();
            prop_assert!((sum - r.score).abs() < 1e-9);
            for &m in &r.members {
                prop_assert!(seen.insert(m), "stream reported in two rectangles");
            }
        }
        for w in rects.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-9);
        }
        prop_assert!(rects.len() <= points.len());
    }

    #[test]
    fn rbursty_total_score_bounded_by_positive_mass(points in arb_points_larger()) {
        let rects = RBursty::new().find(&points);
        let total: f64 = rects.iter().map(|r| r.score).sum();
        let positive_mass: f64 = points.iter().map(|p| p.weight.max(0.0)).sum();
        prop_assert!(total <= positive_mass + 1e-9);
    }

    #[test]
    fn rbursty_first_rect_is_global_max(points in arb_points_larger()) {
        let rects = RBursty::new().find(&points);
        if let Some(best) = max_weight_rect(&points) {
            prop_assert!(!rects.is_empty());
            prop_assert!((rects[0].score - best.score).abs() < 1e-9);
        } else {
            prop_assert!(rects.is_empty());
        }
    }

    #[test]
    fn exact_kernels_match_naive_on_messy_configs(points in arb_messy_points()) {
        // Duplicate coordinates, zero weights, and -inf masked points must
        // not break either exact kernel: same optimal score as the oracle
        // and a valid maximizer (score == weight of contained points).
        let slow = max_weight_rect_naive(&points);
        for kernel in [RectKernel::Tree, RectKernel::Sweep] {
            let fast = max_weight_rect_with(&points, kernel);
            match (&fast, &slow) {
                (None, None) => {}
                (Some(f), Some(s)) => {
                    prop_assert!((f.score - s.score).abs() < 1e-9,
                        "{kernel:?}: {} vs naive {}", f.score, s.score);
                    let contained: f64 = points.iter()
                        .filter(|p| f.rect.contains(&p.position()))
                        .map(|p| p.weight)
                        .sum();
                    prop_assert!((contained - f.score).abs() < 1e-9,
                        "{kernel:?}: rect weight {contained} vs score {}", f.score);
                }
                (f, s) => prop_assert!(false, "{kernel:?} presence mismatch: {f:?} vs {s:?}"),
            }
        }
    }

    #[test]
    fn tree_and_sweep_kernels_agree(points in arb_points_larger()) {
        let tree = max_weight_rect_with(&points, RectKernel::Tree);
        let sweep = max_weight_rect_with(&points, RectKernel::Sweep);
        match (tree, sweep) {
            (None, None) => {}
            (Some(t), Some(s)) => prop_assert!((t.score - s.score).abs() < 1e-9,
                "tree {} vs sweep {}", t.score, s.score),
            (t, s) => prop_assert!(false, "presence mismatch: {t:?} vs {s:?}"),
        }
    }

    #[test]
    fn rbursty_incremental_is_byte_identical_to_scratch(points in arb_messy_points()) {
        for kernel in [RectKernel::Tree, RectKernel::Sweep] {
            let rb = RBursty::new().with_kernel(kernel);
            let incremental = rb.find(&points);
            let scratch = rb.find_from_scratch(&points);
            prop_assert_eq!(&incremental, &scratch, "kernel {:?}", kernel);
        }
    }

    #[test]
    fn rbursty_kernels_agree_on_scores(points in arb_points_larger()) {
        let tree = RBursty::new().with_kernel(RectKernel::Tree).find(&points);
        let sweep = RBursty::new().with_kernel(RectKernel::Sweep).find(&points);
        prop_assert_eq!(tree.len(), sweep.len());
        for (t, s) in tree.iter().zip(&sweep) {
            prop_assert!((t.score - s.score).abs() < 1e-9,
                "tree {} vs sweep {}", t.score, s.score);
        }
    }
}
