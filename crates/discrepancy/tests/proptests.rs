//! Property-based tests for the spatial discrepancy substrate.

use proptest::prelude::*;
use stb_discrepancy::{
    max_weight_rect, max_weight_rect_grid, max_weight_rect_naive, RBursty, WPoint,
};
use std::collections::HashSet;

fn arb_points() -> impl Strategy<Value = Vec<WPoint>> {
    prop::collection::vec(
        (-50.0f64..50.0, -50.0f64..50.0, -5.0f64..5.0).prop_map(|(x, y, w)| WPoint::new(x, y, w)),
        0..14,
    )
}

fn arb_points_larger() -> impl Strategy<Value = Vec<WPoint>> {
    prop::collection::vec(
        (-100.0f64..100.0, -100.0f64..100.0, -3.0f64..3.0)
            .prop_map(|(x, y, w)| WPoint::new(x, y, w)),
        0..40,
    )
}

proptest! {
    #[test]
    fn exact_matches_naive_oracle(points in arb_points()) {
        let fast = max_weight_rect(&points);
        let slow = max_weight_rect_naive(&points);
        match (fast, slow) {
            (None, None) => {}
            (Some(f), Some(s)) => prop_assert!((f.score - s.score).abs() < 1e-9,
                "fast {} vs naive {}", f.score, s.score),
            (f, s) => prop_assert!(false, "presence mismatch: {f:?} vs {s:?}"),
        }
    }

    #[test]
    fn reported_score_equals_member_weight_sum(points in arb_points_larger()) {
        if let Some(r) = max_weight_rect(&points) {
            let sum: f64 = r.members.iter().map(|&i| points[i].weight).sum();
            prop_assert!((sum - r.score).abs() < 1e-9);
            prop_assert!(r.score > 0.0);
            for &i in &r.members {
                prop_assert!(r.rect.contains(&points[i].position()));
            }
            // Points outside the rectangle are not members.
            for (i, p) in points.iter().enumerate() {
                if r.rect.contains(&p.position()) {
                    prop_assert!(r.members.contains(&i));
                }
            }
        }
    }

    #[test]
    fn exact_at_least_as_good_as_any_single_point(points in arb_points_larger()) {
        let best_single = points.iter().map(|p| p.weight).fold(f64::NEG_INFINITY, f64::max);
        if best_single > 0.0 {
            let r = max_weight_rect(&points).expect("a positive point guarantees a rectangle");
            prop_assert!(r.score >= best_single - 1e-9);
        }
    }

    #[test]
    fn grid_never_beats_exact(points in arb_points_larger(), resolution in 1usize..20) {
        let exact = max_weight_rect(&points).map(|r| r.score).unwrap_or(0.0);
        let grid = max_weight_rect_grid(&points, resolution).map(|r| r.score).unwrap_or(0.0);
        prop_assert!(grid <= exact + 1e-9);
    }

    #[test]
    fn rbursty_rectangles_are_disjoint_positive_sorted(points in arb_points_larger()) {
        let rects = RBursty::new().find(&points);
        let mut seen: HashSet<usize> = HashSet::new();
        for r in &rects {
            prop_assert!(r.score > 0.0);
            let sum: f64 = r.members.iter().map(|&i| points[i].weight).sum();
            prop_assert!((sum - r.score).abs() < 1e-9);
            for &m in &r.members {
                prop_assert!(seen.insert(m), "stream reported in two rectangles");
            }
        }
        for w in rects.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-9);
        }
        prop_assert!(rects.len() <= points.len());
    }

    #[test]
    fn rbursty_total_score_bounded_by_positive_mass(points in arb_points_larger()) {
        let rects = RBursty::new().find(&points);
        let total: f64 = rects.iter().map(|r| r.score).sum();
        let positive_mass: f64 = points.iter().map(|p| p.weight.max(0.0)).sum();
        prop_assert!(total <= positive_mass + 1e-9);
    }

    #[test]
    fn rbursty_first_rect_is_global_max(points in arb_points_larger()) {
        let rects = RBursty::new().find(&points);
        if let Some(best) = max_weight_rect(&points) {
            prop_assert!(!rects.is_empty());
            prop_assert!((rects[0].score - best.score).abs() < 1e-9);
        } else {
            prop_assert!(rects.is_empty());
        }
    }
}
