//! Shared experiment harness for reproducing the paper's tables and figures.
//!
//! Every table and figure of the evaluation section has a dedicated binary in
//! `src/bin/` (`table1`, `table2`, `table3`, `figure4` … `figure9`); this
//! library holds the pieces they share: deterministic experiment contexts,
//! plain-text table rendering, and timing helpers. Criterion micro-benchmarks
//! for the algorithmic substrates live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod tables;

pub use harness::{measure_ms, ExperimentCtx};
pub use tables::TableWriter;
