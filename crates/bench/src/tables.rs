//! Plain-text table rendering for the experiment binaries.

/// A simple column-aligned text table, printed to stdout by the experiment
/// binaries in the same layout as the paper's tables.
#[derive(Debug, Clone, Default)]
pub struct TableWriter {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Creates a table with a title line.
    pub fn new(title: &str) -> Self {
        Self {
            title: title.to_string(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn header<I, S>(&mut self, columns: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.header = columns.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows added so far.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let n_cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; n_cols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.title));
        let format_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, cell)| format!("{:<width$}", cell, width = widths[i] + 2))
                .collect::<String>()
                .trim_end()
                .to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&format_row(&self.header));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().max(4)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_and_rows() {
        let mut t = TableWriter::new("Table X");
        t.header(["#", "Query", "Value"]);
        t.row(["1", "Obama", "176"]);
        t.row(["2", "financial crisis", "113"]);
        let s = t.render();
        assert!(s.contains("=== Table X ==="));
        assert!(s.contains("Query"));
        assert!(s.contains("financial crisis"));
        assert_eq!(t.n_rows(), 2);
        // Columns are aligned: both data rows have the number at the same
        // byte offset as the header.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn handles_empty_table() {
        let t = TableWriter::new("Empty");
        let s = t.render();
        assert!(s.contains("Empty"));
        assert_eq!(t.n_rows(), 0);
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let mut t = TableWriter::new("Ragged");
        t.header(["a", "b"]);
        t.row(["1", "2", "3"]);
        t.row(["only"]);
        assert!(t.render().contains("only"));
    }
}
