//! Shared experiment logic behind the table/figure binaries.
//!
//! Every experiment of the paper's Section 6 is implemented here as a plain
//! function over the synthetic corpora, so the binaries in `src/bin/` only
//! parse arguments and format tables, and integration tests can exercise the
//! experiment pipelines directly.

use crate::harness::{measure_ms, ExperimentCtx};
use std::collections::HashSet;
use std::sync::Arc;

use stb_core::{
    jaccard_similarity, precision, Base, CombinatorialPattern, PatternGeometry, RegionalPattern,
    STComb, STLocal, STLocalConfig, TB,
};
use stb_corpus::{Collection, DocId, StreamId, TermId};
use stb_datagen::{
    EventTier, GeneratorConfig, MajorEvent, PatternGenerator, StreamSelection, SyntheticDataset,
    TopixConfig, TopixCorpus,
};
use stb_geo::Mbr;
use stb_search::{BurstySearchEngine, EngineConfig, Query};
use stb_timeseries::TimeInterval;

/// Builds the synthetic Topix corpus at the context's scale.
pub fn topix_corpus(ctx: &ExperimentCtx) -> TopixCorpus {
    let config = if ctx.full {
        TopixConfig {
            docs_per_stream_per_week: 4,
            background_vocab: 3000,
            seed: ctx.seed,
            ..Default::default()
        }
    } else {
        TopixConfig {
            docs_per_stream_per_week: 2,
            background_vocab: 800,
            seed: ctx.seed,
            ..Default::default()
        }
    };
    TopixCorpus::generate(config)
}

/// Minimum temporal burstiness `B_T` an interval must reach before STComb
/// considers it in the clique problem, used by every experiment in this
/// crate.
///
/// The paper's formulation keeps every positive-score interval; on the
/// synthetic corpora, however, the dense exponential background produces a
/// noise-level maximal segment (`B_T ≈ 0.1`) in almost every stream, and
/// because clique weights are additive those noise intervals would all be
/// absorbed into the top clique. Real bursts sit well above `B_T = 0.5`, so
/// a small threshold recovers the behaviour the paper reports on its real
/// corpus (see EXPERIMENTS.md for the ablation).
pub const STCOMB_MIN_INTERVAL_SCORE: f64 = 0.2;

/// The `STComb` miner configured as used throughout the experiments.
pub fn stcomb_miner() -> STComb {
    STComb::with_config(stb_core::STCombConfig {
        min_interval_score: STCOMB_MIN_INTERVAL_SCORE,
        ..Default::default()
    })
}

/// The pattern-mining approaches compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Regional patterns (Section 4).
    STLocal,
    /// Combinatorial patterns (Section 3).
    STComb,
    /// The binarise-and-merge baseline (Section 6.2.2).
    Base,
    /// Temporal-only burstiness over the merged stream (Section 6.3).
    TB,
}

impl Approach {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Approach::STLocal => "STLocal",
            Approach::STComb => "STComb",
            Approach::Base => "Base",
            Approach::TB => "TB",
        }
    }
}

// ---------------------------------------------------------------------------
// Table 1 / Figure 4: top pattern per Major-Events query.
// ---------------------------------------------------------------------------

/// The per-event quantities reported in Table 1 and Figure 4.
#[derive(Debug, Clone)]
pub struct EventAnalysis {
    /// The event under analysis.
    pub event: &'static MajorEvent,
    /// Number of countries (streams) in the top STLocal pattern.
    pub stlocal_countries: usize,
    /// Number of countries in the top STComb pattern.
    pub stcomb_countries: usize,
    /// Number of countries falling inside the MBR of the top STComb pattern.
    pub mbr_countries: usize,
    /// Timeframe length (weeks) of the top STLocal pattern.
    pub stlocal_weeks: usize,
    /// Timeframe length (weeks) of the top STComb pattern.
    pub stcomb_weeks: usize,
    /// Ground-truth number of affected countries.
    pub truth_countries: usize,
}

/// Mines the top STLocal and STComb pattern for one event (0-based index)
/// of the Topix corpus and summarizes them.
pub fn analyze_event(corpus: &TopixCorpus, event_idx: usize) -> EventAnalysis {
    let event = &corpus.events()[event_idx];
    let collection = corpus.collection();

    let stcomb = stcomb_miner();
    let stlocal_config = STLocalConfig::default();

    let mut best_comb: Option<CombinatorialPattern> = None;
    let mut best_local: Option<(RegionalPattern, TermId)> = None;
    for &term in corpus.query_terms(event_idx) {
        if let Some(p) = stcomb.top_pattern(collection, term) {
            if best_comb.as_ref().is_none_or(|b| p.score > b.score) {
                best_comb = Some(p);
            }
        }
        let (patterns, _) = STLocal::mine_collection(collection, term, stlocal_config.clone());
        if let Some(p) = patterns.into_iter().next() {
            if best_local.as_ref().is_none_or(|(b, _)| p.score > b.score) {
                best_local = Some((p, term));
            }
        }
    }

    let positions = collection.positions();
    let mbr_countries = best_comb
        .as_ref()
        .map(|p| {
            let mbr = Mbr::from_points(p.streams.iter().map(|s| positions[s.index()]));
            mbr.count_contained(&positions)
        })
        .unwrap_or(0);

    // The regional pattern's rectangle may geometrically contain countries
    // that never mention the term at all; following the paper's Table 1
    // semantics ("the streams that [the pattern] includes"), only streams
    // that actually carry the term during the pattern's window are counted.
    let stlocal_countries = best_local
        .as_ref()
        .map(|(p, term)| {
            p.streams
                .iter()
                .filter(|s| {
                    let series = collection.term_stream_series(*term, **s);
                    (p.timeframe.start..=p.timeframe.end).any(|ts| series[ts] > 0.0)
                })
                .count()
        })
        .unwrap_or(0);

    EventAnalysis {
        event,
        stlocal_countries,
        stcomb_countries: best_comb.as_ref().map_or(0, |p| p.n_streams()),
        mbr_countries,
        stlocal_weeks: best_local.as_ref().map_or(0, |(p, _)| p.timeframe.len()),
        stcomb_weeks: best_comb.as_ref().map_or(0, |p| p.timeframe.len()),
        truth_countries: corpus.affected_streams(event_idx).len(),
    }
}

/// Runs [`analyze_event`] for every event of the Major Events List.
pub fn analyze_all_events(corpus: &TopixCorpus) -> Vec<EventAnalysis> {
    (0..corpus.events().len())
        .map(|i| analyze_event(corpus, i))
        .collect()
}

// ---------------------------------------------------------------------------
// Table 2: pattern retrieval on artificial data.
// ---------------------------------------------------------------------------

/// Aggregated retrieval quality over all injected patterns of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalScores {
    /// Mean Jaccard similarity between retrieved and injected stream sets.
    pub jaccard: f64,
    /// Mean absolute error of the retrieved first timestamp.
    pub start_error: f64,
    /// Mean absolute error of the retrieved last timestamp.
    pub end_error: f64,
}

/// Generator configurations for the Table 2 experiment at the context's
/// scale: `(distGen config, randGen config)`.
pub fn table2_configs(ctx: &ExperimentCtx) -> (GeneratorConfig, GeneratorConfig) {
    let base = if ctx.full {
        GeneratorConfig {
            n_streams: 500,
            n_patterns: 1000,
            n_terms: 10_000,
            timeline: 365,
            seed: ctx.seed,
            ..Default::default()
        }
    } else {
        GeneratorConfig {
            n_streams: 60,
            n_patterns: 60,
            n_terms: 500,
            timeline: 365,
            max_streams_per_pattern: 24,
            seed: ctx.seed,
            ..Default::default()
        }
    };
    let dist = GeneratorConfig {
        selection: StreamSelection::DistGen {
            decay_fraction: 0.08,
        },
        ..base.clone()
    };
    let rand = GeneratorConfig {
        selection: StreamSelection::RandGen,
        ..base
    };
    (dist, rand)
}

/// Mines patterns of one term of a synthetic dataset with the given
/// approach, returning (streams, timeframe) candidates sorted by score.
fn mine_synthetic_term(
    dataset: &SyntheticDataset,
    term: usize,
    approach: Approach,
) -> Vec<(Vec<StreamId>, TimeInterval)> {
    match approach {
        Approach::STLocal => {
            let mut miner = STLocal::new(dataset.positions().to_vec(), STLocalConfig::default());
            for ts in 0..dataset.timeline() {
                miner.step(&dataset.snapshot(term, ts));
            }
            miner
                .finish()
                .into_iter()
                .map(|p| (p.streams, p.timeframe))
                .collect()
        }
        Approach::STComb | Approach::Base => {
            let series: Vec<(StreamId, Vec<f64>)> = (0..dataset.n_streams())
                .map(|s| (StreamId(s as u32), dataset.series(term, s)))
                .collect();
            let patterns = if approach == Approach::STComb {
                stcomb_miner().mine_series(&series)
            } else {
                Base::new().mine_series(&series)
            };
            patterns
                .into_iter()
                .map(|p| (p.streams, p.timeframe))
                .collect()
        }
        Approach::TB => {
            let mut merged = vec![0.0; dataset.timeline()];
            for s in 0..dataset.n_streams() {
                for (ts, v) in dataset.series(term, s).into_iter().enumerate() {
                    merged[ts] += v;
                }
            }
            let all: Vec<StreamId> = (0..dataset.n_streams() as u32).map(StreamId).collect();
            TB::new()
                .mine_merged_series(&merged, &all)
                .into_iter()
                .map(|p| (p.streams, p.timeframe))
                .collect()
        }
    }
}

/// Evaluates how well an approach recovers the injected patterns of a
/// dataset (Table 2): for every injected pattern, the best temporally
/// overlapping retrieved pattern of the same term is compared against the
/// ground truth.
pub fn evaluate_retrieval(dataset: &SyntheticDataset, approach: Approach) -> RetrievalScores {
    let mut jaccard_sum = 0.0;
    let mut start_sum = 0.0;
    let mut end_sum = 0.0;
    let mut count = 0usize;

    for term in dataset.patterned_terms() {
        let mined = mine_synthetic_term(dataset, term, approach);
        for &pid in dataset.patterns_of_term(term) {
            let truth = &dataset.patterns()[pid];
            let truth_streams: Vec<StreamId> =
                truth.streams.iter().map(|&s| StreamId(s as u32)).collect();
            // Pick the retrieved pattern with the best temporal overlap with
            // the injected one (falling back to the top pattern).
            let retrieved = mined
                .iter()
                .max_by(|a, b| {
                    let ja = a.1.jaccard(&truth.interval);
                    let jb = b.1.jaccard(&truth.interval);
                    ja.partial_cmp(&jb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .or_else(|| mined.first());
            match retrieved {
                Some((streams, interval)) => {
                    jaccard_sum += jaccard_similarity(streams, &truth_streams);
                    start_sum += interval.start.abs_diff(truth.interval.start) as f64;
                    end_sum += interval.end.abs_diff(truth.interval.end) as f64;
                }
                None => {
                    // Nothing retrieved: zero similarity, full-timeframe error.
                    jaccard_sum += 0.0;
                    start_sum += dataset.timeline() as f64 / 2.0;
                    end_sum += dataset.timeline() as f64 / 2.0;
                }
            }
            count += 1;
        }
    }
    let n = count.max(1) as f64;
    RetrievalScores {
        jaccard: jaccard_sum / n,
        start_error: start_sum / n,
        end_error: end_sum / n,
    }
}

// ---------------------------------------------------------------------------
// Table 3: bursty-document search precision.
// ---------------------------------------------------------------------------

/// Per-event precision of the three search approaches (Table 3), plus the
/// retrieved top-k document lists used for the overlap analysis.
#[derive(Debug, Clone)]
pub struct SearchEvaluation {
    /// The event.
    pub event: &'static MajorEvent,
    /// Precision@k of the temporal-only TB engine.
    pub tb_precision: f64,
    /// Precision@k of the STLocal-backed engine.
    pub stlocal_precision: f64,
    /// Precision@k of the STComb-backed engine.
    pub stcomb_precision: f64,
    /// Top-k documents of each approach (TB, STLocal, STComb).
    pub results: [Vec<DocId>; 3],
}

/// Average pairwise overlap of the top-k sets of the three approaches
/// (reported at the end of Section 6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapSummary {
    /// Mean overlap of the STComb and TB top-k sets.
    pub stcomb_tb: f64,
    /// Mean overlap of the STComb and STLocal top-k sets.
    pub stcomb_stlocal: f64,
    /// Mean overlap of the TB and STLocal top-k sets.
    pub tb_stlocal: f64,
}

fn search_with<P: PatternGeometry>(
    collection: &Arc<Collection>,
    query: &[TermId],
    patterns_per_term: &[(TermId, Vec<P>)],
    k: usize,
) -> Vec<DocId> {
    // Engines share one collection handle; cloning the Arc is O(1), so the
    // per-(event, method) engine construction never copies the corpus.
    let mut engine = BurstySearchEngine::new(Arc::clone(collection), EngineConfig::default());
    for (term, patterns) in patterns_per_term {
        engine.set_patterns(*term, patterns);
    }
    engine
        .query(&Query::terms(query.iter().copied()).top_k(k))
        .map(|r| r.results)
        .unwrap_or_default()
        .into_iter()
        .map(|r| r.doc)
        .collect()
}

/// Evaluates the Bursty Documents problem (Table 3) on the Topix corpus:
/// for each event, retrieves the top-k documents with TB, STLocal and STComb
/// patterns and measures precision against the generator's ground-truth
/// relevance labels.
pub fn evaluate_search(corpus: &TopixCorpus, k: usize) -> (Vec<SearchEvaluation>, OverlapSummary) {
    let collection = corpus.collection();
    // One shared handle for every engine built below (3 methods x N events).
    let shared: Arc<Collection> = collection.into();
    let stcomb = stcomb_miner();
    let tb = TB::new();
    let stlocal_config = STLocalConfig::default();

    let mut evaluations = Vec::new();
    let mut overlaps = [0.0f64; 3];
    for (e_idx, event) in corpus.events().iter().enumerate() {
        let query: Vec<TermId> = corpus.query_terms(e_idx).to_vec();
        let relevant: HashSet<DocId> = corpus.relevant_docs(e_idx).clone();

        let tb_patterns: Vec<(TermId, Vec<CombinatorialPattern>)> = query
            .iter()
            .map(|&t| (t, tb.mine_collection(collection, t)))
            .collect();
        let comb_patterns: Vec<(TermId, Vec<CombinatorialPattern>)> = query
            .iter()
            .map(|&t| (t, stcomb.mine_collection(collection, t)))
            .collect();
        let local_patterns: Vec<(TermId, Vec<RegionalPattern>)> = query
            .iter()
            .map(|&t| {
                let (patterns, _) = STLocal::mine_collection(collection, t, stlocal_config.clone());
                (t, patterns)
            })
            .collect();

        let tb_docs = search_with(&shared, &query, &tb_patterns, k);
        let comb_docs = search_with(&shared, &query, &comb_patterns, k);
        let local_docs = search_with(&shared, &query, &local_patterns, k);

        overlaps[0] += stb_core::topk_overlap(&comb_docs, &tb_docs);
        overlaps[1] += stb_core::topk_overlap(&comb_docs, &local_docs);
        overlaps[2] += stb_core::topk_overlap(&tb_docs, &local_docs);

        evaluations.push(SearchEvaluation {
            event,
            tb_precision: precision(&tb_docs, &relevant),
            stlocal_precision: precision(&local_docs, &relevant),
            stcomb_precision: precision(&comb_docs, &relevant),
            results: [tb_docs, local_docs, comb_docs],
        });
    }
    let n = corpus.events().len().max(1) as f64;
    (
        evaluations,
        OverlapSummary {
            stcomb_tb: overlaps[0] / n,
            stcomb_stlocal: overlaps[1] / n,
            tb_stlocal: overlaps[2] / n,
        },
    )
}

// ---------------------------------------------------------------------------
// Figures 5 & 6: STLocal bookkeeping statistics on the Topix corpus.
// ---------------------------------------------------------------------------

/// Aggregated STLocal streaming statistics over a sample of terms.
#[derive(Debug, Clone)]
pub struct StreamingStats {
    /// Per term, the average number of bursty rectangles per timestamp
    /// (Figure 5's histogram population).
    pub avg_rectangles_per_term: Vec<f64>,
    /// Average (over terms) number of open windows at each timestamp
    /// (Figure 6, "STLocal" series).
    pub avg_open_windows: Vec<f64>,
    /// The worst-case bound `n * (i + 1)` at each timestamp (Figure 6,
    /// "Upper Bound" series).
    pub upper_bound: Vec<f64>,
}

/// Picks the term sample used by Figures 5-7: every event query term plus
/// `n_background` background terms spread uniformly over the Zipf ranks, so
/// the sample mirrors the frequency spectrum of the full vocabulary (a few
/// very common terms, mostly rare ones) the paper averages over.
pub fn sample_terms(corpus: &TopixCorpus, n_background: usize) -> Vec<TermId> {
    let mut terms: Vec<TermId> = (0..corpus.events().len())
        .flat_map(|e| corpus.query_terms(e).to_vec())
        .collect();
    let collection = corpus.collection();
    // Background terms are named "bg<rank>"; probe ranks with a fixed stride
    // to cover the whole spectrum regardless of the configured vocabulary
    // size.
    let mut collected = 0usize;
    let mut rank = 0usize;
    let mut misses = 0usize;
    while collected < n_background && misses < 3 {
        match collection.dict().get(&format!("bg{rank:05}")) {
            Some(t) => {
                terms.push(t);
                collected += 1;
            }
            None => misses += 1,
        }
        rank += 10;
    }
    terms.sort();
    terms.dedup();
    terms
}

/// Streams the Topix corpus with STLocal for every sampled term and collects
/// the bookkeeping statistics of Figures 5 and 6.
pub fn streaming_statistics(corpus: &TopixCorpus, terms: &[TermId]) -> StreamingStats {
    let collection = corpus.collection();
    let timeline = collection.timeline_len();
    let n = collection.n_streams() as f64;
    let mut avg_rectangles_per_term = Vec::with_capacity(terms.len());
    let mut open_windows_sum = vec![0.0f64; timeline];
    for &term in terms {
        let (_, stats) = STLocal::mine_collection(collection, term, STLocalConfig::default());
        let avg_rects = stats.rectangles_per_timestamp.iter().sum::<usize>() as f64
            / stats.rectangles_per_timestamp.len().max(1) as f64;
        avg_rectangles_per_term.push(avg_rects);
        for (i, &w) in stats.open_windows_per_timestamp.iter().enumerate() {
            open_windows_sum[i] += w as f64;
        }
    }
    let n_terms = terms.len().max(1) as f64;
    StreamingStats {
        avg_rectangles_per_term,
        avg_open_windows: open_windows_sum.iter().map(|s| s / n_terms).collect(),
        upper_bound: (0..timeline).map(|i| n * (i + 1) as f64).collect(),
    }
}

/// Buckets the Figure 5 population into the paper's pie-chart bins:
/// `[0, 1)`, `[1, 2)`, `[2, 3)` and `>= 3` average rectangles per timestamp.
/// Returns the percentage of terms in each bin.
pub fn rectangle_histogram(avg_rectangles_per_term: &[f64]) -> [f64; 4] {
    let mut counts = [0usize; 4];
    for &avg in avg_rectangles_per_term {
        let bin = if avg < 1.0 {
            0
        } else if avg < 2.0 {
            1
        } else if avg < 3.0 {
            2
        } else {
            3
        };
        counts[bin] += 1;
    }
    let total = avg_rectangles_per_term.len().max(1) as f64;
    [
        counts[0] as f64 / total * 100.0,
        counts[1] as f64 / total * 100.0,
        counts[2] as f64 / total * 100.0,
        counts[3] as f64 / total * 100.0,
    ]
}

// ---------------------------------------------------------------------------
// Figure 7: per-timestamp running time on the Topix corpus.
// ---------------------------------------------------------------------------

/// Average per-term processing time (milliseconds) at each timestamp for
/// the streaming STLocal and the re-applied STComb (Figure 7).
#[derive(Debug, Clone)]
pub struct TimingPerTimestamp {
    /// STLocal: time of one `step` call, averaged over the sampled terms.
    pub stlocal_ms: Vec<f64>,
    /// STComb: time to re-mine the prefix of the stream up to each
    /// timestamp, averaged over the sampled terms.
    pub stcomb_ms: Vec<f64>,
}

/// Replays the Topix corpus in streaming order and measures the
/// per-timestamp cost of the two miners for the sampled terms.
pub fn timing_per_timestamp(corpus: &TopixCorpus, terms: &[TermId]) -> TimingPerTimestamp {
    let collection = corpus.collection();
    let timeline = collection.timeline_len();
    let n_terms = terms.len().max(1) as f64;

    let mut stlocal_ms = vec![0.0f64; timeline];
    let mut stcomb_ms = vec![0.0f64; timeline];

    for &term in terms {
        // STLocal: a single streaming pass.
        let mut miner = STLocal::new(collection.positions(), STLocalConfig::default());
        for ts in 0..timeline {
            let snapshot = collection.term_snapshot(term, ts);
            let (_, ms) = measure_ms(|| miner.step(&snapshot.frequencies));
            stlocal_ms[ts] += ms;
        }
        // STComb: re-applied to the prefix ending at each timestamp.
        let streams = collection.streams_with_term(term);
        let full_series: Vec<(StreamId, Vec<f64>)> = streams
            .iter()
            .map(|&s| (s, collection.term_stream_series(term, s)))
            .collect();
        let stcomb = stcomb_miner();
        for ts in 0..timeline {
            let prefix: Vec<(StreamId, Vec<f64>)> = full_series
                .iter()
                .map(|(s, series)| (*s, series[..=ts].to_vec()))
                .collect();
            let (_, ms) = measure_ms(|| stcomb.mine_series(&prefix));
            stcomb_ms[ts] += ms;
        }
    }
    TimingPerTimestamp {
        stlocal_ms: stlocal_ms.iter().map(|v| v / n_terms).collect(),
        stcomb_ms: stcomb_ms.iter().map(|v| v / n_terms).collect(),
    }
}

// ---------------------------------------------------------------------------
// Figure 8: scalability with the number of streams.
// ---------------------------------------------------------------------------

/// One point of the scalability curve: per-term mining time at a given
/// stream count.
#[derive(Debug, Clone, Copy)]
pub struct ScalabilityPoint {
    /// Number of streams of the dataset.
    pub n_streams: usize,
    /// Average per-term time (seconds) of STLocal.
    pub stlocal_secs: f64,
    /// Average per-term time (seconds) of STComb.
    pub stcomb_secs: f64,
}

/// The stream counts swept by the Figure 8 experiment at the given scale.
pub fn scalability_stream_counts(full: bool) -> Vec<usize> {
    if full {
        vec![500, 1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000]
    } else {
        vec![500, 1000, 2000, 4000]
    }
}

/// Measures per-term mining time of both approaches on distGen datasets of
/// increasing size (Figure 8). `terms_per_point` patterned terms are timed
/// per dataset.
pub fn scalability_experiment(
    ctx: &ExperimentCtx,
    stream_counts: &[usize],
    terms_per_point: usize,
) -> Vec<ScalabilityPoint> {
    stream_counts
        .iter()
        .map(|&n_streams| {
            let config = GeneratorConfig {
                n_streams,
                timeline: if ctx.full { 365 } else { 120 },
                n_terms: if ctx.full { 10_000 } else { 1_000 },
                n_patterns: if ctx.full { 1_000 } else { 100 },
                // Keep the per-term signal sparse, as in any real corpus: a
                // given term is only used by a bounded set of sources.
                background_density: (120.0 / n_streams as f64).min(1.0),
                seed: ctx.seed,
                ..Default::default()
            };
            let dataset = PatternGenerator::generate(config);
            let terms: Vec<usize> = dataset
                .patterned_terms()
                .into_iter()
                .take(terms_per_point)
                .collect();
            let n_terms = terms.len().max(1) as f64;

            let (_, stlocal_ms) = measure_ms(|| {
                for &term in &terms {
                    mine_synthetic_term(&dataset, term, Approach::STLocal);
                }
            });
            let (_, stcomb_ms) = measure_ms(|| {
                for &term in &terms {
                    mine_synthetic_term(&dataset, term, Approach::STComb);
                }
            });
            ScalabilityPoint {
                n_streams,
                stlocal_secs: stlocal_ms / 1000.0 / n_terms,
                stcomb_secs: stcomb_ms / 1000.0 / n_terms,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Helpers shared by the binaries.
// ---------------------------------------------------------------------------

/// Returns the tier label used in the table output.
pub fn tier_label(tier: EventTier) -> &'static str {
    tier.label()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentCtx {
        ExperimentCtx {
            full: false,
            seed: 5,
        }
    }

    fn tiny_corpus() -> TopixCorpus {
        TopixCorpus::generate(TopixConfig::small())
    }

    #[test]
    fn analyze_localized_event_is_spatially_tight() {
        let corpus = tiny_corpus();
        // Event 15 (index 14): Tsvangirai, localized in Zimbabwe.
        let analysis = analyze_event(&corpus, 14);
        assert!(analysis.stlocal_countries > 0);
        assert!(analysis.stcomb_countries > 0);
        // The regional pattern must be far smaller than the full map and the
        // MBR of the combinatorial pattern at least as large as the pattern.
        assert!(analysis.stlocal_countries < 120);
        assert!(analysis.mbr_countries >= analysis.stcomb_countries);
        assert!(analysis.stlocal_weeks > 0 && analysis.stcomb_weeks > 0);
    }

    #[test]
    fn retrieval_scores_are_sane_on_small_distgen() {
        let config = GeneratorConfig {
            n_streams: 25,
            timeline: 80,
            n_terms: 60,
            n_patterns: 10,
            max_streams_per_pattern: 8,
            seed: 3,
            ..Default::default()
        };
        let dataset = PatternGenerator::generate(config);
        let stcomb = evaluate_retrieval(&dataset, Approach::STComb);
        let base = evaluate_retrieval(&dataset, Approach::Base);
        assert!(stcomb.jaccard > 0.3, "STComb jaccard {}", stcomb.jaccard);
        assert!(stcomb.jaccard <= 1.0);
        assert!(stcomb.start_error < 40.0);
        // The trivial baseline should not beat STComb on stream recovery.
        assert!(stcomb.jaccard >= base.jaccard - 0.1);
    }

    #[test]
    fn table2_configs_differ_only_in_selection() {
        let (dist, rand) = table2_configs(&tiny_ctx());
        assert_eq!(dist.n_streams, rand.n_streams);
        assert_ne!(dist.selection, rand.selection);
    }

    #[test]
    fn rectangle_histogram_buckets_sum_to_100() {
        let pop = vec![0.1, 0.4, 1.5, 2.7, 5.0, 0.0];
        let bins = rectangle_histogram(&pop);
        let total: f64 = bins.iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!(bins[0] > 0.0 && bins[3] > 0.0);
    }

    #[test]
    fn sample_terms_includes_event_queries() {
        let corpus = tiny_corpus();
        let terms = sample_terms(&corpus, 5);
        for e in 0..corpus.events().len() {
            for t in corpus.query_terms(e) {
                assert!(terms.contains(t));
            }
        }
    }

    #[test]
    fn scalability_counts_depend_on_scale() {
        assert_eq!(scalability_stream_counts(false).len(), 4);
        assert_eq!(scalability_stream_counts(true).last(), Some(&128_000));
    }
}
