//! Experiment context and timing helpers shared by the table/figure
//! binaries.

use std::time::Instant;

/// Shared context of an experiment run: the scale at which to run and the
/// deterministic seed.
///
/// Every experiment binary accepts `--full` on the command line to run at
/// the paper's full scale (which can take a long time); the default scale is
/// chosen so a complete `cargo run --release` pass over all binaries
/// finishes within minutes while preserving the qualitative shape of every
/// result.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Whether to run at the paper's full scale.
    pub full: bool,
    /// Seed shared by every randomized component of the experiment.
    pub seed: u64,
}

impl ExperimentCtx {
    /// Builds a context from the process command line (`--full`,
    /// `--seed <n>`).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_arg_slice(&args[1..])
    }

    /// Builds a context from an explicit argument slice (used in tests).
    pub fn from_arg_slice(args: &[String]) -> Self {
        let full = args.iter().any(|a| a == "--full");
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(2012);
        Self { full, seed }
    }

    /// A fixed default context (reduced scale, seed 2012).
    pub fn default_scale() -> Self {
        Self {
            full: false,
            seed: 2012,
        }
    }
}

/// Runs `f` and returns its result together with the elapsed wall-clock time
/// in milliseconds.
pub fn measure_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context() {
        let ctx = ExperimentCtx::default_scale();
        assert!(!ctx.full);
        assert_eq!(ctx.seed, 2012);
    }

    #[test]
    fn parses_full_and_seed() {
        let args: Vec<String> = vec!["--full".into(), "--seed".into(), "99".into()];
        let ctx = ExperimentCtx::from_arg_slice(&args);
        assert!(ctx.full);
        assert_eq!(ctx.seed, 99);
    }

    #[test]
    fn ignores_malformed_seed() {
        let args: Vec<String> = vec!["--seed".into(), "abc".into()];
        let ctx = ExperimentCtx::from_arg_slice(&args);
        assert_eq!(ctx.seed, 2012);
    }

    #[test]
    fn measure_returns_value_and_nonnegative_time() {
        let (v, ms) = measure_ms(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
