//! Figure 4 — Timeframe length of the top pattern for every Major-Events
//! query, STComb vs STLocal.
//!
//! ```text
//! cargo run --release -p stb-bench --bin figure4 [-- --full]
//! ```

use stb_bench::experiments::{analyze_all_events, topix_corpus};
use stb_bench::{ExperimentCtx, TableWriter};

fn main() {
    let ctx = ExperimentCtx::from_args();
    eprintln!("[figure4] generating synthetic Topix corpus...");
    let corpus = topix_corpus(&ctx);
    eprintln!("[figure4] mining top patterns...");
    let analyses = analyze_all_events(&corpus);

    let mut table =
        TableWriter::new("Figure 4: Timeframe (weeks) of the top-scoring pattern per query");
    table.header(["#", "Query", "STLocal weeks", "STComb weeks"]);
    for a in &analyses {
        table.row([
            a.event.id.to_string(),
            a.event.query.to_string(),
            a.stlocal_weeks.to_string(),
            a.stcomb_weeks.to_string(),
        ]);
    }
    table.print();

    println!();
    println!("Bar-chart series (query index: STLocal | STComb):");
    for a in &analyses {
        let bars = |n: usize| "#".repeat(n.min(60));
        println!(
            "  {:>2} STLocal {:<30} ({:>2})",
            a.event.id,
            bars(a.stlocal_weeks),
            a.stlocal_weeks
        );
        println!(
            "     STComb  {:<30} ({:>2})",
            bars(a.stcomb_weeks),
            a.stcomb_weeks
        );
    }
    let longer = analyses
        .iter()
        .filter(|a| a.stlocal_weeks > a.stcomb_weeks)
        .count();
    println!();
    println!(
        "STLocal reports a longer timeframe than STComb for {longer}/{} queries \
         (events that stay in the local spotlight after fading globally).",
        analyses.len()
    );
}
