//! Table 1 — Top-scoring bursty source patterns.
//!
//! For each query of the Major Events List, reports the number of countries
//! in the top STLocal (regional) pattern, the top STComb (combinatorial)
//! pattern, and the minimum bounding rectangle of the STComb pattern.
//!
//! ```text
//! cargo run --release -p stb-bench --bin table1 [-- --full] [--events]
//! ```

use stb_bench::experiments::{analyze_all_events, topix_corpus};
use stb_bench::{ExperimentCtx, TableWriter};

fn main() {
    let ctx = ExperimentCtx::from_args();
    let show_events = std::env::args().any(|a| a == "--events");
    eprintln!(
        "[table1] generating synthetic Topix corpus ({} scale)...",
        if ctx.full { "full" } else { "reduced" }
    );
    let corpus = topix_corpus(&ctx);
    eprintln!(
        "[table1] corpus: {} streams, {} weeks, {} documents",
        corpus.collection().n_streams(),
        corpus.collection().timeline_len(),
        corpus.collection().documents().len()
    );

    if show_events {
        let mut events = TableWriter::new("Table 9: Major Events List");
        events.header(["#", "Query", "Tier", "Epicenter", "Description"]);
        for e in corpus.events() {
            events.row([
                e.id.to_string(),
                e.query.to_string(),
                e.tier.label().to_string(),
                e.epicenter.to_string(),
                e.description.to_string(),
            ]);
        }
        events.print();
        println!();
    }

    eprintln!("[table1] mining top patterns for all 18 queries...");
    let analyses = analyze_all_events(&corpus);

    let mut table = TableWriter::new("Table 1: Top-Scoring Bursty Source Patterns");
    table.header([
        "#",
        "Query",
        "Tier",
        "# countries in STLocal",
        "# countries in STComb",
        "# countries in MBR",
        "# affected (truth)",
    ]);
    for a in &analyses {
        table.row([
            a.event.id.to_string(),
            a.event.query.to_string(),
            a.event.tier.label().to_string(),
            a.stlocal_countries.to_string(),
            a.stcomb_countries.to_string(),
            a.mbr_countries.to_string(),
            a.truth_countries.to_string(),
        ]);
    }
    table.print();

    // Qualitative summary, mirroring the paper's discussion of Table 1.
    let tier_avg =
        |lo: usize, hi: usize, f: &dyn Fn(&stb_bench::experiments::EventAnalysis) -> usize| {
            analyses[lo..hi].iter().map(f).sum::<usize>() as f64 / (hi - lo) as f64
        };
    println!();
    println!("Tier averages (STLocal / STComb / MBR):");
    for (label, lo, hi) in [
        ("global", 0, 6),
        ("multi-country", 6, 12),
        ("localized", 12, 18),
    ] {
        println!(
            "  {label:<13} {:6.1} / {:6.1} / {:6.1}",
            tier_avg(lo, hi, &|a| a.stlocal_countries),
            tier_avg(lo, hi, &|a| a.stcomb_countries),
            tier_avg(lo, hi, &|a| a.mbr_countries),
        );
    }
}
