//! Standing-subscription harness: what a registered subscription costs the
//! commit path — and what it must *not* cost when it does not match.
//!
//! Every commit intersects the tick's dirty terms with the registry's
//! term→subscription index, so a registration whose terms never go dirty
//! should cost (near) nothing per commit no matter how many of them exist.
//! The harness pins that claim down:
//!
//! * **Overhead sweep** — the same tick plan is committed against 0 (the
//!   baseline) and then 10^3, 10^4, 10^5 registered subscriptions whose
//!   terms are disjoint from the live dirty set. Commit p99 at the largest
//!   sweep point is gated at 1.2x the 0-subscription baseline.
//! * **Matching arm** — 10^3 subscriptions over the hot terms, so a
//!   quarter of them re-evaluate on every commit. Per-delivery
//!   notification latency (the registry's `subscribe_notify_ns`
//!   histogram) is gated at 5x commit p99 — notifying one subscriber must
//!   stay far cheaper than the commit that triggered it.
//!
//! Relevance stays at the default log-frequency (not tf-idf): a tf-idf
//! commit refreshes every posting list and therefore legitimately widens
//! the trigger set to all subscribed terms, which would turn the
//! "non-matching" sweep into a full fan-out and measure the wrong thing.
//!
//! On a single hardware thread the latency gates are reported but skipped
//! (scheduler preemption inflates tails arbitrarily). Results land in a
//! table plus `BENCH_subscribe.json`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_bench::{ExperimentCtx, TableWriter};
use stb_corpus::{StreamId, TermId};
use stb_geo::GeoPoint;
use stb_ingest::{
    IngestConfig, IngestPipeline, MinerKind, OverflowPolicy, Query, SubscriptionHandle,
    SubscriptionOptions,
};
use stb_obs::LatencyHistogram;
use std::collections::HashMap;
use std::time::Instant;

use stb_core::STLocalConfig;

/// Terms the live ticks dirty (burst + background). Non-matching
/// subscriptions draw from the vocabulary *above* this range.
const HOT_TERMS: u32 = 8;

/// One tick's documents: (stream, term bag).
type TickDocs = Vec<(StreamId, HashMap<TermId, u32>)>;

struct Workload {
    n_streams: usize,
    /// Total interned vocabulary (hot + cold subscription terms).
    vocab: usize,
    live_ticks: usize,
    /// Non-matching registration counts swept against the same plan.
    sweep: Vec<usize>,
    /// Matching registrations in the notification arm.
    matching_subs: usize,
}

fn build_workload(ctx: &ExperimentCtx) -> (Workload, Vec<TickDocs>) {
    // Enough live ticks that commit p99 is a real quantile rather than the
    // per-arm maximum — a single scheduler preemption must not define it.
    let (n_streams, vocab, live_ticks) = if ctx.full {
        (16, 20_000, 200)
    } else {
        (8, 5_000, 100)
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let docs_per_tick = 8;
    let mut ticks = Vec::with_capacity(live_ticks);
    for t in 0..live_ticks {
        let hot = TermId((t % 4) as u32);
        let mut docs: TickDocs = Vec::with_capacity(docs_per_tick);
        for _ in 0..docs_per_tick {
            let stream = StreamId(rng.gen_range(0..n_streams as u32));
            let mut counts = HashMap::new();
            counts.insert(TermId(rng.gen_range(4..HOT_TERMS)), 1u32);
            if stream.index() < n_streams / 2 {
                *counts.entry(hot).or_insert(0) += rng.gen_range(10..25u32);
            }
            docs.push((stream, counts));
        }
        ticks.push(docs);
    }
    let workload = Workload {
        n_streams,
        vocab,
        live_ticks,
        sweep: vec![1_000, 10_000, 100_000],
        matching_subs: 1_000,
    };
    (workload, ticks)
}

fn stream_geo(i: usize, n: usize) -> GeoPoint {
    if i < n / 2 {
        GeoPoint::new(i as f64 * 0.3, i as f64 * 0.2)
    } else {
        GeoPoint::new(60.0 + i as f64 * 0.3, 60.0)
    }
}

/// A fresh pipeline over the workload's streams and vocabulary, with one
/// settling commit so the structural re-dirty (new streams invalidate all
/// per-term miner state) happens *before* any subscription is registered
/// or any latency is measured.
fn build_pipeline(w: &Workload) -> IngestPipeline {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: w.live_ticks + 1,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        cache_capacity: 0,
        ..IngestConfig::default()
    });
    for s in 0..w.n_streams {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s, w.n_streams));
    }
    for i in 0..w.vocab {
        pipeline.intern(&format!("term{i}"));
    }
    pipeline.commit_tick();
    pipeline
}

/// Commits the plan, recording per-commit wall latency. Returns the
/// histogram's (p50 us, p99 us).
fn run_commits(pipeline: &mut IngestPipeline, plan: &[TickDocs]) -> (f64, f64) {
    let lat = LatencyHistogram::new();
    for tick in plan {
        for (stream, counts) in tick {
            pipeline.stage_document(*stream, counts.clone());
        }
        let start = Instant::now();
        pipeline.commit_tick();
        lat.record_duration(start.elapsed());
    }
    let snap = lat.snapshot();
    (
        snap.quantile(0.50) as f64 / 1000.0,
        snap.quantile(0.99) as f64 / 1000.0,
    )
}

/// Registers `n` subscriptions over terms that the live plan never
/// dirties. Returns the handles (kept alive for the measured phase) and
/// the registration wall time in ms.
fn register_non_matching(
    pipeline: &IngestPipeline,
    w: &Workload,
    n: usize,
) -> (Vec<SubscriptionHandle>, f64) {
    let cold = (w.vocab as u32) - HOT_TERMS;
    let start = Instant::now();
    let handles = (0..n)
        .map(|i| {
            let term = TermId(HOT_TERMS + (i as u32 % cold));
            pipeline
                .subscribe(
                    &Query::terms([term]).top_k(10),
                    SubscriptionOptions::default(),
                )
                .expect("register non-matching subscription")
        })
        .collect();
    (handles, start.elapsed().as_secs_f64() * 1000.0)
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    let (w, plan) = build_workload(&ctx);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "subscription harness (mode: {}, seed {}, {} cores): {} streams, vocab {}, \
         {} live ticks, sweep {:?} non-matching subscriptions",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        cores,
        w.n_streams,
        w.vocab,
        w.live_ticks,
        w.sweep,
    );

    // Baseline: the identical plan with zero subscriptions registered.
    let mut pipeline = build_pipeline(&w);
    let (base_p50, base_p99) = run_commits(&mut pipeline, &plan);

    // Overhead sweep: same plan, N non-matching registrations watching.
    let mut sweep_rows: Vec<(usize, f64, f64, f64, f64)> = Vec::new();
    for &n in &w.sweep {
        let mut pipeline = build_pipeline(&w);
        let (handles, register_ms) = register_non_matching(&pipeline, &w, n);
        let (p50, p99) = run_commits(&mut pipeline, &plan);
        let metrics = pipeline.subscriptions().metrics();
        assert_eq!(
            metrics.evaluations, 0,
            "non-matching registrations must never be evaluated"
        );
        assert_eq!(metrics.notifications, 0);
        sweep_rows.push((n, register_ms, p50, p99, p99 / base_p99.max(1e-9)));
        drop(handles);
    }

    // Matching arm: subscriptions over the hot terms; every commit
    // notifies the affected quarter. Coalescing keeps abandoned-consumer
    // queues bounded without blocking the committer.
    let mut pipeline = build_pipeline(&w);
    let matching: Vec<SubscriptionHandle> = (0..w.matching_subs)
        .map(|i| {
            let term = TermId(i as u32 % 4);
            pipeline
                .subscribe(
                    &Query::terms([term]).top_k(10),
                    SubscriptionOptions::default()
                        .capacity(4)
                        .overflow(OverflowPolicy::CoalesceLatest),
                )
                .expect("register matching subscription")
        })
        .collect();
    let (match_p50, match_p99) = run_commits(&mut pipeline, &plan);
    let notify = pipeline.subscriptions().notify_latency().snapshot();
    assert!(
        notify.count() > 0,
        "the matching arm must have delivered notifications"
    );
    let notify_p50 = notify.quantile(0.50) as f64 / 1000.0;
    let notify_p99 = notify.quantile(0.99) as f64 / 1000.0;
    let sub_metrics = pipeline.subscriptions().metrics();
    drop(matching);

    let last = sweep_rows.last().expect("non-empty sweep");
    let (max_subs, overhead_ratio) = (last.0, last.4);
    let notify_ratio = notify_p99 / match_p99.max(1e-9);

    // Both gates need a sane scheduler: on a single hardware thread any
    // p99 is one preemption away from garbage, so report-but-skip there.
    let gate = if cores <= 1 {
        "skipped (1 core)"
    } else {
        "enforced"
    };

    let mut table = TableWriter::new("commit latency vs registered subscriptions");
    table.header([
        "subscriptions",
        "register ms",
        "commit p50 us",
        "commit p99 us",
        "vs baseline",
    ]);
    table.row([
        "0 (baseline)".to_string(),
        "-".to_string(),
        format!("{base_p50:.0}"),
        format!("{base_p99:.0}"),
        "1.00x".to_string(),
    ]);
    for &(n, register_ms, p50, p99, ratio) in &sweep_rows {
        table.row([
            format!("{n} non-matching"),
            format!("{register_ms:.0}"),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
            format!("{ratio:.2}x"),
        ]);
    }
    table.row([
        format!("{} matching", w.matching_subs),
        "-".to_string(),
        format!("{match_p50:.0}"),
        format!("{match_p99:.0}"),
        format!("{:.2}x", match_p99 / base_p99.max(1e-9)),
    ]);
    println!("{}", table.render());
    println!(
        "notification latency (per delivered diff): p50 {notify_p50:.1} / p99 {notify_p99:.1} us \
         ({notify_ratio:.3}x commit p99); {} notifications, {} coalesced",
        sub_metrics.notifications, sub_metrics.coalesced,
    );
    if gate == "enforced" {
        println!(
            "gates: enforced — commit p99 at {max_subs} non-matching subs {overhead_ratio:.2}x \
             baseline (limit 1.2x), notify p99 {notify_ratio:.3}x commit p99 (limit 5x)"
        );
    } else {
        println!(
            "gates: skipped (1 core) — measured {overhead_ratio:.2}x overhead and \
             {notify_ratio:.3}x notify ratio; tails are scheduler-bound on a single \
             hardware thread"
        );
    }

    let sweep_json: Vec<String> = sweep_rows
        .iter()
        .map(|(n, register_ms, p50, p99, ratio)| {
            format!(
                "{{\"subscriptions\": {n}, \"register_ms\": {register_ms:.1}, \
                 \"commit_p50_us\": {p50:.1}, \"commit_p99_us\": {p99:.1}, \
                 \"ratio\": {ratio:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"subscribe\",\n  \"mode\": \"{}\",\n  \"seed\": {},\n  \
         \"cores\": {},\n  \
         \"workload\": {{\"streams\": {}, \"vocab\": {}, \"live_ticks\": {}}},\n  \
         \"baseline_commit_p50_us\": {:.1},\n  \"baseline_commit_p99_us\": {:.1},\n  \
         \"sweep\": [{}],\n  \
         \"matching_subs\": {},\n  \"matching_commit_p99_us\": {:.1},\n  \
         \"notify_p50_us\": {:.1},\n  \"notify_p99_us\": {:.1},\n  \
         \"notify_ratio\": {:.3},\n  \"overhead_ratio\": {:.3},\n  \"gate\": \"{}\"\n}}\n",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        cores,
        w.n_streams,
        w.vocab,
        w.live_ticks,
        base_p50,
        base_p99,
        sweep_json.join(", "),
        w.matching_subs,
        match_p99,
        notify_p50,
        notify_p99,
        notify_ratio,
        overhead_ratio,
        gate,
    );
    let path = "BENCH_subscribe.json";
    std::fs::write(path, &json).expect("write BENCH_subscribe.json");
    println!("wrote {path}");

    if gate == "enforced" {
        // Overhead gate: registrations outside the dirty set must be free.
        // The absolute grace floor absorbs timer noise when the baseline
        // commit itself is only a few hundred microseconds.
        let limit_us = (1.2 * base_p99).max(base_p99 + 500.0);
        assert!(
            last.3 <= limit_us,
            "commit p99 with {max_subs} non-matching subscriptions must stay within \
             1.2x of the 0-subscription baseline \
             (baseline {base_p99:.0} us, measured {:.0} us, limit {limit_us:.0} us)",
            last.3,
        );
        // Notification gate: delivering one diff must stay far cheaper
        // than the commit that produced it.
        assert!(
            notify_p99 <= 5.0 * match_p99,
            "notification p99 ({notify_p99:.1} us) must stay within 5x of commit p99 \
             ({match_p99:.1} us) at {} matching subscriptions",
            w.matching_subs,
        );
    }
}
