//! Kernel-scaling harness for the maximum-weight rectangle search.
//!
//! Runs every rectangle kernel on the same random point sets at
//! `m ∈ {64, 256, 1024}`, checks that the exact kernels agree on the
//! optimal score, prints a comparison table, and writes
//! `BENCH_maxrect.json` with per-kernel nanoseconds and the tree-vs-sweep
//! speedup. The default (quick) mode times a couple of repetitions so CI
//! can exercise the perf path cheaply; pass `--full` for more repetitions
//! and `--seed <n>` to vary the workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_bench::{ExperimentCtx, TableWriter};
use stb_discrepancy::{
    max_weight_rect_grid, max_weight_rect_naive, max_weight_rect_with, MaxRect, RectKernel, WPoint,
};
use std::time::Instant;

/// Sizes the issue pins for the scaling comparison.
const SIZES: [usize; 3] = [64, 256, 1024];
/// The naive `O(m^5)` oracle is only affordable at the smallest size.
const NAIVE_CAP: usize = 64;

fn points(n: usize, seed: u64) -> Vec<WPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            WPoint::new(
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(-1.0..1.5),
            )
        })
        .collect()
}

/// Best-of-`reps` wall-clock nanoseconds of `f`, with one warmup run.
/// Returns the timing and the last result for score cross-checking.
fn time_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> (u128, T) {
    let mut out = f();
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_nanos());
    }
    (best, out)
}

/// One size's measurements, in nanoseconds per invocation.
struct SizeResult {
    m: usize,
    tree_ns: u128,
    sweep_ns: u128,
    grid16_ns: u128,
    naive_ns: Option<u128>,
}

impl SizeResult {
    fn speedup(&self) -> f64 {
        self.sweep_ns as f64 / self.tree_ns.max(1) as f64
    }
}

fn score_of(r: &Option<MaxRect>) -> f64 {
    r.as_ref().map(|m| m.score).unwrap_or(0.0)
}

fn run_size(m: usize, seed: u64, reps: usize) -> SizeResult {
    let pts = points(m, seed);
    let (tree_ns, tree) = time_ns(reps, || max_weight_rect_with(&pts, RectKernel::Tree));
    let (sweep_ns, sweep) = time_ns(reps, || max_weight_rect_with(&pts, RectKernel::Sweep));
    let (grid16_ns, _) = time_ns(reps, || max_weight_rect_grid(&pts, 16));
    let naive_ns = (m <= NAIVE_CAP).then(|| {
        let (ns, naive) = time_ns(1, || max_weight_rect_naive(&pts));
        assert!(
            (score_of(&tree) - score_of(&naive)).abs() < 1e-6,
            "tree kernel disagrees with the naive oracle at m={m}"
        );
        ns
    });
    assert!(
        (score_of(&tree) - score_of(&sweep)).abs() < 1e-6,
        "exact kernels disagree at m={m}: tree {} vs sweep {}",
        score_of(&tree),
        score_of(&sweep)
    );
    SizeResult {
        m,
        tree_ns,
        sweep_ns,
        grid16_ns,
        naive_ns,
    }
}

fn render_json(ctx: &ExperimentCtx, results: &[SizeResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"maxrect_kernels\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if ctx.full { "full" } else { "quick" }
    ));
    out.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"m\": {}, \"tree_ns\": {}, \"sweep_ns\": {}, \"grid16_ns\": {}, \
             \"naive_ns\": {}, \"speedup_tree_vs_sweep\": {:.2}}}{}\n",
            r.m,
            r.tree_ns,
            r.sweep_ns,
            r.grid16_ns,
            r.naive_ns
                .map(|ns| ns.to_string())
                .unwrap_or_else(|| "null".to_string()),
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    let reps = if ctx.full { 7 } else { 2 };
    println!(
        "max-rect kernel scaling (mode: {}, seed {}, best of {reps})",
        if ctx.full { "full" } else { "quick" },
        ctx.seed
    );

    let results: Vec<SizeResult> = SIZES.iter().map(|&m| run_size(m, ctx.seed, reps)).collect();

    let mut table = TableWriter::new("max_weight_rect kernels: ns per call");
    table.header(["m", "tree", "sweep", "grid16", "naive", "tree vs sweep"]);
    for r in &results {
        table.row([
            r.m.to_string(),
            r.tree_ns.to_string(),
            r.sweep_ns.to_string(),
            r.grid16_ns.to_string(),
            r.naive_ns
                .map(|ns| ns.to_string())
                .unwrap_or_else(|| "-".to_string()),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("{}", table.render());

    let json = render_json(&ctx, &results);
    let path = "BENCH_maxrect.json";
    std::fs::write(path, &json).expect("write BENCH_maxrect.json");
    println!("wrote {path}");

    let largest = results.last().expect("at least one size");
    println!(
        "largest size m={}: tree is {:.2}x faster than sweep",
        largest.m,
        largest.speedup()
    );
}
