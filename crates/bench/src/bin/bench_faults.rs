//! Chaos harness: what a transient-fault storm costs per commit, and how
//! fast the degraded-mode state machine climbs back to `Durable`.
//!
//! Two arms over one synthetic bursty workload, both write-ahead logged:
//!
//! * **fault-free** — per-commit latency with a healthy disk: the p50/p99
//!   floor.
//! * **storm** — the same plan with a stochastic transient-fault schedule
//!   ([`FaultSchedule::storm`]) injected at every store syscall site, and a
//!   microsecond-scale bounded-backoff [`RetryPolicy`] absorbing them.
//!   Appends fail mid-frame, syncs fail after the frame, re-opens fail
//!   again; the pipeline retries, degrades, buffers, and restores while
//!   commits keep completing.
//!
//! After the storm the disk heals and one explicit
//! `try_recover_durability` call must return the pipeline to `Durable`
//! within the retry policy's worst-case backoff budget (plus real I/O).
//! The storm survivor, a cold recovery of its directory, and the
//! fault-free arm are then cross-checked bit-identically — a fault storm
//! is allowed to cost latency, never ticks.
//!
//! Numbers land in a table plus `BENCH_faults.json`. Quick mode (the
//! default, run by CI) uses a small workload; `--full` scales it up,
//! `--seed <n>` varies workload and storm together.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_bench::{measure_ms, ExperimentCtx, TableWriter};
use stb_core::STLocalConfig;
use stb_corpus::{StreamId, TermId};
use stb_geo::GeoPoint;
use stb_ingest::{DurabilityState, IngestConfig, IngestPipeline, MinerKind, RetryPolicy};
use stb_obs::LatencyHistogram;
use stb_search::{Query, SearchResult};
use stb_store::{FaultSchedule, Store};
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

/// One tick's documents: (stream, term bag).
type TickDocs = Vec<(StreamId, HashMap<TermId, u32>)>;

struct Workload {
    n_streams: usize,
    timeline: usize,
    vocab: usize,
    ticks: Vec<TickDocs>,
    queries: Vec<Vec<TermId>>,
}

fn build_workload(ctx: &ExperimentCtx) -> Workload {
    let (n_streams, timeline, vocab, docs_per_tick) = if ctx.full {
        (32, 80, 160, 24)
    } else {
        (12, 40, 80, 10)
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let burst_term = TermId(0);
    let burst_window = (timeline / 3)..(timeline / 2);
    let mut ticks = Vec::with_capacity(timeline);
    for t in 0..timeline {
        let mut docs: TickDocs = Vec::with_capacity(docs_per_tick);
        for _ in 0..docs_per_tick {
            let stream = StreamId(rng.gen_range(0..n_streams as u32));
            let mut counts = HashMap::new();
            for _ in 0..2 {
                let term = TermId(rng.gen_range(1..vocab as u32));
                *counts.entry(term).or_insert(0) += rng.gen_range(1..4u32);
            }
            if burst_window.contains(&t) && stream.index() < n_streams / 2 {
                *counts.entry(burst_term).or_insert(0) += rng.gen_range(15..30u32);
            }
            docs.push((stream, counts));
        }
        ticks.push(docs);
    }
    let queries = vec![
        vec![burst_term],
        vec![burst_term, TermId(1)],
        vec![TermId(2)],
    ];
    Workload {
        n_streams,
        timeline,
        vocab,
        ticks,
        queries,
    }
}

fn stream_geo(i: usize, n: usize) -> GeoPoint {
    if i < n / 2 {
        GeoPoint::new(i as f64 * 0.3, i as f64 * 0.2)
    } else {
        GeoPoint::new(60.0 + i as f64 * 0.3, 60.0)
    }
}

/// Microsecond-scale backoffs: the storm injects EINTR-class blips, not
/// real disk stalls, so the harness measures the state machine's overhead
/// rather than `thread::sleep` wall-clock.
fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 4,
        initial_backoff: Duration::from_micros(20),
        multiplier: 2.0,
        max_backoff: Duration::from_micros(200),
        jitter: 0.1,
        seed: 0x5742_5354,
    }
}

fn config(w: &Workload) -> IngestConfig {
    IngestConfig {
        timeline_capacity: w.timeline,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        cache_capacity: 1024,
        retry: retry_policy(),
        max_buffered_ticks: 256,
        ..IngestConfig::default()
    }
}

/// Stages and commits the whole plan, timing each commit individually;
/// returns the per-commit latencies in plan order.
fn drive(pipeline: &mut IngestPipeline, w: &Workload) -> Vec<f64> {
    for s in 0..w.n_streams {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s, w.n_streams));
    }
    for i in 0..w.vocab {
        pipeline.intern(&format!("term{i}"));
    }
    let mut latencies = Vec::with_capacity(w.ticks.len());
    for tick in &w.ticks {
        for (stream, counts) in tick {
            pipeline.stage_document(*stream, counts.clone());
        }
        let (_, ms) = measure_ms(|| pipeline.commit_tick());
        latencies.push(ms);
    }
    latencies
}

/// (p50, p99) via the serving tier's log-linear `LatencyHistogram`
/// (`stb-obs`), so the bench reports the same quantile semantics a
/// production scrape would (<= 1/32 relative bucket error).
fn quantiles(samples: &[f64]) -> (f64, f64) {
    let hist = LatencyHistogram::new();
    for &ms in samples {
        hist.record((ms * 1e6).max(0.0) as u64);
    }
    let snap = hist.snapshot();
    (
        snap.quantile(0.50) as f64 / 1e6,
        snap.quantile(0.99) as f64 / 1e6,
    )
}

fn pipeline_results(p: &IngestPipeline, queries: &[Vec<TermId>]) -> Vec<Vec<SearchResult>> {
    let handle = p.search_handle();
    queries
        .iter()
        .map(|q| {
            handle
                .query(&Query::terms(q.iter().copied()).top_k(10))
                .map(|r| r.results)
                .unwrap_or_default()
        })
        .collect()
}

fn assert_identical(label: &str, expect: &[Vec<SearchResult>], got: &[Vec<SearchResult>]) {
    for (e_list, g_list) in expect.iter().zip(got) {
        assert_eq!(e_list.len(), g_list.len(), "{label}: result counts diverge");
        for (e, g) in e_list.iter().zip(g_list) {
            assert_eq!(e.doc, g.doc, "{label}: documents diverge");
            assert_eq!(
                e.score.to_bits(),
                g.score.to_bits(),
                "{label}: scores diverge: {} vs {}",
                e.score,
                g.score
            );
        }
    }
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stb-bench-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    let w = build_workload(&ctx);
    // 35% of store operations fail with a transient error: deep enough
    // that retries exhaust and the degraded/restore path runs many times
    // per run, shallow enough that the storm stays survivable.
    let fail_permille = 350u32;
    println!(
        "chaos harness (mode: {}, seed {}): {} streams, {} ticks, {} docs, \
         storm {}\u{2030} transient failures",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        w.n_streams,
        w.timeline,
        w.ticks.iter().map(Vec::len).sum::<usize>(),
        fail_permille,
    );

    // Fault-free arm: the per-commit latency floor (best-of-REPS per
    // percentile, so one scheduler hiccup does not decide the comparison).
    const REPS: usize = 3;
    let mut base_p50 = f64::INFINITY;
    let mut base_p99 = f64::INFINITY;
    let mut expect_results = None;
    for _ in 0..REPS {
        let dir = store_dir("clean");
        let (mut p, _) = IngestPipeline::durable(config(&w), &dir).expect("open durable store");
        let lat = drive(&mut p, &w);
        assert!(
            p.durability_state().is_durable(),
            "clean arm must stay durable"
        );
        let (p50, p99) = quantiles(&lat);
        base_p50 = base_p50.min(p50);
        base_p99 = base_p99.min(p99);
        expect_results = Some(pipeline_results(&p, &w.queries));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let expect_results = expect_results.expect("fault-free arm ran");

    // Storm arm: same plan under stochastic transient faults. Keep the
    // last rep's survivor alive for the recovery measurement.
    let mut storm_p50 = f64::INFINITY;
    let mut storm_p99 = f64::INFINITY;
    let mut recovery_ms = 0.0f64;
    let mut injected = 0u64;
    let mut degraded_commits = 0usize;
    let mut recoveries = 0u64;
    let dir = store_dir("storm");
    for rep in 0..REPS {
        let _ = std::fs::remove_dir_all(&dir);
        let faults = FaultSchedule::new();
        let store = Store::open_with_faults(&dir, faults.clone()).expect("open store");
        let (mut p, _) =
            IngestPipeline::durable_with_store(config(&w), store).expect("open pipeline");
        faults.storm(ctx.seed.wrapping_add(rep as u64), 1_000_000, fail_permille);
        let lat = drive(&mut p, &w);
        assert_ne!(
            p.durability_state(),
            DurabilityState::NonDurable,
            "a transient-only storm must never fail-stop"
        );
        let (p50, p99) = quantiles(&lat);
        storm_p50 = storm_p50.min(p50);
        storm_p99 = storm_p99.min(p99);
        injected = faults.injected();
        degraded_commits = lat.len().saturating_sub(p.health().wal_appends as usize);

        // The disk heals; one explicit recovery call must return to
        // Durable within the policy's backoff budget plus real I/O.
        faults.heal();
        let (state, ms) = measure_ms(|| p.try_recover_durability());
        assert_eq!(state, DurabilityState::Durable, "healed disk must recover");
        recovery_ms = ms;
        recoveries = p.health().recoveries;

        // A fault storm may cost latency, never ticks: the survivor
        // answers bit-identically to the fault-free arm.
        assert_eq!(p.ticks_committed(), w.timeline);
        assert_identical(
            "storm survivor",
            &expect_results,
            &pipeline_results(&p, &w.queries),
        );
    }

    // Zero committed-tick loss on disk: a cold, fault-free recovery of the
    // stormed directory reproduces the same engine.
    let (recovered, _) = IngestPipeline::durable(config(&w), &dir).expect("cold recovery");
    assert_eq!(recovered.ticks_committed(), w.timeline);
    assert_identical(
        "cold recovery",
        &expect_results,
        &pipeline_results(&recovered, &w.queries),
    );
    drop(recovered);

    let policy = retry_policy();
    let budget_ms = policy.max_total_backoff().as_secs_f64() * 1e3;
    // The restore itself re-reads and rewrites the WAL: allow the backoff
    // budget plus a generous real-I/O term before calling it a regression.
    let recovery_bound_ms = budget_ms + 250.0;
    let p99_ratio = storm_p99 / base_p99.max(1e-9);

    let mut table = TableWriter::new("fault storm: commit latency and recovery (ms)");
    table.header(["metric", "fault-free", "storm"]);
    table.row([
        "commit p50".to_string(),
        format!("{base_p50:.3}"),
        format!("{storm_p50:.3}"),
    ]);
    table.row([
        "commit p99".to_string(),
        format!("{base_p99:.3}"),
        format!("{storm_p99:.3}"),
    ]);
    table.row([
        "recovery to durable".to_string(),
        "-".to_string(),
        format!("{recovery_ms:.3}"),
    ]);
    println!("{}", table.render());
    println!(
        "{injected} faults injected, {degraded_commits} commits rode the degraded buffer, \
         {recoveries} restores; storm p99 is {p99_ratio:.1}x fault-free \
         (bound 10x), recovery {recovery_ms:.3} ms (bound {recovery_bound_ms:.0} ms)"
    );

    let json = format!(
        "{{\n  \"bench\": \"faults\",\n  \"mode\": \"{}\",\n  \"seed\": {},\n  \
         \"workload\": {{\"streams\": {}, \"ticks\": {}, \"vocab\": {}, \"docs\": {}}},\n  \
         \"storm_fail_permille\": {},\n  \"faults_injected\": {},\n  \
         \"commit_p50_ms\": {:.4},\n  \"commit_p99_ms\": {:.4},\n  \
         \"storm_commit_p50_ms\": {:.4},\n  \"storm_commit_p99_ms\": {:.4},\n  \
         \"storm_p99_ratio\": {:.2},\n  \"recovery_to_durable_ms\": {:.4},\n  \
         \"recovery_bound_ms\": {:.1},\n  \"restores\": {}\n}}\n",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        w.n_streams,
        w.timeline,
        w.vocab,
        w.ticks.iter().map(Vec::len).sum::<usize>(),
        fail_permille,
        injected,
        base_p50,
        base_p99,
        storm_p50,
        storm_p99,
        p99_ratio,
        recovery_ms,
        recovery_bound_ms,
        recoveries,
    );
    let path = "BENCH_faults.json";
    std::fs::write(path, &json).expect("write BENCH_faults.json");
    println!("wrote {path}");

    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        p99_ratio <= 10.0,
        "storm commit p99 must stay within 10x of fault-free (got {p99_ratio:.1}x)"
    );
    assert!(
        recovery_ms <= recovery_bound_ms,
        "recovery to durable must finish within the policy budget \
         ({recovery_ms:.3} ms > {recovery_bound_ms:.0} ms)"
    );
}
