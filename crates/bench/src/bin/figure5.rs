//! Figure 5 — Distribution of the number of bursty rectangles per term per
//! timestamp for STLocal on the Topix corpus.
//!
//! The paper renders this as a pie chart; we print the same population as a
//! histogram over the paper's bins.
//!
//! ```text
//! cargo run --release -p stb-bench --bin figure5 [-- --full]
//! ```

use stb_bench::experiments::{
    rectangle_histogram, sample_terms, streaming_statistics, topix_corpus,
};
use stb_bench::{ExperimentCtx, TableWriter};

fn main() {
    let ctx = ExperimentCtx::from_args();
    eprintln!("[figure5] generating synthetic Topix corpus...");
    let corpus = topix_corpus(&ctx);
    let n_background = if ctx.full { 300 } else { 80 };
    let terms = sample_terms(&corpus, n_background);
    eprintln!("[figure5] streaming {} terms with STLocal...", terms.len());
    let stats = streaming_statistics(&corpus, &terms);
    let bins = rectangle_histogram(&stats.avg_rectangles_per_term);

    let mut table = TableWriter::new("Figure 5: Avg # bursty rectangles per term per timestamp");
    table.header(["Bin", "% of terms"]);
    for (label, pct) in [
        ("0 - 1", bins[0]),
        ("1 - 2", bins[1]),
        ("2 - 3", bins[2]),
        (">= 3", bins[3]),
    ] {
        table.row([label.to_string(), format!("{pct:.1}%")]);
    }
    table.print();

    println!();
    println!(
        "Terms sampled: {} (all 18 event queries + {} background terms).",
        terms.len(),
        n_background
    );
    println!(
        "Paper's observation: for the vast majority of terms (92%) the average number of \
         rectangles per timestamp lies in [0, 1), far below the worst-case n = 181."
    );
}
