//! Figure 8 — Running time vs number of streams on distGen data.
//!
//! ```text
//! cargo run --release -p stb-bench --bin figure8 [-- --full]
//! ```
//!
//! The default sweep stops at 4,000 streams so the binary finishes quickly;
//! `--full` runs the paper's sweep up to 128,000 streams (slow).

use stb_bench::experiments::{scalability_experiment, scalability_stream_counts};
use stb_bench::{ExperimentCtx, TableWriter};

fn main() {
    let ctx = ExperimentCtx::from_args();
    let counts = scalability_stream_counts(ctx.full);
    let terms_per_point = if ctx.full { 20 } else { 10 };
    eprintln!(
        "[figure8] sweeping stream counts {:?} with {} timed terms per point...",
        counts, terms_per_point
    );
    let points = scalability_experiment(&ctx, &counts, terms_per_point);

    let mut table =
        TableWriter::new("Figure 8: Running time (s per term) vs number of streams (distGen)");
    table.header(["# streams", "STComb (s)", "STLocal (s)"]);
    for p in &points {
        table.row([
            p.n_streams.to_string(),
            format!("{:.3}", p.stcomb_secs),
            format!("{:.3}", p.stlocal_secs),
        ]);
    }
    table.print();

    println!();
    println!(
        "Expected shape (paper, Figure 8): both approaches grow close to linearly with the \
         number of streams, with STLocal consistently the faster of the two."
    );
}
