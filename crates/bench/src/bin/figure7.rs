//! Figure 7 — Running time (ms) per timestamp for STComb and STLocal on the
//! Topix corpus, averaged over the sampled terms.
//!
//! ```text
//! cargo run --release -p stb-bench --bin figure7 [-- --full]
//! ```

use stb_bench::experiments::{sample_terms, timing_per_timestamp, topix_corpus};
use stb_bench::{ExperimentCtx, TableWriter};

fn main() {
    let ctx = ExperimentCtx::from_args();
    eprintln!("[figure7] generating synthetic Topix corpus...");
    let corpus = topix_corpus(&ctx);
    let n_background = if ctx.full { 100 } else { 30 };
    let terms = sample_terms(&corpus, n_background);
    eprintln!(
        "[figure7] replaying the stream and timing {} terms per timestamp...",
        terms.len()
    );
    let timing = timing_per_timestamp(&corpus, &terms);

    let mut table = TableWriter::new("Figure 7: Running time (ms) per timestamp, per term");
    table.header(["Timestamp", "STComb (ms)", "STLocal (ms)"]);
    for ts in 0..timing.stlocal_ms.len() {
        table.row([
            ts.to_string(),
            format!("{:.3}", timing.stcomb_ms[ts]),
            format!("{:.3}", timing.stlocal_ms[ts]),
        ]);
    }
    table.print();

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "Averages: STComb {:.3} ms/timestamp/term, STLocal {:.3} ms/timestamp/term.",
        avg(&timing.stcomb_ms),
        avg(&timing.stlocal_ms)
    );
    println!(
        "Expected shape (paper, Figure 7): the online STLocal stays roughly flat and cheap, \
         while STComb grows with the prefix length because it reprocesses the entire stream."
    );
}
