//! Live-ingestion harness: sustained ingest throughput, query latency
//! under ingest, pattern-freshness lag, and the incremental-vs-full-rebuild
//! speedup.
//!
//! Drives the same synthetic workload through two arms:
//!
//! * **incremental** — one `IngestPipeline`: per tick, stage the tick's
//!   documents and `commit_tick()` (apply docs, advance online burst state,
//!   re-mine dirty terms, apply per-term index deltas). After every commit
//!   a fixed query set is answered through the live `SearchHandle`.
//! * **full rebuild** — the batch path from scratch at every tick: rebuild
//!   the collection from all documents so far, mine **every** term, build a
//!   fresh engine, and finalize the posting index.
//!
//! The two arms are cross-checked at the final tick (byte-identical top-k)
//! and the per-tick timings are reported as a table plus
//! `BENCH_ingest.json`. Quick mode (the default, run by CI) uses a small
//! workload; `--full` scales it up, `--seed <n>` varies it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_bench::{ExperimentCtx, TableWriter};
use stb_core::{STLocal, STLocalConfig};
use stb_corpus::{CollectionBuilder, StreamId, TermId};
use stb_geo::GeoPoint;
use stb_ingest::{IngestConfig, IngestPipeline, MinerKind};
use stb_obs::LatencyHistogram;
use stb_search::{BurstySearchEngine, EngineConfig, Query, SearchResult};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The harness's fixed query shape: a plain term top-10 through the typed
/// API.
fn top10(terms: &[TermId]) -> Query {
    Query::terms(terms.iter().copied()).top_k(10)
}

/// One tick's documents: (stream, term bag).
type TickDocs = Vec<(StreamId, HashMap<TermId, u32>)>;

struct Workload {
    n_streams: usize,
    timeline: usize,
    /// Term ids are dense 0..vocab, interned as "term{i}" in id order.
    vocab: usize,
    /// Per tick, the documents arriving at that tick.
    ticks: Vec<TickDocs>,
    /// The fixed query set answered after every tick.
    queries: Vec<Vec<TermId>>,
}

/// Two spatial clusters of streams; a burst term erupts in the first
/// cluster over the middle third of the timeline while background terms
/// hum everywhere.
fn build_workload(ctx: &ExperimentCtx) -> Workload {
    let (n_streams, timeline, vocab, docs_per_tick) = if ctx.full {
        (40, 90, 160, 30)
    } else {
        (16, 36, 80, 10)
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let burst_term = TermId(0);
    let burst_window = (timeline / 3)..(timeline / 2);
    let mut ticks = Vec::with_capacity(timeline);
    for t in 0..timeline {
        let mut docs: TickDocs = Vec::with_capacity(docs_per_tick);
        for _ in 0..docs_per_tick {
            let stream = StreamId(rng.gen_range(0..n_streams as u32));
            let mut counts = HashMap::new();
            for _ in 0..2 {
                let term = TermId(rng.gen_range(1..vocab as u32));
                *counts.entry(term).or_insert(0) += rng.gen_range(1..4u32);
            }
            // The burst: cluster-A streams mention the burst term heavily.
            if burst_window.contains(&t) && stream.index() < n_streams / 2 {
                *counts.entry(burst_term).or_insert(0) += rng.gen_range(15..30u32);
            } else if rng.gen_range(0..10) == 0 {
                counts.insert(burst_term, 1); // background chatter
            }
            docs.push((stream, counts));
        }
        ticks.push(docs);
    }
    let queries = vec![
        vec![burst_term],
        vec![burst_term, TermId(1)],
        vec![TermId(2)],
        vec![TermId(3), TermId(4)],
    ];
    Workload {
        n_streams,
        timeline,
        vocab,
        ticks,
        queries,
    }
}

fn stream_geo(i: usize, n: usize) -> GeoPoint {
    // First half clustered near the origin, second half far away.
    if i < n / 2 {
        GeoPoint::new(i as f64 * 0.3, i as f64 * 0.2)
    } else {
        GeoPoint::new(60.0 + i as f64 * 0.3, 60.0)
    }
}

struct Summary {
    p50: f64,
    p99: f64,
    mean: f64,
}

/// Quantiles via the same log-linear histogram the serving tier exports
/// (`stb_obs::LatencyHistogram`), so the bench's p50/p99 agree with what a
/// production scrape would report (<= 1/32 relative bucket error).
fn summarize(samples: &[f64]) -> Summary {
    let mean = samples.iter().sum::<f64>() / samples.len().max(1) as f64;
    let hist = LatencyHistogram::new();
    for &ms in samples {
        hist.record((ms * 1e6).max(0.0) as u64);
    }
    let snap = hist.snapshot();
    Summary {
        p50: snap.quantile(0.50) as f64 / 1e6,
        p99: snap.quantile(0.99) as f64 / 1e6,
        mean,
    }
}

struct IncrementalRun {
    commit_ms: Vec<f64>,
    query_ms: Vec<f64>,
    /// Results of the fixed queries at the final tick (for cross-checking).
    final_results: Vec<Vec<SearchResult>>,
    answered_at_every_tick: bool,
    docs_total: u64,
}

fn run_incremental(w: &Workload) -> IncrementalRun {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: w.timeline,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        engine: EngineConfig::default(),
        cache_capacity: 1024,
        ..IngestConfig::default()
    });
    for s in 0..w.n_streams {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s, w.n_streams));
    }
    for i in 0..w.vocab {
        pipeline.intern(&format!("term{i}"));
    }
    let handle = pipeline.search_handle();
    let mut commit_ms = Vec::with_capacity(w.timeline);
    let mut query_ms = Vec::new();
    let mut answered_at_every_tick = true;
    let mut docs_total = 0u64;
    for tick in &w.ticks {
        for (stream, counts) in tick {
            pipeline.stage_document(*stream, counts.clone());
            docs_total += 1;
        }
        let receipt = pipeline.commit_tick();
        commit_ms.push(receipt.commit_ms);
        // Queries under ingest: the fixed set, timed individually.
        let mut any = false;
        for query in &w.queries {
            let start = Instant::now();
            let hits = handle
                .query(&top10(query))
                .map(|r| r.results)
                .unwrap_or_default();
            query_ms.push(start.elapsed().as_secs_f64() * 1000.0);
            any |= !hits.is_empty();
        }
        // Once the burst has begun, the burst query must return documents.
        if receipt.tick >= w.timeline / 3 && !any {
            answered_at_every_tick = false;
        }
    }
    let final_results = w
        .queries
        .iter()
        .map(|q| {
            handle
                .query(&top10(q))
                .map(|r| r.results)
                .unwrap_or_default()
        })
        .collect();
    IncrementalRun {
        commit_ms,
        query_ms,
        final_results,
        answered_at_every_tick,
        docs_total,
    }
}

/// The batch path from scratch: everything the incremental commit makes
/// unnecessary — collection build, mining of every term, engine + index
/// finalize.
fn full_rebuild(w: &Workload, upto_tick: usize) -> (f64, Vec<Vec<SearchResult>>) {
    let start = Instant::now();
    let mut b = CollectionBuilder::new(w.timeline);
    for i in 0..w.vocab {
        b.dict_mut().intern(&format!("term{i}"));
    }
    for s in 0..w.n_streams {
        b.add_stream(&format!("s{s}"), stream_geo(s, w.n_streams));
    }
    for (ts, tick) in w.ticks.iter().take(upto_tick + 1).enumerate() {
        for (stream, counts) in tick {
            b.add_document(*stream, ts, counts.clone());
        }
    }
    let collection = Arc::new(b.build());
    let mut engine = BurstySearchEngine::new(Arc::clone(&collection), EngineConfig::default());
    engine.set_cache_capacity(1024);
    for term in collection.terms() {
        let (patterns, _) = STLocal::mine_collection(&collection, term, STLocalConfig::default());
        engine.set_patterns(term, &patterns);
    }
    engine.finalize_with_threads(1);
    let elapsed = start.elapsed().as_secs_f64() * 1000.0;
    let results = w
        .queries
        .iter()
        .map(|q| {
            engine
                .query(&top10(q))
                .map(|r| r.results)
                .unwrap_or_default()
        })
        .collect();
    (elapsed, results)
}

fn assert_identical(expect: &[Vec<SearchResult>], got: &[Vec<SearchResult>]) {
    for (e_list, g_list) in expect.iter().zip(got) {
        assert_eq!(e_list.len(), g_list.len(), "result counts diverge");
        for (e, g) in e_list.iter().zip(g_list) {
            assert_eq!(e.doc, g.doc, "documents diverge");
            assert_eq!(
                e.score.to_bits(),
                g.score.to_bits(),
                "scores diverge: {} vs {}",
                e.score,
                g.score
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    ctx: &ExperimentCtx,
    w: &Workload,
    docs_per_sec: f64,
    commit: &Summary,
    query: &Summary,
    incr_mean: f64,
    full_mean: f64,
    speedup: f64,
    answered: bool,
) -> String {
    format!(
        "{{\n  \"bench\": \"ingest_pipeline\",\n  \"mode\": \"{}\",\n  \"seed\": {},\n  \
         \"workload\": {{\"streams\": {}, \"ticks\": {}, \"vocab\": {}, \"docs\": {}}},\n  \
         \"docs_per_sec\": {:.0},\n  \
         \"commit_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}, \"mean\": {:.3}}},\n  \
         \"query_ms_under_ingest\": {{\"p50\": {:.4}, \"p99\": {:.4}, \"mean\": {:.4}}},\n  \
         \"incremental_tick_ms_mean\": {:.3},\n  \"full_rebuild_ms_mean\": {:.3},\n  \
         \"speedup_incremental_vs_full\": {:.1},\n  \"answered_at_every_tick\": {}\n}}\n",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        w.n_streams,
        w.timeline,
        w.vocab,
        w.ticks.iter().map(Vec::len).sum::<usize>(),
        docs_per_sec,
        commit.p50,
        commit.p99,
        commit.mean,
        query.p50,
        query.p99,
        query.mean,
        incr_mean,
        full_mean,
        speedup,
        answered,
    )
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    let w = build_workload(&ctx);
    println!(
        "live-ingest harness (mode: {}, seed {}): {} streams, {} ticks, {} docs",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        w.n_streams,
        w.timeline,
        w.ticks.iter().map(Vec::len).sum::<usize>(),
    );

    // Incremental arm.
    let incr = run_incremental(&w);
    let commit = summarize(&incr.commit_ms);
    let query = summarize(&incr.query_ms);
    let total_commit_ms: f64 = incr.commit_ms.iter().sum();
    let docs_per_sec = incr.docs_total as f64 / (total_commit_ms / 1000.0);

    // Full-rebuild arm: rebuild from scratch at every tick (the cost a
    // batch-only system pays for the same freshness), sampled every other
    // tick in quick mode to keep CI fast.
    let stride = if ctx.full { 1 } else { 2 };
    let mut full_ms = Vec::new();
    let mut full_final = None;
    let mut t = 0;
    while t < w.timeline {
        let last = t + stride >= w.timeline;
        let tick = if last { w.timeline - 1 } else { t };
        let (ms, results) = full_rebuild(&w, tick);
        full_ms.push(ms);
        if last {
            full_final = Some(results);
        }
        t += stride;
    }
    let full = summarize(&full_ms);

    // The two arms must agree exactly at the final tick.
    assert_identical(&full_final.expect("final rebuild"), &incr.final_results);
    assert!(
        incr.final_results.iter().any(|r| !r.is_empty()),
        "the burst query must return documents"
    );

    let speedup = full.mean / commit.mean.max(1e-9);
    let mut table = TableWriter::new("live ingest: per-tick cost (ms)");
    table.header(["arm", "p50", "p99", "mean"]);
    table.row([
        "incremental commit".to_string(),
        format!("{:.3}", commit.p50),
        format!("{:.3}", commit.p99),
        format!("{:.3}", commit.mean),
    ]);
    table.row([
        "full rebuild".to_string(),
        format!("{:.3}", full.p50),
        format!("{:.3}", full.p99),
        format!("{:.3}", full.mean),
    ]);
    table.row([
        "query under ingest".to_string(),
        format!("{:.4}", query.p50),
        format!("{:.4}", query.p99),
        format!("{:.4}", query.mean),
    ]);
    println!("{}", table.render());
    println!(
        "sustained ingest: {docs_per_sec:.0} docs/sec; freshness lag p99 {:.3} ms; \
         incremental is {speedup:.1}x faster per tick than a full rebuild",
        commit.p99
    );

    let json = render_json(
        &ctx,
        &w,
        docs_per_sec,
        &commit,
        &query,
        commit.mean,
        full.mean,
        speedup,
        incr.answered_at_every_tick,
    );
    let path = "BENCH_ingest.json";
    std::fs::write(path, &json).expect("write BENCH_ingest.json");
    println!("wrote {path}");

    assert!(
        incr.answered_at_every_tick,
        "queries must be answerable at every tick"
    );
    assert!(
        speedup >= 5.0,
        "incremental per-tick update must beat the full rebuild by >= 5x (got {speedup:.1}x)"
    );
}
