//! Figure 9 (Appendix B) — Weibull PDF curves for different shape/scale
//! parameters, the burst profiles used by the data generators.
//!
//! ```text
//! cargo run --release -p stb-bench --bin figure9
//! ```

use stb_bench::TableWriter;
use stb_datagen::Weibull;

fn main() {
    // Parameter combinations in the spirit of the paper's Figure 9: sharp
    // unexpected events, slow build-ups, and long-lived stories.
    let curves = [(1.5, 5.0), (2.0, 10.0), (3.0, 15.0), (5.0, 20.0)];
    let xs: Vec<f64> = (0..=40).map(|i| i as f64).collect();

    let mut table = TableWriter::new("Figure 9: Weibull PDF curves f(x; c, k)");
    table.header(
        std::iter::once("x".to_string())
            .chain(curves.iter().map(|(k, c)| format!("k={k}, c={c}")))
            .collect::<Vec<_>>(),
    );
    for &x in &xs {
        let mut row = vec![format!("{x:.0}")];
        for &(k, c) in &curves {
            row.push(format!("{:.4}", Weibull::new(k, c).pdf(x)));
        }
        table.row(row);
    }
    table.print();

    println!();
    println!("ASCII sketch (each row is one curve, scaled to its own peak):");
    for &(k, c) in &curves {
        let w = Weibull::new(k, c);
        let values: Vec<f64> = xs.iter().map(|&x| w.pdf(x)).collect();
        let max = values.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
        let line: String = values
            .iter()
            .map(|v| {
                let level = (v / max * 8.0).round() as usize;
                [" ", ".", ":", "-", "=", "+", "*", "#", "@"][level.min(8)]
            })
            .collect();
        println!("  k={k:<3} c={c:<4} |{line}|");
    }
}
