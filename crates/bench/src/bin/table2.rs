//! Table 2 — Spatiotemporal pattern retrieval on artificial data.
//!
//! Generates one distGen and one randGen dataset, injects ground-truth
//! patterns, and measures how well STLocal, STComb and the Base baseline
//! recover the injected stream sets (JaccardSim) and timeframes
//! (Start-Error / End-Error).
//!
//! ```text
//! cargo run --release -p stb-bench --bin table2 [-- --full]
//! ```

use stb_bench::experiments::{evaluate_retrieval, table2_configs, Approach};
use stb_bench::{ExperimentCtx, TableWriter};
use stb_datagen::PatternGenerator;

fn main() {
    let ctx = ExperimentCtx::from_args();
    let (dist_config, rand_config) = table2_configs(&ctx);
    eprintln!(
        "[table2] generating distGen and randGen datasets ({} streams, {} patterns, timeline {})...",
        dist_config.n_streams, dist_config.n_patterns, dist_config.timeline
    );
    let datasets = [
        ("distGen", PatternGenerator::generate(dist_config)),
        ("randGen", PatternGenerator::generate(rand_config)),
    ];

    let mut table = TableWriter::new("Table 2: Spatiotemporal pattern retrieval");
    table.header([
        "Approach",
        "Dataset",
        "JaccardSim",
        "Start-Error",
        "End-Error",
    ]);
    for approach in [Approach::STLocal, Approach::STComb, Approach::Base] {
        for (name, dataset) in &datasets {
            eprintln!("[table2] evaluating {} on {name}...", approach.name());
            let scores = evaluate_retrieval(dataset, approach);
            table.row([
                approach.name().to_string(),
                name.to_string(),
                format!("{:.2}", scores.jaccard),
                format!("{:.1}", scores.start_error),
                format!("{:.1}", scores.end_error),
            ]);
        }
    }
    table.print();
    println!();
    println!(
        "Expected shape (paper, Table 2): STLocal strongest on distGen, STComb strongest on \
         randGen, Base clearly behind both on every measure."
    );
}
