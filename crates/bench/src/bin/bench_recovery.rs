//! Crash-recovery harness: what durability costs while ingesting, and what
//! it buys at restart.
//!
//! Three arms over one synthetic bursty workload:
//!
//! * **baseline** — a plain in-memory `IngestPipeline` committing every
//!   tick (the cost floor).
//! * **durable** — the same plan with every commit write-ahead logged
//!   under `Durability::Buffered`, then checkpointed into a snapshot. The
//!   gap between this arm and the baseline is the WAL tax.
//! * **cold start** — `IngestPipeline::durable` on the checkpointed
//!   directory (`load_snapshot + replay_wal`) versus rebuilding from raw
//!   documents (collection build + mine every term + finalize), which is
//!   what a restart costs without the store.
//!
//! The recovered engine is cross-checked byte-identically against the
//! never-restarted pipeline, and the numbers land in a table plus
//! `BENCH_recovery.json`. Quick mode (the default, run by CI) uses a small
//! workload; `--full` scales it up, `--seed <n>` varies it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_bench::{measure_ms, ExperimentCtx, TableWriter};
use stb_core::{STLocal, STLocalConfig};
use stb_corpus::{CollectionBuilder, StreamId, TermId};
use stb_geo::GeoPoint;
use stb_ingest::{IngestConfig, IngestPipeline, MinerKind};
use stb_search::{BurstySearchEngine, EngineConfig, Query, SearchResult};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One tick's documents: (stream, term bag).
type TickDocs = Vec<(StreamId, HashMap<TermId, u32>)>;

struct Workload {
    n_streams: usize,
    timeline: usize,
    vocab: usize,
    ticks: Vec<TickDocs>,
    queries: Vec<Vec<TermId>>,
}

fn build_workload(ctx: &ExperimentCtx) -> Workload {
    // Slightly larger than the ingest harness's quick workload: the
    // rebuild arm's mining cost grows faster than the snapshot, so a
    // bigger corpus keeps the cold-start comparison out of timer noise.
    let (n_streams, timeline, vocab, docs_per_tick) = if ctx.full {
        (40, 90, 160, 30)
    } else {
        (16, 60, 120, 14)
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let burst_term = TermId(0);
    let burst_window = (timeline / 3)..(timeline / 2);
    let mut ticks = Vec::with_capacity(timeline);
    for t in 0..timeline {
        let mut docs: TickDocs = Vec::with_capacity(docs_per_tick);
        for _ in 0..docs_per_tick {
            let stream = StreamId(rng.gen_range(0..n_streams as u32));
            let mut counts = HashMap::new();
            for _ in 0..2 {
                let term = TermId(rng.gen_range(1..vocab as u32));
                *counts.entry(term).or_insert(0) += rng.gen_range(1..4u32);
            }
            if burst_window.contains(&t) && stream.index() < n_streams / 2 {
                *counts.entry(burst_term).or_insert(0) += rng.gen_range(15..30u32);
            }
            docs.push((stream, counts));
        }
        ticks.push(docs);
    }
    let queries = vec![
        vec![burst_term],
        vec![burst_term, TermId(1)],
        vec![TermId(2)],
    ];
    Workload {
        n_streams,
        timeline,
        vocab,
        ticks,
        queries,
    }
}

fn stream_geo(i: usize, n: usize) -> GeoPoint {
    if i < n / 2 {
        GeoPoint::new(i as f64 * 0.3, i as f64 * 0.2)
    } else {
        GeoPoint::new(60.0 + i as f64 * 0.3, 60.0)
    }
}

fn config(w: &Workload) -> IngestConfig {
    IngestConfig {
        timeline_capacity: w.timeline,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        engine: EngineConfig::default(),
        cache_capacity: 1024,
        ..IngestConfig::default()
    }
}

/// Stages and commits the whole plan; returns total commit wall-clock ms.
fn drive(pipeline: &mut IngestPipeline, w: &Workload) -> f64 {
    for s in 0..w.n_streams {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s, w.n_streams));
    }
    for i in 0..w.vocab {
        pipeline.intern(&format!("term{i}"));
    }
    // Wall-clock over the whole loop, not a sum of `receipt.commit_ms`:
    // the WAL append happens *before* the timed section inside the commit,
    // and it is exactly the cost this harness exists to measure.
    let ((), total_ms) = measure_ms(|| {
        for tick in &w.ticks {
            for (stream, counts) in tick {
                pipeline.stage_document(*stream, counts.clone());
            }
            pipeline.commit_tick();
        }
    });
    total_ms
}

fn top10(terms: &[TermId]) -> Query {
    Query::terms(terms.iter().copied()).top_k(10)
}

fn pipeline_results(p: &IngestPipeline, queries: &[Vec<TermId>]) -> Vec<Vec<SearchResult>> {
    let handle = p.search_handle();
    queries
        .iter()
        .map(|q| {
            handle
                .query(&top10(q))
                .map(|r| r.results)
                .unwrap_or_default()
        })
        .collect()
}

fn assert_identical(expect: &[Vec<SearchResult>], got: &[Vec<SearchResult>]) {
    for (e_list, g_list) in expect.iter().zip(got) {
        assert_eq!(e_list.len(), g_list.len(), "result counts diverge");
        for (e, g) in e_list.iter().zip(g_list) {
            assert_eq!(e.doc, g.doc, "documents diverge");
            assert_eq!(
                e.score.to_bits(),
                g.score.to_bits(),
                "scores diverge: {} vs {}",
                e.score,
                g.score
            );
        }
    }
}

/// The restart cost without the store: rebuild the collection from raw
/// documents, re-mine every term, finalize a fresh engine.
fn full_rebuild(w: &Workload) -> (f64, Vec<Vec<SearchResult>>) {
    let (engine, ms) = measure_ms(|| {
        let mut b = CollectionBuilder::new(w.timeline);
        for i in 0..w.vocab {
            b.dict_mut().intern(&format!("term{i}"));
        }
        for s in 0..w.n_streams {
            b.add_stream(&format!("s{s}"), stream_geo(s, w.n_streams));
        }
        for (ts, tick) in w.ticks.iter().enumerate() {
            for (stream, counts) in tick {
                b.add_document(*stream, ts, counts.clone());
            }
        }
        let collection = Arc::new(b.build());
        let mut engine = BurstySearchEngine::new(Arc::clone(&collection), EngineConfig::default());
        for term in collection.terms() {
            let (patterns, _) =
                STLocal::mine_collection(&collection, term, STLocalConfig::default());
            engine.set_patterns(term, &patterns);
        }
        engine.finalize_with_threads(1);
        engine
    });
    let results = w
        .queries
        .iter()
        .map(|q| {
            engine
                .query(&top10(q))
                .map(|r| r.results)
                .unwrap_or_default()
        })
        .collect();
    (ms, results)
}

fn store_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stb-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dir_file_len(dir: &Path, name: &str) -> u64 {
    std::fs::metadata(dir.join(name))
        .map(|m| m.len())
        .unwrap_or(0)
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    let w = build_workload(&ctx);
    println!(
        "crash-recovery harness (mode: {}, seed {}): {} streams, {} ticks, {} docs",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        w.n_streams,
        w.timeline,
        w.ticks.iter().map(Vec::len).sum::<usize>(),
    );

    // WAL tax: best-of-3 total commit time for each arm, so a scheduler
    // hiccup in either arm does not decide the comparison.
    const REPS: usize = 3;
    let mut baseline_ms = f64::INFINITY;
    for _ in 0..REPS {
        let mut p = IngestPipeline::new(config(&w));
        baseline_ms = baseline_ms.min(drive(&mut p, &w));
    }
    let mut durable_ms = f64::INFINITY;
    let mut expect_results = None;
    let mut wal_bytes = 0;
    let mut snapshot_bytes = 0;
    let dir = store_dir();
    for _ in 0..REPS {
        let _ = std::fs::remove_dir_all(&dir);
        let (mut p, _) = IngestPipeline::durable(config(&w), &dir).expect("open durable store");
        durable_ms = durable_ms.min(drive(&mut p, &w));
        assert!(p.durability_state().is_durable(), "WAL must stay healthy");
        wal_bytes = dir_file_len(&dir, "wal.stb");
        snapshot_bytes = p.checkpoint().expect("checkpoint");
        expect_results = Some(pipeline_results(&p, &w.queries));
    }
    let expect_results = expect_results.expect("durable arm ran");
    let overhead_pct = (durable_ms - baseline_ms) / baseline_ms * 100.0;

    // Cold start: recover from the checkpointed directory vs rebuilding
    // from raw documents — best-of-REPS on both arms, same as above.
    let mut recover_ms = f64::INFINITY;
    for _ in 0..REPS {
        let (recovered, ms) = measure_ms(|| {
            IngestPipeline::durable(config(&w), &dir).expect("recover from snapshot")
        });
        recover_ms = recover_ms.min(ms);
        let (pipeline, report) = recovered;
        assert!(
            report.snapshot_loaded,
            "cold start must come from the snapshot"
        );
        assert_eq!(pipeline.ticks_committed(), w.timeline);
        let recovered_results = pipeline_results(&pipeline, &w.queries);
        assert_identical(&expect_results, &recovered_results);
    }

    let mut rebuild_ms = f64::INFINITY;
    for _ in 0..REPS {
        let (ms, rebuild_results) = full_rebuild(&w);
        rebuild_ms = rebuild_ms.min(ms);
        assert_identical(&expect_results, &rebuild_results);
    }
    let speedup = rebuild_ms / recover_ms.max(1e-9);

    let mut table = TableWriter::new("durability: cost and cold-start payoff (ms)");
    table.header(["arm", "total ms"]);
    table.row(["baseline ingest".to_string(), format!("{baseline_ms:.1}")]);
    table.row([
        format!("durable ingest (+{overhead_pct:.1}% WAL tax)"),
        format!("{durable_ms:.1}"),
    ]);
    table.row([
        "cold start from snapshot".to_string(),
        format!("{recover_ms:.1}"),
    ]);
    table.row([
        "full rebuild + re-mine".to_string(),
        format!("{rebuild_ms:.1}"),
    ]);
    println!("{}", table.render());
    println!(
        "snapshot {snapshot_bytes} bytes, WAL before checkpoint {wal_bytes} bytes; \
         cold start from snapshot is {speedup:.1}x faster than a full rebuild"
    );

    let json = format!(
        "{{\n  \"bench\": \"recovery\",\n  \"mode\": \"{}\",\n  \"seed\": {},\n  \
         \"workload\": {{\"streams\": {}, \"ticks\": {}, \"vocab\": {}, \"docs\": {}}},\n  \
         \"baseline_ingest_ms\": {:.3},\n  \"durable_ingest_ms\": {:.3},\n  \
         \"wal_overhead_pct\": {:.2},\n  \"snapshot_bytes\": {},\n  \
         \"cold_start_ms\": {:.3},\n  \"full_rebuild_ms\": {:.3},\n  \
         \"speedup_snapshot_vs_rebuild\": {:.1}\n}}\n",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        w.n_streams,
        w.timeline,
        w.vocab,
        w.ticks.iter().map(Vec::len).sum::<usize>(),
        baseline_ms,
        durable_ms,
        overhead_pct,
        snapshot_bytes,
        recover_ms,
        rebuild_ms,
        speedup,
    );
    let path = "BENCH_recovery.json";
    std::fs::write(path, &json).expect("write BENCH_recovery.json");
    println!("wrote {path}");

    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        speedup >= 5.0,
        "cold start from snapshot must beat a full rebuild by >= 5x (got {speedup:.1}x)"
    );
    assert!(
        overhead_pct <= 15.0,
        "buffered WAL appends must cost <= 15% of ingest throughput (got {overhead_pct:.1}%)"
    );
}
