//! Observability-overhead harness: what instrumenting the query hot path
//! costs, gated.
//!
//! Two identical ingest pipelines serve the same query mix over the same
//! committed corpus:
//!
//! * **off** — no [`PipelineObs`] attached. The read path pays one atomic
//!   load and an untaken branch per query (the `OnceLock` attachment
//!   check) — this is the "compiled-out" arm.
//! * **on** — a full [`PipelineObs`] attached: every query records into
//!   the shared registry's counters and latency histogram, trace sampling
//!   and the slow-query log armed at their defaults.
//!
//! The arms are measured in interleaved rounds (on/off order alternating,
//! so thermal or scheduler drift hits both equally) and compared
//! best-of-rounds: the minimum per-round p99 is each arm's noise floor.
//! CI runs quick mode and enforces the tentpole overhead budget —
//! instrumented p99 within 10% of un-instrumented (plus a small absolute
//! epsilon, since sub-microsecond reads quantize coarsely).
//!
//! Latencies are measured with the registry's own log-linear
//! [`LatencyHistogram`], and both arms' p50/p90/p99/p999 land in
//! `BENCH_obs.json`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_bench::{ExperimentCtx, TableWriter};
use stb_core::STLocalConfig;
use stb_corpus::{StreamId, TermId};
use stb_geo::GeoPoint;
use stb_ingest::{
    IngestConfig, IngestPipeline, MinerKind, PipelineObs, PipelineObsConfig, SearchHandle,
};
use stb_obs::{HistogramSnapshot, LatencyHistogram};
use stb_search::{EngineConfig, Query};
use std::collections::HashMap;

use std::time::Instant;

/// One tick's documents: (stream, term bag).
type TickDocs = Vec<(StreamId, HashMap<TermId, u32>)>;

struct Workload {
    n_streams: usize,
    timeline: usize,
    vocab: usize,
    ticks: Vec<TickDocs>,
    queries: Vec<Query>,
    /// Interleaved measurement rounds per arm.
    rounds: usize,
    /// Query-mix repetitions per round.
    reps_per_round: usize,
}

fn build_workload(ctx: &ExperimentCtx) -> Workload {
    let (n_streams, timeline, vocab, docs_per_tick, rounds, reps) = if ctx.full {
        (24, 60, 300, 20, 9, 400)
    } else {
        (12, 30, 120, 10, 7, 150)
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let mut ticks = Vec::with_capacity(timeline);
    for t in 0..timeline {
        let hot = TermId((t % 4) as u32);
        let mut docs: TickDocs = Vec::with_capacity(docs_per_tick);
        for _ in 0..docs_per_tick {
            let stream = StreamId(rng.gen_range(0..n_streams as u32));
            let mut counts = HashMap::new();
            for _ in 0..2 {
                let term = TermId(rng.gen_range(4..vocab as u32));
                *counts.entry(term).or_insert(0) += rng.gen_range(1..4u32);
            }
            if stream.index() < n_streams / 2 {
                *counts.entry(hot).or_insert(0) += rng.gen_range(8..20u32);
            }
            docs.push((stream, counts));
        }
        ticks.push(docs);
    }
    // A mix of cache-hit repeats, multi-term gathers, and a filtered
    // path — the same shapes the serving harness uses. Each rep appends a
    // rotating time-windowed probe (built in `round`) that keeps missing
    // the result cache, so the measured tail is real posting-scan work.
    let queries = vec![
        Query::terms([TermId(0)]).top_k(10),
        Query::terms([TermId(1), TermId(2)]).top_k(10),
        Query::terms([TermId(3)]).top_k(5),
        Query::terms([TermId(0), TermId(2)])
            .top_k(10)
            .time_window(0..=timeline),
    ];
    Workload {
        n_streams,
        timeline,
        vocab,
        ticks,
        queries,
        rounds,
        reps_per_round: reps,
    }
}

fn stream_geo(i: usize, n: usize) -> GeoPoint {
    if i < n / 2 {
        GeoPoint::new(i as f64 * 0.3, i as f64 * 0.2)
    } else {
        GeoPoint::new(60.0 + i as f64 * 0.3, 60.0)
    }
}

/// Builds a pipeline, commits the whole workload, and returns it with its
/// serving handle. Both arms call this with identical inputs, so the two
/// engines answer bit-identically; only the instrumentation differs.
fn build_arm(w: &Workload) -> (IngestPipeline, SearchHandle) {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: w.timeline,
        miner: MinerKind::STLocal(STLocalConfig::default()),
        engine: EngineConfig::default(),
        // Small on purpose: the rotating windowed probe cycles through
        // more distinct keys than this, so it keeps doing cold work.
        cache_capacity: 64,
        ..IngestConfig::default()
    });
    for s in 0..w.n_streams {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s, w.n_streams));
    }
    for i in 0..w.vocab {
        pipeline.intern(&format!("term{i}"));
    }
    for tick in &w.ticks {
        for (stream, counts) in tick {
            pipeline.stage_document(*stream, counts.clone());
        }
        pipeline.commit_tick();
    }
    let handle = pipeline.search_handle();
    (pipeline, handle)
}

/// One measurement round: the query mix `reps` times, each query timed
/// individually into a fresh histogram; returns the round's snapshot.
///
/// `uniq` is a per-arm sequence counter: every rep issues one additional
/// time-windowed probe whose window is derived from it, cycling through
/// more distinct canonical keys than the result cache holds. Both arms
/// advance their own counter through the identical sequence, so they do
/// the identical cold work — which is what puts the measured p99 on the
/// posting-scan path rather than on sub-microsecond cached lookups.
fn round(handle: &SearchHandle, w: &Workload, uniq: &mut usize) -> HistogramSnapshot {
    let hist = LatencyHistogram::new();
    let span = (w.timeline / 2).max(1);
    for _ in 0..w.reps_per_round {
        for query in &w.queries {
            let start = Instant::now();
            let response = handle.query(query);
            hist.record_duration(start.elapsed());
            assert!(response.is_ok(), "bench queries must succeed");
        }
        let lo = *uniq % span;
        let hi = span + (*uniq / span) % span;
        let first = (*uniq % 4) as u32;
        let probe = Query::terms([TermId(first), TermId((first + 1) % 4), TermId(4)])
            .top_k(10)
            .time_window(lo..=hi);
        *uniq += 1;
        let start = Instant::now();
        let response = handle.query(&probe);
        hist.record_duration(start.elapsed());
        assert!(response.is_ok(), "bench probes must succeed");
    }
    hist.snapshot()
}

/// Keeps the round whose p99 is lowest: each arm's measured noise floor.
fn keep_best(best: &mut Option<HistogramSnapshot>, candidate: HistogramSnapshot) {
    let better = match best {
        Some(b) => candidate.quantile(0.99) < b.quantile(0.99),
        None => true,
    };
    if better {
        *best = Some(candidate);
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    let w = build_workload(&ctx);
    println!(
        "observability-overhead harness (mode: {}, seed {}): {} streams, {} ticks, \
         vocab {}, {} rounds x {} reps x {} queries per arm",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        w.n_streams,
        w.timeline,
        w.vocab,
        w.rounds,
        w.reps_per_round,
        w.queries.len(),
    );

    // The un-instrumented arm: obs never attached, so queries pay only the
    // OnceLock load + branch.
    let (_off_pipeline, off_handle) = build_arm(&w);

    // The instrumented arm: full registry, histogram, trace sampling, and
    // slow-query log armed.
    let (mut on_pipeline, on_handle) = build_arm(&w);
    let obs = PipelineObs::new(&PipelineObsConfig::default());
    on_pipeline.attach_obs(&obs);

    // Per-arm probe sequence counters: both arms walk the identical
    // sequence, warmup included.
    let mut uniq_off = 0usize;
    let mut uniq_on = 0usize;

    // Warmup (discarded): fault in caches and branch predictors for both.
    round(&off_handle, &w, &mut uniq_off);
    round(&on_handle, &w, &mut uniq_on);

    let mut best_off: Option<HistogramSnapshot> = None;
    let mut best_on: Option<HistogramSnapshot> = None;
    for r in 0..w.rounds {
        // Alternate the order so drift (thermal, scheduler) cancels.
        if r % 2 == 0 {
            keep_best(&mut best_off, round(&off_handle, &w, &mut uniq_off));
            keep_best(&mut best_on, round(&on_handle, &w, &mut uniq_on));
        } else {
            keep_best(&mut best_on, round(&on_handle, &w, &mut uniq_on));
            keep_best(&mut best_off, round(&off_handle, &w, &mut uniq_off));
        }
    }
    let off = best_off.expect("off arm measured");
    let on = best_on.expect("on arm measured");

    // The instrumented arm must actually have instrumented: the registry's
    // own histogram saw every query the `on` rounds issued.
    let snap = obs.snapshot();
    let recorded = snap
        .histogram("search_query_ns")
        .map(HistogramSnapshot::count)
        .unwrap_or(0);
    assert!(
        recorded >= on.count(),
        "registry histogram must see every instrumented query \
         ({recorded} recorded < {} measured)",
        on.count()
    );

    let p99_off = off.quantile(0.99);
    let p99_on = on.quantile(0.99);
    // The tentpole budget: instrumented p99 within 10% of compiled-out,
    // plus a small absolute epsilon because sub-microsecond cache hits
    // quantize coarsely (one histogram bucket can exceed 10%).
    const EPSILON_NS: u64 = 2_000;
    let bound = p99_off + p99_off / 10 + EPSILON_NS;
    let overhead_pct = (p99_on as f64 / p99_off.max(1) as f64 - 1.0) * 100.0;

    let mut table = TableWriter::new("query latency: obs attached vs not (us)");
    table.header(["arm", "p50", "p90", "p99", "p999"]);
    for (label, s) in [("obs off", &off), ("obs on", &on)] {
        table.row([
            label.to_string(),
            format!("{:.2}", us(s.quantile(0.50))),
            format!("{:.2}", us(s.quantile(0.90))),
            format!("{:.2}", us(s.quantile(0.99))),
            format!("{:.2}", us(s.quantile(0.999))),
        ]);
    }
    println!("{}", table.render());
    println!(
        "instrumentation overhead at p99: {overhead_pct:+.1}% \
         (gate: on <= off * 1.10 + {EPSILON_NS} ns); registry recorded {recorded} queries"
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"mode\": \"{}\",\n  \"seed\": {},\n  \
         \"workload\": {{\"streams\": {}, \"ticks\": {}, \"vocab\": {}, \
         \"queries_per_arm\": {}}},\n  \
         \"off_us\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3}}},\n  \
         \"on_us\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3}}},\n  \
         \"p99_overhead_pct\": {:.2},\n  \"gate\": \"p99_on <= p99_off * 1.10 + {} ns\",\n  \
         \"registry_queries_recorded\": {}\n}}\n",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        w.n_streams,
        w.timeline,
        w.vocab,
        on.count(),
        us(off.quantile(0.50)),
        us(off.quantile(0.90)),
        us(off.quantile(0.99)),
        us(off.quantile(0.999)),
        us(on.quantile(0.50)),
        us(on.quantile(0.90)),
        us(on.quantile(0.99)),
        us(on.quantile(0.999)),
        overhead_pct,
        EPSILON_NS,
        recorded,
    );
    let path = "BENCH_obs.json";
    std::fs::write(path, &json).expect("write BENCH_obs.json");
    println!("wrote {path}");

    assert!(
        p99_on <= bound,
        "instrumented query p99 must stay within 10% of the un-instrumented \
         path ({} ns > {} ns bound)",
        p99_on,
        bound
    );
}
