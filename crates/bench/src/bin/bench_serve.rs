//! Serving-tier harness: what the lock-free sharded read path buys under
//! concurrent ingest.
//!
//! One mining pass precomputes a stream of tick receipts (snapshot +
//! pattern deltas); both arms then replay the *identical* publication work
//! while readers hammer the respective read path, so the measured window
//! contains exactly the thing the two designs disagree about — how state
//! is published to readers:
//!
//! * **rwlock baseline** — the pre-sharding serving design, reconstructed:
//!   one `BurstySearchEngine` behind an `Arc<RwLock<_>>`, every receipt
//!   applied under the write lock, a single reader thread querying through
//!   the read lock (Rust's `RwLock` is write-preferring, so commits stall
//!   the reader exactly as the old `SearchHandle` did).
//! * **sharded** — a [`ShardedEngine`] publishing epoch-swapped
//!   generational snapshots to N reader threads through its
//!   [`stb_search::ServingFront`]; no locks anywhere on the read path.
//!
//! Reported: aggregate reader throughput under ingest for both arms (the
//! speedup is the headline), plus the sharded arm's read-latency p99 idle
//! vs under-ingest — the "ingest must not wreck tail latency" guarantee CI
//! enforces in quick mode. Full mode (`--full`) runs 32 readers and
//! additionally asserts the >= 8x aggregate-throughput gate — on a
//! multi-core host; on a single hardware thread both arms are
//! scheduler-bound (the fair scheduler hands the baseline's reader its
//! timeslice whether or not a write lock would have blocked it), so the
//! ratio is reported but the gate is skipped. Results land in a table plus
//! `BENCH_serve.json` (with the core count, so numbers are interpretable).
//!
//! The workload deliberately exercises the old design's worst case:
//! tf-idf relevance over a wide pre-populated vocabulary. Under tf-idf
//! every arriving document stales every posting list, so each commit
//! re-scores the whole index — all of it under the baseline's write lock,
//! none of it blocking the sharded tier's readers. The live ticks burst a
//! handful of hot terms, keeping the dirty sets (and the mining, which
//! happens outside the measured window anyway) small.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_bench::{measure_ms, ExperimentCtx, TableWriter};
use stb_corpus::{Collection, StreamId, TermId};
use stb_geo::{GeoPoint, Rect};
use stb_ingest::{IngestConfig, IngestPipeline, MinerKind, PatternDelta, TickReceipt};
use stb_obs::{HistogramSnapshot, LatencyHistogram};
use stb_search::{BurstySearchEngine, EngineConfig, Query, Relevance, ShardedEngine};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use stb_core::STLocalConfig;

/// One tick's documents: (stream, term bag).
type TickDocs = Vec<(StreamId, HashMap<TermId, u32>)>;

/// Everything an arm needs to replay one committed tick: the snapshot the
/// pipeline published and the receipt describing what changed.
struct ReplayTick {
    collection: Arc<Collection>,
    receipt: TickReceipt,
}

struct Workload {
    n_streams: usize,
    vocab: usize,
    populate_ticks: usize,
    live_ticks: usize,
    engine: EngineConfig,
    queries: Vec<Query>,
    n_readers: usize,
    n_shards: usize,
    /// Idle-phase latency samples per reader.
    idle_samples: usize,
}

/// Terms the live phase bursts (and the serving mix queries). Everything
/// above this range is populate-phase background vocabulary.
const HOT_TERMS: u32 = 8;

fn build_workload(ctx: &ExperimentCtx) -> (Workload, Vec<TickDocs>) {
    let (n_streams, vocab, populate_ticks, live_ticks, n_readers, idle_samples) = if ctx.full {
        (16, 1500, 50, 150, 32, 400)
    } else {
        (8, 400, 25, 50, 4, 200)
    };
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let mut ticks = Vec::with_capacity(populate_ticks + live_ticks);
    // Populate phase: broad background traffic over the whole vocabulary,
    // building up the posting lists every tf-idf commit must re-score.
    let populate_docs = if ctx.full { 40 } else { 20 };
    for _ in 0..populate_ticks {
        let mut docs: TickDocs = Vec::with_capacity(populate_docs);
        for _ in 0..populate_docs {
            let stream = StreamId(rng.gen_range(0..n_streams as u32));
            let mut counts = HashMap::new();
            for _ in 0..3 {
                let term = TermId(rng.gen_range(HOT_TERMS..vocab as u32));
                *counts.entry(term).or_insert(0) += rng.gen_range(1..4u32);
            }
            docs.push((stream, counts));
        }
        ticks.push(docs);
    }
    // Live phase: a rotating burst over the hot terms only, so the dirty
    // set stays small while publication still touches every posting list.
    let live_docs = if ctx.full { 10 } else { 8 };
    for t in 0..live_ticks {
        let hot = TermId((t % 4) as u32);
        let mut docs: TickDocs = Vec::with_capacity(live_docs);
        for _ in 0..live_docs {
            let stream = StreamId(rng.gen_range(0..n_streams as u32));
            let mut counts = HashMap::new();
            let quiet = TermId(rng.gen_range(4..HOT_TERMS));
            counts.insert(quiet, 1);
            if stream.index() < n_streams / 2 {
                *counts.entry(hot).or_insert(0) += rng.gen_range(10..25u32);
            }
            docs.push((stream, counts));
        }
        ticks.push(docs);
    }
    // A serving mix over the hot terms: under tf-idf every commit
    // invalidates all of these, so under-ingest reads do real posting-scan
    // work instead of coasting on the result cache. Multi-term queries
    // exercise the scatter-gather path, the filtered ones the cold path.
    let horizon = populate_ticks + live_ticks;
    let queries = vec![
        Query::terms([TermId(0)]).top_k(10),
        Query::terms([TermId(1), TermId(2)]).top_k(10),
        Query::terms([TermId(5)]).top_k(10),
        Query::terms([TermId(0), TermId(6), TermId(7)]).top_k(5),
        Query::terms([TermId(3)]).top_k(10).time_window(0..=horizon),
        Query::terms([TermId(2)])
            .top_k(10)
            .region(Rect::new(-1.0, -1.0, 4.0, 4.0)),
    ];
    let workload = Workload {
        n_streams,
        vocab,
        populate_ticks,
        live_ticks,
        engine: EngineConfig::builder().relevance(Relevance::TfIdf).build(),
        queries,
        n_readers,
        n_shards: 8,
        idle_samples,
    };
    (workload, ticks)
}

fn stream_geo(i: usize, n: usize) -> GeoPoint {
    if i < n / 2 {
        GeoPoint::new(i as f64 * 0.3, i as f64 * 0.2)
    } else {
        GeoPoint::new(60.0 + i as f64 * 0.3, 60.0)
    }
}

/// Runs the mining pass once: drives the full tick plan through a live
/// pipeline and captures, per tick, the published snapshot + receipt both
/// arms will replay. Returns the pre-stream initial collection the replay
/// engines must start from, plus the captured ticks.
fn mine_receipts(w: &Workload, plan: &[TickDocs]) -> (Arc<Collection>, Vec<ReplayTick>) {
    let mut pipeline = IngestPipeline::new(IngestConfig {
        timeline_capacity: plan.len(),
        miner: MinerKind::STLocal(STLocalConfig::default()),
        engine: w.engine,
        cache_capacity: 0,
        ..IngestConfig::default()
    });
    let initial = pipeline.collection();
    for s in 0..w.n_streams {
        pipeline.add_stream(&format!("s{s}"), stream_geo(s, w.n_streams));
    }
    for i in 0..w.vocab {
        pipeline.intern(&format!("term{i}"));
    }
    let ticks = plan
        .iter()
        .map(|tick| {
            for (stream, counts) in tick {
                pipeline.stage_document(*stream, counts.clone());
            }
            let receipt = pipeline.commit_tick();
            ReplayTick {
                collection: pipeline.collection(),
                receipt,
            }
        })
        .collect();
    (initial, ticks)
}

/// A histogram quantile in microseconds (recorded in nanoseconds).
fn quantile_us(h: &HistogramSnapshot, q: f64) -> f64 {
    assert!(h.count() > 0, "latency phase recorded no samples");
    h.quantile(q) as f64 / 1000.0
}

/// Applies one replayed tick to a plain engine: snapshot swap, per-term
/// deltas, and — under tf-idf — a refresh of every posting list. This is
/// exactly the old pipeline's under-write-lock publish section.
fn apply_tick(engine: &mut BurstySearchEngine, tick: &ReplayTick) {
    engine.update_collection(Arc::clone(&tick.collection), &tick.receipt.new_docs);
    for delta in &tick.receipt.deltas {
        match delta {
            PatternDelta::Regional { term, patterns } => engine.set_patterns(*term, patterns),
            PatternDelta::Combinatorial { term, patterns } => engine.set_patterns(*term, patterns),
        }
    }
    if engine.config().relevance == Relevance::TfIdf && !tick.receipt.new_docs.is_empty() {
        for term in tick.collection.terms() {
            engine.refresh_term(term);
        }
    }
}

/// Same publication work against the sharded engine, ending in one atomic
/// generation publish.
fn apply_tick_sharded(engine: &mut ShardedEngine, tick: &ReplayTick) {
    engine.update_collection(Arc::clone(&tick.collection), &tick.receipt.new_docs);
    for delta in &tick.receipt.deltas {
        match delta {
            PatternDelta::Regional { term, patterns } => engine.set_patterns(*term, patterns),
            PatternDelta::Combinatorial { term, patterns } => engine.set_patterns(*term, patterns),
        }
    }
    if engine.engine().config().relevance == Relevance::TfIdf && !tick.receipt.new_docs.is_empty() {
        for term in tick.collection.terms() {
            engine.refresh_term(term);
        }
    }
    engine.publish();
}

/// The pre-sharding design: every receipt applied to a shared engine under
/// a write lock, one reader querying through the read lock. Returns
/// (aggregate queries/s under ingest, ingest wall ms).
fn rwlock_arm(
    w: &Workload,
    initial: &Arc<Collection>,
    populate: &[ReplayTick],
    live: &[ReplayTick],
) -> (f64, f64) {
    let mut engine = BurstySearchEngine::new(Arc::clone(initial), w.engine);
    engine.set_cache_capacity(1024);
    engine.finalize_with_threads(1);
    for tick in populate {
        apply_tick(&mut engine, tick);
    }
    let shared = Arc::new(RwLock::new(engine));

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let engine = Arc::clone(&shared);
        let queries = &w.queries;
        let done_ref = &done;
        let reader = scope.spawn(move || {
            let mut served = 0u64;
            let mut i = 0usize;
            loop {
                let finished = done_ref.load(Ordering::Relaxed);
                let _ = engine.read().unwrap().query(&queries[i % queries.len()]);
                served += 1;
                i += 1;
                if finished {
                    return served;
                }
            }
        });
        let ((), ingest_ms) = measure_ms(|| {
            for tick in live {
                apply_tick(&mut shared.write().unwrap(), tick);
            }
        });
        done.store(true, Ordering::Relaxed);
        let served = reader.join().expect("rwlock reader");
        (served as f64 / (ingest_ms / 1000.0), ingest_ms)
    })
}

/// The sharded lock-free serving tier. Returns (aggregate queries/s under
/// ingest, ingest wall ms, idle latency histogram, under-ingest latency
/// histogram). Each reader records into its own `stb-obs` log-linear
/// latency histogram (nanoseconds); the per-reader snapshots are merged —
/// the same mergeable-readout path the serving tier exports.
fn sharded_arm(
    w: &Workload,
    initial: &Arc<Collection>,
    populate: &[ReplayTick],
    live: &[ReplayTick],
) -> (f64, f64, HistogramSnapshot, HistogramSnapshot) {
    let mut engine = ShardedEngine::new(Arc::clone(initial), w.engine, w.n_shards, 1024);
    engine.finalize_with_threads(1);
    engine.publish();
    for tick in populate {
        apply_tick_sharded(&mut engine, tick);
    }
    let front = engine.front();

    // Idle phase: tail latency with no ingest running.
    let idle = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..w.n_readers)
            .map(|r| {
                let front = Arc::clone(&front);
                let queries = &w.queries;
                scope.spawn(move || {
                    let lat = LatencyHistogram::new();
                    for i in 0..w.idle_samples {
                        let q = &queries[(i + r) % queries.len()];
                        let start = Instant::now();
                        let _ = front.query(q);
                        lat.record_duration(start.elapsed());
                    }
                    lat.snapshot()
                })
            })
            .collect();
        let mut merged = HistogramSnapshot::empty();
        for r in readers {
            merged.merge(&r.join().expect("idle reader"));
        }
        merged
    });

    // Live phase: N readers hammer the front while the writer publishes.
    let done = AtomicBool::new(false);
    let (served, under, ingest_ms) = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..w.n_readers)
            .map(|r| {
                let front = Arc::clone(&front);
                let queries = &w.queries;
                let done_ref = &done;
                scope.spawn(move || {
                    let mut served = 0u64;
                    let lat = LatencyHistogram::new();
                    let mut i = r;
                    loop {
                        let finished = done_ref.load(Ordering::Relaxed);
                        let q = &queries[i % queries.len()];
                        let start = Instant::now();
                        let _ = front.query(q);
                        lat.record_duration(start.elapsed());
                        served += 1;
                        i += 1;
                        if finished {
                            return (served, lat.snapshot());
                        }
                    }
                })
            })
            .collect();
        let ((), ingest_ms) = measure_ms(|| {
            for tick in live {
                apply_tick_sharded(&mut engine, tick);
            }
        });
        done.store(true, Ordering::Relaxed);
        let mut served = 0u64;
        let mut under = HistogramSnapshot::empty();
        for reader in readers {
            let (s, lat) = reader.join().expect("sharded reader");
            served += s;
            under.merge(&lat);
        }
        (served, under, ingest_ms)
    });
    let qps = served as f64 / (ingest_ms / 1000.0);
    (qps, ingest_ms, idle, under)
}

fn main() {
    let ctx = ExperimentCtx::from_args();
    let (w, plan) = build_workload(&ctx);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "serving-tier harness (mode: {}, seed {}, {} cores): {} streams, \
         {} + {} ticks, vocab {}, {} readers (sharded arm)",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        cores,
        w.n_streams,
        w.populate_ticks,
        w.live_ticks,
        w.vocab,
        w.n_readers,
    );

    let (initial, ticks) = mine_receipts(&w, &plan);
    let populate = &ticks[..w.populate_ticks];
    let live = &ticks[w.populate_ticks..];

    let (rwlock_qps, rwlock_ingest_ms) = rwlock_arm(&w, &initial, populate, live);
    let (sharded_qps, sharded_ingest_ms, idle, under) = sharded_arm(&w, &initial, populate, live);
    let speedup = sharded_qps / rwlock_qps.max(1e-9);
    let (idle_p50, idle_p99) = (quantile_us(&idle, 0.50), quantile_us(&idle, 0.99));
    let (ingest_p50, ingest_p99) = (quantile_us(&under, 0.50), quantile_us(&under, 0.99));
    let p99_ratio = ingest_p99 / idle_p99.max(1e-9);

    // The >= 8x throughput gate needs real reader parallelism (full mode,
    // multi-core); when it cannot arm, say so explicitly — a sub-1x
    // "speedup" on a single hardware thread is scheduler fairness, not a
    // regression — and record the verdict in the JSON for the harness.
    let gate = if !ctx.full {
        "skipped (quick)"
    } else if cores <= 1 {
        "skipped (1 core)"
    } else {
        "enforced"
    };

    let mut table = TableWriter::new("serving under concurrent ingest");
    table.header(["arm", "readers", "queries/s", "ingest ms"]);
    table.row([
        "rwlock baseline".to_string(),
        "1".to_string(),
        format!("{rwlock_qps:.0}"),
        format!("{rwlock_ingest_ms:.1}"),
    ]);
    table.row([
        format!("sharded lock-free ({:.1}x)", speedup),
        w.n_readers.to_string(),
        format!("{sharded_qps:.0}"),
        format!("{sharded_ingest_ms:.1}"),
    ]);
    println!("{}", table.render());
    println!(
        "sharded read latency (histogram): idle p50 {idle_p50:.0} / p99 {idle_p99:.0} us, \
         under ingest p50 {ingest_p50:.0} / p99 {ingest_p99:.0} us ({p99_ratio:.2}x)"
    );
    match gate {
        "skipped (quick)" => println!(
            "throughput gate: skipped (quick mode) — the >= 8x gate only arms with \
             --full's 32 readers (measured {speedup:.1}x)"
        ),
        "skipped (1 core)" => println!(
            "throughput gate: skipped (1 core) — on a single hardware thread the fair \
             scheduler caps both arms near their CPU share, so the measured {speedup:.1}x \
             says nothing about the lock-free tier"
        ),
        _ => println!("throughput gate: enforced (>= 8x, measured {speedup:.1}x)"),
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{}\",\n  \"seed\": {},\n  \
         \"cores\": {},\n  \"readers\": {},\n  \"shards\": {},\n  \
         \"workload\": {{\"streams\": {}, \"populate_ticks\": {}, \"live_ticks\": {}, \
         \"vocab\": {}}},\n  \
         \"rwlock_qps\": {:.1},\n  \"sharded_qps\": {:.1},\n  \"speedup\": {:.2},\n  \
         \"gate\": \"{}\",\n  \
         \"idle_p50_us\": {:.1},\n  \"idle_p99_us\": {:.1},\n  \
         \"ingest_p50_us\": {:.1},\n  \"ingest_p99_us\": {:.1},\n  \"p99_ratio\": {:.3}\n}}\n",
        if ctx.full { "full" } else { "quick" },
        ctx.seed,
        cores,
        w.n_readers,
        w.n_shards,
        w.n_streams,
        w.populate_ticks,
        w.live_ticks,
        w.vocab,
        rwlock_qps,
        sharded_qps,
        speedup,
        gate,
        idle_p50,
        idle_p99,
        ingest_p50,
        ingest_p99,
        p99_ratio,
    );
    let path = "BENCH_serve.json";
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");

    // Tail-latency gate (both modes): ingest must not wreck read p99. The
    // absolute floor absorbs scheduler noise on small CI machines, where an
    // idle p99 of a few microseconds makes the ratio meaningless.
    let p99_floor_us = 5_000.0;
    assert!(
        ingest_p99 <= (3.0 * idle_p99).max(p99_floor_us),
        "read p99 under ingest must stay within 3x of idle p99 \
         (idle {idle_p99:.0} us, under ingest {ingest_p99:.0} us)"
    );
    // Throughput gate (full mode, 32 readers): the lock-free tier must
    // beat the single-reader RwLock baseline by >= 8x aggregate. The gate
    // needs real reader parallelism — on a single hardware thread the fair
    // scheduler hands the baseline's reader its timeslice whether or not
    // the write lock would have blocked it, capping the ratio near the
    // reader CPU-share ratio (~2x) for both designs — so it only arms on
    // multi-core hosts (the `gate` field above says which case this run
    // was).
    if gate == "enforced" {
        assert!(
            speedup >= 8.0,
            "sharded serving must yield >= 8x the RwLock baseline's aggregate \
             throughput (got {speedup:.1}x)"
        );
    }
}
