//! Table 3 — Precision in the top-10 documents of the bursty-document
//! search engine, for TB (temporal-only), STLocal and STComb patterns,
//! plus the pairwise overlap of their top-10 sets (Section 6.3).
//!
//! ```text
//! cargo run --release -p stb-bench --bin table3 [-- --full]
//! ```

use stb_bench::experiments::{evaluate_search, topix_corpus};
use stb_bench::{ExperimentCtx, TableWriter};

fn main() {
    let ctx = ExperimentCtx::from_args();
    eprintln!("[table3] generating synthetic Topix corpus...");
    let corpus = topix_corpus(&ctx);
    eprintln!("[table3] mining patterns and retrieving top-10 documents per query...");
    let (evaluations, overlaps) = evaluate_search(&corpus, 10);

    let mut table = TableWriter::new("Table 3: Precision in top-10 documents");
    table.header(["#", "Query", "TB", "STLocal", "STComb"]);
    for e in &evaluations {
        table.row([
            e.event.id.to_string(),
            e.event.query.to_string(),
            format!("{:.1}", e.tb_precision),
            format!("{:.1}", e.stlocal_precision),
            format!("{:.1}", e.stcomb_precision),
        ]);
    }
    table.print();

    let avg = |f: &dyn Fn(&stb_bench::experiments::SearchEvaluation) -> f64| {
        evaluations.iter().map(f).sum::<f64>() / evaluations.len().max(1) as f64
    };
    println!();
    println!(
        "Average precision:  TB {:.2}   STLocal {:.2}   STComb {:.2}",
        avg(&|e| e.tb_precision),
        avg(&|e| e.stlocal_precision),
        avg(&|e| e.stcomb_precision)
    );
    println!(
        "Top-10 set overlap: STComb-TB {:.2}   STComb-STLocal {:.2}   TB-STLocal {:.2}",
        overlaps.stcomb_tb, overlaps.stcomb_stlocal, overlaps.tb_stlocal
    );
}
