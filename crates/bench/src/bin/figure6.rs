//! Figure 6 — Number of open spatiotemporal windows per term over the
//! timeline, compared against the worst-case upper bound `n * i`.
//!
//! ```text
//! cargo run --release -p stb-bench --bin figure6 [-- --full]
//! ```

use stb_bench::experiments::{sample_terms, streaming_statistics, topix_corpus};
use stb_bench::{ExperimentCtx, TableWriter};

fn main() {
    let ctx = ExperimentCtx::from_args();
    eprintln!("[figure6] generating synthetic Topix corpus...");
    let corpus = topix_corpus(&ctx);
    let n_background = if ctx.full { 300 } else { 80 };
    let terms = sample_terms(&corpus, n_background);
    eprintln!("[figure6] streaming {} terms with STLocal...", terms.len());
    let stats = streaming_statistics(&corpus, &terms);

    let mut table =
        TableWriter::new("Figure 6: Open spatiotemporal windows per term (average) vs upper bound");
    table.header(["Timestamp", "Upper bound", "STLocal (avg open windows)"]);
    for (i, (&ub, &open)) in stats
        .upper_bound
        .iter()
        .zip(&stats.avg_open_windows)
        .enumerate()
    {
        table.row([i.to_string(), format!("{ub:.0}"), format!("{open:.2}")]);
    }
    table.print();

    let peak = stats
        .avg_open_windows
        .iter()
        .copied()
        .fold(0.0f64, f64::max);
    let worst = stats.upper_bound.last().copied().unwrap_or(0.0);
    println!();
    println!(
        "Peak average open windows: {peak:.1} (worst-case bound at the last timestamp: {worst:.0}; \
         the paper reports a peak around 10 against a bound of 8,688)."
    );
}
