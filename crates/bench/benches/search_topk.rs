//! Benchmark: top-k retrieval with Fagin's Threshold Algorithm against
//! exhaustive evaluation over synthetic posting lists.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_corpus::{DocId, TermId};
use stb_search::threshold::exhaustive_topk;
use stb_search::{threshold_topk, InvertedIndex, NoPatternPolicy};

fn build_index(n_docs: usize, n_terms: usize, density: f64, seed: u64) -> InvertedIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx = InvertedIndex::new();
    for t in 0..n_terms {
        for d in 0..n_docs {
            if rng.gen_bool(density) {
                idx.insert(TermId(t as u32), DocId(d as u32), rng.gen_range(0.0..5.0));
            }
        }
    }
    idx.finalize();
    idx
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_topk");
    for &n_docs in &[10_000usize, 50_000] {
        let idx = build_index(n_docs, 4, 0.2, 99);
        let query: Vec<TermId> = (0..3u32).map(TermId).collect();
        group.bench_with_input(BenchmarkId::new("threshold", n_docs), &idx, |b, idx| {
            b.iter(|| black_box(threshold_topk(idx, &query, 10, NoPatternPolicy::Zero)))
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", n_docs), &idx, |b, idx| {
            b.iter(|| black_box(exhaustive_topk(idx, &query, 10, NoPatternPolicy::Zero)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
