//! Benchmark: full STComb mining of one term across many streams
//! (burst extraction + iterated max-weight clique).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stb_core::STComb;
use stb_corpus::StreamId;
use stb_datagen::{GeneratorConfig, PatternGenerator, StreamSelection};

fn bench_stcomb(c: &mut Criterion) {
    let mut group = c.benchmark_group("stcomb");
    group.sample_size(20);
    for &n_streams in &[50usize, 200, 500] {
        let config = GeneratorConfig {
            n_streams,
            timeline: 365,
            n_terms: 50,
            n_patterns: 20,
            selection: StreamSelection::DistGen {
                decay_fraction: 0.08,
            },
            seed: 11,
            ..Default::default()
        };
        let dataset = PatternGenerator::generate(config);
        let term = dataset.patterned_terms()[0];
        let series: Vec<(StreamId, Vec<f64>)> = (0..n_streams)
            .map(|s| (StreamId(s as u32), dataset.series(term, s)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("mine_term", n_streams),
            &series,
            |b, series| b.iter(|| black_box(STComb::new().mine_series(series))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stcomb);
criterion_main!(benches);
