//! Benchmark backing Figure 8: per-term mining time of both approaches as
//! the number of streams grows (distGen data, sparse per-term background).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stb_core::{STComb, STLocal, STLocalConfig};
use stb_corpus::StreamId;
use stb_datagen::{GeneratorConfig, PatternGenerator, StreamSelection};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for &n_streams in &[500usize, 2000] {
        let config = GeneratorConfig {
            n_streams,
            timeline: 120,
            n_terms: 200,
            n_patterns: 30,
            selection: StreamSelection::DistGen {
                decay_fraction: 0.08,
            },
            background_density: (120.0 / n_streams as f64).min(1.0),
            seed: 31,
            ..Default::default()
        };
        let dataset = PatternGenerator::generate(config);
        let term = dataset.patterned_terms()[0];
        group.bench_with_input(
            BenchmarkId::new("stlocal_per_term", n_streams),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    let mut miner =
                        STLocal::new(dataset.positions().to_vec(), STLocalConfig::default());
                    for ts in 0..dataset.timeline() {
                        miner.step(&dataset.snapshot(term, ts));
                    }
                    black_box(miner.finish())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stcomb_per_term", n_streams),
            &dataset,
            |b, dataset| {
                b.iter(|| {
                    let series: Vec<(StreamId, Vec<f64>)> = (0..dataset.n_streams())
                        .map(|s| (StreamId(s as u32), dataset.series(term, s)))
                        .collect();
                    black_box(STComb::new().mine_series(&series))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
