//! Micro-benchmark: maximum-weight clique on interval graphs (the maxClique
//! module of STComb).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_core::{max_weight_interval_clique, WeightedInterval};
use stb_timeseries::TimeInterval;

fn intervals(n: usize, timeline: usize, seed: u64) -> Vec<WeightedInterval> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let start = rng.gen_range(0..timeline - 31);
            let len = rng.gen_range(1..30);
            WeightedInterval::new(
                TimeInterval::new(start, start + len),
                rng.gen_range(0.01..1.0),
                i,
            )
        })
        .collect()
}

fn bench_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_clique");
    for &n in &[100usize, 1_000, 10_000] {
        let data = intervals(n, 365, 3);
        group.bench_with_input(BenchmarkId::new("sweep", n), &data, |b, data| {
            b.iter(|| black_box(max_weight_interval_clique(data)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clique);
criterion_main!(benches);
