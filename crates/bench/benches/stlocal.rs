//! Benchmark: a full STLocal streaming pass for one term (48 snapshots, as
//! in the Topix corpus).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stb_core::{STLocal, STLocalConfig};
use stb_datagen::{GeneratorConfig, PatternGenerator, StreamSelection};

fn bench_stlocal(c: &mut Criterion) {
    let mut group = c.benchmark_group("stlocal");
    group.sample_size(10);
    for &n_streams in &[50usize, 181] {
        let config = GeneratorConfig {
            n_streams,
            timeline: 48,
            n_terms: 20,
            n_patterns: 10,
            selection: StreamSelection::DistGen {
                decay_fraction: 0.08,
            },
            seed: 23,
            ..Default::default()
        };
        let dataset = PatternGenerator::generate(config);
        let term = dataset.patterned_terms()[0];
        let snapshots: Vec<Vec<f64>> = (0..dataset.timeline())
            .map(|ts| dataset.snapshot(term, ts))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("stream_term", n_streams),
            &snapshots,
            |b, snapshots| {
                b.iter(|| {
                    let mut miner =
                        STLocal::new(dataset.positions().to_vec(), STLocalConfig::default());
                    for snap in snapshots {
                        miner.step(snap);
                    }
                    black_box(miner.finish())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stlocal);
criterion_main!(benches);
