//! Micro-benchmark: Ruzzo–Tompa maximal scoring subsequences (batch and
//! online), the `GetMax` module used throughout STLocal.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_timeseries::{max_segments, OnlineMaxSeg};

fn scores(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_ruzzo_tompa(c: &mut Criterion) {
    let mut group = c.benchmark_group("ruzzo_tompa");
    for &n in &[100usize, 1_000, 10_000] {
        let data = scores(n, 42);
        group.bench_with_input(BenchmarkId::new("batch", n), &data, |b, data| {
            b.iter(|| black_box(max_segments(data)))
        });
        group.bench_with_input(BenchmarkId::new("online", n), &data, |b, data| {
            b.iter(|| {
                let mut state = OnlineMaxSeg::new();
                for &s in data {
                    state.push(s);
                }
                black_box(state.maximal_segments())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ruzzo_tompa);
criterion_main!(benches);
