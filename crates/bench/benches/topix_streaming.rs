//! Benchmark backing Figure 7: per-timestamp processing cost of STLocal and
//! STComb on (a reduced version of) the Topix corpus, for one event term.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stb_bench::experiments::stcomb_miner;
use stb_core::{STLocal, STLocalConfig};
use stb_corpus::StreamId;
use stb_datagen::{TopixConfig, TopixCorpus};

fn bench_topix_streaming(c: &mut Criterion) {
    let corpus = TopixCorpus::generate(TopixConfig::small());
    let collection = corpus.collection();
    // Event 15 (Tsvangirai): a localized query term.
    let term = corpus.query_terms(14)[0];
    let snapshots: Vec<Vec<f64>> = (0..collection.timeline_len())
        .map(|ts| collection.term_snapshot(term, ts).frequencies)
        .collect();
    let series: Vec<(StreamId, Vec<f64>)> = collection
        .streams_with_term(term)
        .into_iter()
        .map(|s| (s, collection.term_stream_series(term, s)))
        .collect();

    let mut group = c.benchmark_group("topix_streaming");
    group.sample_size(10);
    group.bench_function("stlocal_full_stream", |b| {
        b.iter(|| {
            let mut miner = STLocal::new(collection.positions(), STLocalConfig::default());
            for snap in &snapshots {
                miner.step(snap);
            }
            black_box(miner.finish())
        })
    });
    group.bench_function("stcomb_full_stream", |b| {
        b.iter(|| black_box(stcomb_miner().mine_series(&series)))
    });
    group.finish();
}

criterion_group!(benches, bench_topix_streaming);
criterion_main!(benches);
