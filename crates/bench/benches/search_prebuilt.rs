//! Benchmark: the serving path of the bursty-document search engine.
//!
//! Contrasts three ways of answering a repeated-query workload (the
//! ROADMAP's serving scenario) over the same collection and patterns:
//!
//! * `cold_rebuild` — the paper's experimental setting: every query
//!   scores its terms' posting lists from scratch,
//! * `prebuilt` — the posting index is finalized once up front (off the
//!   clock); queries only walk prebuilt score-sorted lists,
//! * `prebuilt_cached` — prebuilt index plus the LRU query-result cache;
//!   repeated queries short-circuit to a cache hit,
//! * `prebuilt_cached_filtered` — the same repeated workload with a
//!   `time_window` + `region` filter on every query: the first pass scores
//!   the filtered lists per query, every repeat is a cache hit keyed on the
//!   full canonical query. Cached filtered traffic should sit within ~2× of
//!   cached unfiltered traffic (the hit path is identical; only the key is
//!   bigger).
//!
//! A second group times the one-off `finalize` build itself, serial vs.
//! parallel across terms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_core::CombinatorialPattern;
use stb_corpus::{Collection, CollectionBuilder, StreamId, TermId};
use stb_geo::{GeoPoint, Rect};
use stb_search::{BurstySearchEngine, EngineConfig, NoPatternPolicy, Query};
use stb_timeseries::TimeInterval;
use std::collections::HashMap;
use std::sync::Arc;

const N_STREAMS: usize = 40;
const N_TIMESTAMPS: usize = 90;
const VOCAB: u32 = 120;
const TERMS_PER_DOC: usize = 6;
/// Repeated-query workload: `WORKLOAD_LEN` queries drawn round-robin from
/// `DISTINCT_QUERIES` distinct two-term queries.
const DISTINCT_QUERIES: usize = 8;
const WORKLOAD_LEN: usize = 64;
const TOP_K: usize = 10;

fn build_collection(seed: u64) -> Collection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CollectionBuilder::new(N_TIMESTAMPS);
    let terms: Vec<TermId> = (0..VOCAB)
        .map(|i| b.dict_mut().intern(&format!("term{i}")))
        .collect();
    for s in 0..N_STREAMS {
        b.add_stream(&format!("s{s}"), GeoPoint::new(s as f64, -(s as f64)));
    }
    for s in 0..N_STREAMS {
        for ts in 0..N_TIMESTAMPS {
            let mut counts = HashMap::new();
            for _ in 0..TERMS_PER_DOC {
                let t = terms[rng.gen_range(0..VOCAB as usize)];
                *counts.entry(t).or_insert(0) += rng.gen_range(1..4u32);
            }
            b.add_document(StreamId(s as u32), ts, counts);
        }
    }
    b.build()
}

/// One synthetic mined pattern per term: a random stream subset bursting
/// over a random timeframe.
fn synthetic_patterns(collection: &Collection, seed: u64) -> Vec<(TermId, CombinatorialPattern)> {
    let mut rng = StdRng::seed_from_u64(seed);
    collection
        .terms()
        .map(|term| {
            let n = rng.gen_range(3..N_STREAMS / 2);
            let streams: Vec<StreamId> = (0..n)
                .map(|_| StreamId(rng.gen_range(0..N_STREAMS as u32)))
                .collect();
            let start = rng.gen_range(0..N_TIMESTAMPS / 2);
            let end = start + rng.gen_range(5..N_TIMESTAMPS / 3);
            let tf = TimeInterval::new(start, end.min(N_TIMESTAMPS - 1));
            let score = rng.gen_range(0.5..3.0);
            (term, CombinatorialPattern::new(streams, tf, score, vec![]))
        })
        .collect()
}

fn workload(collection: &Collection) -> Vec<Query> {
    let terms: Vec<TermId> = collection.terms().collect();
    let distinct: Vec<Query> = (0..DISTINCT_QUERIES)
        .map(|i| {
            Query::terms([
                terms[(7 * i + 1) % terms.len()],
                terms[(13 * i + 3) % terms.len()],
            ])
            .top_k(TOP_K)
        })
        .collect();
    (0..WORKLOAD_LEN)
        .map(|i| distinct[i % DISTINCT_QUERIES].clone())
        .collect()
}

/// The same workload with a spatiotemporal restriction on every query: a
/// window over the middle of the timeline and a rectangle covering the
/// lower half of the stream diagonal.
fn filtered_workload(collection: &Collection) -> Vec<Query> {
    workload(collection)
        .into_iter()
        .map(|q| {
            q.time_window(N_TIMESTAMPS / 4..=3 * N_TIMESTAMPS / 4)
                .region(Rect::new(
                    -(N_STREAMS as f64),
                    -1.0,
                    1.0,
                    N_STREAMS as f64 / 2.0,
                ))
        })
        .collect()
}

fn engine(
    collection: &Arc<Collection>,
    patterns: &[(TermId, CombinatorialPattern)],
    cache_capacity: usize,
) -> BurstySearchEngine {
    let config = EngineConfig::builder()
        .no_pattern(NoPatternPolicy::Zero)
        .build();
    let mut e = BurstySearchEngine::new(Arc::clone(collection), config);
    e.set_cache_capacity(cache_capacity);
    for (term, p) in patterns {
        e.set_patterns(*term, std::slice::from_ref(p));
    }
    e
}

fn run_workload(e: &BurstySearchEngine, queries: &[Query]) -> usize {
    queries
        .iter()
        .map(|q| e.query(q).map(|r| r.results.len()).unwrap_or(0))
        .sum()
}

fn bench_serving(c: &mut Criterion) {
    let collection = Arc::new(build_collection(42));
    let patterns = synthetic_patterns(&collection, 7);
    let queries = workload(&collection);
    let filtered = filtered_workload(&collection);

    let cold = engine(&collection, &patterns, 0);
    let mut prebuilt = engine(&collection, &patterns, 0);
    prebuilt.finalize();
    let mut cached = engine(&collection, &patterns, 1024);
    cached.finalize();
    let mut cached_filtered = engine(&collection, &patterns, 1024);
    cached_filtered.finalize();

    // All unfiltered arms must agree before we compare their speed, and the
    // filtered workload must actually match something.
    let expect = run_workload(&cold, &queries);
    assert_eq!(run_workload(&prebuilt, &queries), expect);
    assert_eq!(run_workload(&cached, &queries), expect);
    assert!(run_workload(&cached_filtered, &filtered) > 0);

    let mut group = c.benchmark_group("search_serving");
    group.bench_function("cold_rebuild", |b| {
        b.iter(|| black_box(run_workload(&cold, &queries)))
    });
    group.bench_function("prebuilt", |b| {
        b.iter(|| black_box(run_workload(&prebuilt, &queries)))
    });
    group.bench_function("prebuilt_cached", |b| {
        b.iter(|| black_box(run_workload(&cached, &queries)))
    });
    group.bench_function("prebuilt_cached_filtered", |b| {
        b.iter(|| black_box(run_workload(&cached_filtered, &filtered)))
    });
    group.finish();
}

fn bench_finalize(c: &mut Criterion) {
    let collection = Arc::new(build_collection(42));
    let patterns = synthetic_patterns(&collection, 7);
    let n_par = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut group = c.benchmark_group("index_build");
    group.bench_function("finalize_serial", |b| {
        let mut e = engine(&collection, &patterns, 0);
        b.iter(|| {
            e.finalize_with_threads(1);
            black_box(e.is_finalized())
        })
    });
    group.bench_function(format!("finalize_parallel_{n_par}").as_str(), |b| {
        let mut e = engine(&collection, &patterns, 0);
        b.iter(|| {
            e.finalize_with_threads(n_par);
            black_box(e.is_finalized())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serving, bench_finalize);
criterion_main!(benches);
