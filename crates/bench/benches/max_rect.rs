//! Micro-benchmark: maximum-weight rectangle kernels and R-Bursty — the
//! spatial discrepancy module behind every STLocal snapshot.
//!
//! `tree` (the `O(m^2 log m)` DGM max-subsegment-tree kernel) is compared
//! against `sweep` (the `O(m^3)` Kadane re-scan) at sizes where the
//! asymptotic gap is visible, plus the `grid16` approximation ablation and
//! the incremental vs from-scratch R-Bursty extraction loops. The
//! `bench_maxrect` binary runs the same comparison headlessly and writes
//! `BENCH_maxrect.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_discrepancy::{max_weight_rect_grid, max_weight_rect_with, RBursty, RectKernel, WPoint};

fn points(n: usize, seed: u64) -> Vec<WPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            WPoint::new(
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(-1.0..1.5),
            )
        })
        .collect()
}

fn bench_max_rect(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_rect");
    for &n in &[64usize, 256, 1024] {
        let pts = points(n, 7);
        group.bench_with_input(BenchmarkId::new("tree", n), &pts, |b, pts| {
            b.iter(|| black_box(max_weight_rect_with(pts, RectKernel::Tree)))
        });
        group.bench_with_input(BenchmarkId::new("sweep", n), &pts, |b, pts| {
            b.iter(|| black_box(max_weight_rect_with(pts, RectKernel::Sweep)))
        });
        group.bench_with_input(BenchmarkId::new("grid16", n), &pts, |b, pts| {
            b.iter(|| black_box(max_weight_rect_grid(pts, 16)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("rbursty");
    for &n in &[64usize, 181] {
        let pts = points(n, 7);
        group.bench_with_input(BenchmarkId::new("incremental", n), &pts, |b, pts| {
            b.iter(|| black_box(RBursty::new().find(pts)))
        });
        group.bench_with_input(BenchmarkId::new("from_scratch", n), &pts, |b, pts| {
            b.iter(|| black_box(RBursty::new().find_from_scratch(pts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_max_rect);
criterion_main!(benches);
