//! Micro-benchmark: maximum-weight rectangle search and R-Bursty — the
//! spatial discrepancy module behind every STLocal snapshot. Includes the
//! grid-approximation ablation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stb_discrepancy::{max_weight_rect, max_weight_rect_grid, RBursty, WPoint};

fn points(n: usize, seed: u64) -> Vec<WPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            WPoint::new(
                rng.gen_range(0.0..1000.0),
                rng.gen_range(0.0..1000.0),
                rng.gen_range(-1.0..1.5),
            )
        })
        .collect()
}

fn bench_max_rect(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_rect");
    for &n in &[30usize, 90, 181] {
        let pts = points(n, 7);
        group.bench_with_input(BenchmarkId::new("exact", n), &pts, |b, pts| {
            b.iter(|| black_box(max_weight_rect(pts)))
        });
        group.bench_with_input(BenchmarkId::new("grid16", n), &pts, |b, pts| {
            b.iter(|| black_box(max_weight_rect_grid(pts, 16)))
        });
        group.bench_with_input(BenchmarkId::new("rbursty", n), &pts, |b, pts| {
            b.iter(|| black_box(RBursty::new().find(pts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_max_rect);
criterion_main!(benches);
