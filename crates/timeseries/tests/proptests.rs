//! Property-based tests for the temporal burst substrate.

use proptest::prelude::*;
use stb_timeseries::{
    bursty_intervals, max_segments, max_subarray, ruzzo_tompa::max_segments_reference,
    temporal_burstiness, BaselineModel, KleinbergDetector, OnlineMaxSeg, RunningMean,
    SlidingWindowMean, TimeInterval,
};

fn arb_scores() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, 0..60)
}

fn arb_frequencies() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..50.0, 1..60)
}

proptest! {
    #[test]
    fn rt_segments_are_disjoint_positive_sorted(scores in arb_scores()) {
        let segs = max_segments(&scores);
        for s in &segs {
            prop_assert!(s.score > 0.0);
            prop_assert!(s.end() < scores.len());
            // Boundary elements of a maximal segment are positive.
            prop_assert!(scores[s.start()] > 0.0);
            prop_assert!(scores[s.end()] > 0.0);
        }
        for w in segs.windows(2) {
            prop_assert!(w[0].end() < w[1].start());
        }
    }

    #[test]
    fn rt_segment_scores_match_sums(scores in arb_scores()) {
        for s in max_segments(&scores) {
            let sum: f64 = scores[s.start()..=s.end()].iter().sum();
            prop_assert!((sum - s.score).abs() < 1e-9);
        }
    }

    #[test]
    fn rt_internal_prefixes_and_suffixes_positive(scores in arb_scores()) {
        // Characterization of maximal segments: every proper prefix and
        // proper suffix of a maximal segment has strictly positive sum.
        for s in max_segments(&scores) {
            let seg = &scores[s.start()..=s.end()];
            let mut prefix = 0.0;
            for &x in &seg[..seg.len() - 1] {
                prefix += x;
                prop_assert!(prefix > 0.0);
            }
            let mut suffix = 0.0;
            for &x in seg[1..].iter().rev() {
                suffix += x;
                prop_assert!(suffix > 0.0);
            }
        }
    }

    #[test]
    fn rt_best_matches_kadane(scores in arb_scores()) {
        let segs = max_segments(&scores);
        let best = segs.iter().map(|s| s.score).fold(f64::NEG_INFINITY, f64::max);
        match max_subarray(&scores) {
            None => prop_assert!(segs.is_empty()),
            Some(k) => prop_assert!((best - k.score).abs() < 1e-9),
        }
    }

    #[test]
    fn rt_matches_divide_and_conquer_reference(scores in arb_scores()) {
        let a = max_segments(&scores);
        let b = max_segments_reference(&scores);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.interval, y.interval);
            prop_assert!((x.score - y.score).abs() < 1e-9);
        }
    }

    #[test]
    fn online_matches_batch_at_every_prefix(scores in arb_scores()) {
        let mut online = OnlineMaxSeg::new();
        for i in 0..scores.len() {
            online.push(scores[i]);
            let batch = max_segments(&scores[..=i]);
            let incr = online.maximal_segments();
            prop_assert_eq!(batch.len(), incr.len());
            for (a, b) in batch.iter().zip(&incr) {
                prop_assert_eq!(a.interval, b.interval);
                prop_assert!((a.score - b.score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn burstiness_is_bounded(freqs in arb_frequencies(), a in 0usize..60, b in 0usize..60) {
        let n = freqs.len();
        let interval = TimeInterval::new(a.min(n - 1), b.min(n - 1));
        let score = temporal_burstiness(&freqs, interval);
        prop_assert!((-1.0..=1.0).contains(&score));
    }

    #[test]
    fn bursty_interval_scores_match_formula(freqs in arb_frequencies()) {
        for b in bursty_intervals(&freqs) {
            let direct = temporal_burstiness(&freqs, b.interval);
            prop_assert!((b.score - direct).abs() < 1e-9);
            prop_assert!(b.score > 0.0);
        }
    }

    #[test]
    fn bursty_intervals_nonoverlapping_and_within_bounds(freqs in arb_frequencies()) {
        let bursts = bursty_intervals(&freqs);
        for b in &bursts {
            prop_assert!(b.interval.end < freqs.len());
        }
        for w in bursts.windows(2) {
            prop_assert!(w[0].interval.end < w[1].interval.start);
        }
    }

    #[test]
    fn running_mean_matches_arithmetic_mean(values in prop::collection::vec(0.0f64..100.0, 1..50)) {
        let mut m = RunningMean::new();
        for &v in &values {
            m.observe(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((m.expected().unwrap() - mean).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_equals_running_mean_when_window_large(
        values in prop::collection::vec(0.0f64..100.0, 1..30)
    ) {
        let mut sw = SlidingWindowMean::new(1000);
        let mut rm = RunningMean::new();
        for &v in &values {
            sw.observe(v);
            rm.observe(v);
        }
        prop_assert!((sw.expected().unwrap() - rm.expected().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn kleinberg_bursts_are_disjoint_and_in_range(
        base in 1.0f64..5.0,
        spike in 10.0f64..40.0,
        start in 5usize..20,
        len in 1usize..10
    ) {
        let n = 40;
        let mut counts: Vec<(f64, f64)> = vec![(base, 100.0); n];
        for item in counts.iter_mut().skip(start).take(len) {
            *item = (spike, 100.0);
        }
        let bursts = KleinbergDetector::default().detect(&counts);
        for b in &bursts {
            prop_assert!(b.interval.end < n);
            prop_assert!(b.weight > 0.0);
        }
        for w in bursts.windows(2) {
            prop_assert!(w[0].interval.end < w[1].interval.start);
        }
    }
}
