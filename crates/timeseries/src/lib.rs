//! Temporal burst detection substrate.
//!
//! This crate implements everything the spatiotemporal pattern miners need to
//! reason about "when" a term is unusually frequent:
//!
//! * [`TimeInterval`] — inclusive timestamp intervals `[start, end]`.
//! * [`ruzzo_tompa`] — the linear-time algorithm of Ruzzo & Tompa for finding
//!   **all maximal scoring subsequences** of a real-valued sequence. This is
//!   the `GetMax` module of the paper (Appendix C), used both for temporal
//!   burst extraction and for maintaining maximal spatiotemporal windows in
//!   `STLocal`.
//! * [`online`] — an incremental version of the same algorithm whose state
//!   can be advanced one score at a time, exactly as the streaming `STLocal`
//!   algorithm requires.
//! * [`temporal_burst`] — the discrepancy-based temporal burstiness measure
//!   `B_T(I)` of Eq. 1 (Lappas et al., KDD 2009) and the linear-time
//!   extraction of non-overlapping bursty temporal intervals.
//! * [`kleinberg`] — Kleinberg's two-state burst automaton (KDD 2002), an
//!   alternative detector of non-overlapping bursty intervals; the paper
//!   notes its framework is compatible with any such detector.
//! * [`baseline`] — expected-frequency models `E_x[i][t]` (running mean,
//!   sliding window, exponentially weighted, seasonal) and the per-stream
//!   burstiness `B(t, D_x[i]) = observed − expected` of Eq. 7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod interval;
pub mod kleinberg;
pub mod online;
pub mod ruzzo_tompa;
pub mod temporal_burst;

pub use baseline::{
    burstiness_series, BaselineModel, Ewma, RunningMean, Seasonal, SlidingWindowMean,
};
pub use interval::TimeInterval;
pub use kleinberg::{KleinbergBurst, KleinbergDetector};
pub use online::OnlineMaxSeg;
pub use ruzzo_tompa::{max_segments, max_subarray, Segment};
pub use temporal_burst::{bursty_intervals, temporal_burstiness, BurstyInterval};
