//! Ruzzo–Tompa maximal scoring subsequences (batch version).
//!
//! Given a sequence of real scores, the algorithm of Ruzzo & Tompa (ISMB
//! 1999) finds *all maximal scoring subsequences* — the unique set of
//! disjoint, positive-score contiguous segments such that no segment can be
//! extended or merged with its neighbourhood without lowering its score — in
//! a single linear pass. The paper uses it (as `GetMax`, Appendix C) to turn
//! per-timestamp burstiness scores into maximal bursty windows, and the
//! temporal burst extraction of Section 3 is exactly this algorithm applied
//! to the discrepancy-transformed frequency series.

use crate::interval::TimeInterval;

/// A scored segment `[start, end]` (inclusive indices) of the input sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Inclusive index range of the segment.
    pub interval: TimeInterval,
    /// Total score of the segment (always positive for maximal segments).
    pub score: f64,
}

impl Segment {
    /// Creates a segment covering `[start, end]` with the given score.
    pub fn new(start: usize, end: usize, score: f64) -> Self {
        Self {
            interval: TimeInterval::new(start, end),
            score,
        }
    }

    /// First index of the segment.
    pub fn start(&self) -> usize {
        self.interval.start
    }

    /// Last index of the segment.
    pub fn end(&self) -> usize {
        self.interval.end
    }
}

/// Internal candidate entry of the Ruzzo–Tompa list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub(crate) start: usize,
    pub(crate) end: usize,
    /// Cumulative score of the whole sequence up to (but excluding) `start`.
    pub(crate) l: f64,
    /// Cumulative score of the whole sequence up to and including `end`.
    pub(crate) r: f64,
}

impl Candidate {
    pub(crate) fn score(&self) -> f64 {
        self.r - self.l
    }

    pub(crate) fn to_segment(self) -> Segment {
        Segment::new(self.start, self.end, self.score())
    }
}

/// Core of the Ruzzo–Tompa step: integrates the score at `index` into the
/// candidate list. `cum` must be the cumulative sum *excluding* this score;
/// the updated cumulative sum is returned.
pub(crate) fn rt_push(candidates: &mut Vec<Candidate>, index: usize, score: f64, cum: f64) -> f64 {
    let new_cum = cum + score;
    if score <= 0.0 {
        // Non-positive scores never start or extend a candidate directly.
        return new_cum;
    }
    let mut k = Candidate {
        start: index,
        end: index,
        l: cum,
        r: new_cum,
    };
    loop {
        // Step 1: search the list from right to left for the maximum j with
        // L_j < L_k.
        let j = candidates.iter().rposition(|c| c.l < k.l);
        match j {
            None => {
                candidates.push(k);
                break;
            }
            Some(j) => {
                if candidates[j].r >= k.r {
                    // Step 2, first case: append k as a new candidate.
                    candidates.push(k);
                    break;
                }
                // Step 2, second case: extend k to the left to absorb
                // candidates j..end, then reconsider.
                k.start = candidates[j].start;
                k.l = candidates[j].l;
                candidates.truncate(j);
            }
        }
    }
    new_cum
}

/// Finds all maximal scoring subsequences of `scores` in linear time.
///
/// Segments are returned sorted by start index; every segment has a strictly
/// positive score. An all-non-positive input yields an empty result.
///
/// # Examples
///
/// ```
/// use stb_timeseries::max_segments;
/// let scores = [4.0, -5.0, 3.0, -3.0, 1.0, 2.0, -2.0, 2.0, -2.0, 1.0, 5.0];
/// let segs = max_segments(&scores);
/// // The example from Ruzzo & Tompa's paper: the maximal subsequences are
/// // [4], [3], and the trailing segment starting at the score 1 at index 4.
/// assert_eq!(segs.len(), 3);
/// assert_eq!(segs[0].start(), 0);
/// assert_eq!(segs[0].end(), 0);
/// assert_eq!(segs[1].start(), 2);
/// assert!((segs[2].score - 7.0).abs() < 1e-12);
/// ```
pub fn max_segments(scores: &[f64]) -> Vec<Segment> {
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut cum = 0.0;
    for (i, &s) in scores.iter().enumerate() {
        cum = rt_push(&mut candidates, i, s, cum);
    }
    let mut segs: Vec<Segment> = candidates.into_iter().map(Candidate::to_segment).collect();
    segs.sort_by_key(|s| s.start());
    segs
}

/// Maximum-sum contiguous subarray (Kadane's algorithm).
///
/// Returns `None` when every element is non-positive (the paper's burstiness
/// semantics never report empty or non-positive bursts).
pub fn max_subarray(scores: &[f64]) -> Option<Segment> {
    let mut best: Option<Segment> = None;
    let mut cur_sum = 0.0;
    let mut cur_start = 0usize;
    for (i, &s) in scores.iter().enumerate() {
        if cur_sum <= 0.0 {
            cur_sum = s;
            cur_start = i;
        } else {
            cur_sum += s;
        }
        if cur_sum > 0.0 && best.is_none_or(|b| cur_sum > b.score) {
            best = Some(Segment::new(cur_start, i, cur_sum));
        }
    }
    best
}

/// Reference implementation of the maximal-scoring-subsequence set via the
/// divide-and-conquer characterization: find the maximum-sum subarray, then
/// recurse on the prefix before it and the suffix after it.
///
/// Quadratic in the worst case; only meant as a test oracle for
/// [`max_segments`].
pub fn max_segments_reference(scores: &[f64]) -> Vec<Segment> {
    fn recurse(scores: &[f64], offset: usize, out: &mut Vec<Segment>) {
        if scores.is_empty() {
            return;
        }
        if let Some(best) = max_subarray(scores) {
            let (s, e) = (best.start(), best.end());
            recurse(&scores[..s], offset, out);
            out.push(Segment::new(offset + s, offset + e, best.score));
            recurse(&scores[e + 1..], offset + e + 1, out);
        }
    }
    let mut out = Vec::new();
    recurse(scores, 0, &mut out);
    out.sort_by_key(|s| s.start());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_segs_eq(a: &[Segment], b: &[Segment]) {
        assert_eq!(a.len(), b.len(), "{a:?} vs {b:?}");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.interval, y.interval, "{a:?} vs {b:?}");
            assert!((x.score - y.score).abs() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(max_segments(&[]).is_empty());
        assert!(max_subarray(&[]).is_none());
    }

    #[test]
    fn all_negative() {
        assert!(max_segments(&[-1.0, -2.0, -0.5]).is_empty());
        assert!(max_subarray(&[-1.0, -2.0, -0.5]).is_none());
    }

    #[test]
    fn all_zero() {
        assert!(max_segments(&[0.0, 0.0]).is_empty());
    }

    #[test]
    fn single_positive() {
        let segs = max_segments(&[0.0, 3.5, 0.0]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].interval, TimeInterval::new(1, 1));
        assert_eq!(segs[0].score, 3.5);
    }

    #[test]
    fn all_positive_is_single_segment() {
        let segs = max_segments(&[1.0, 2.0, 3.0]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].interval, TimeInterval::new(0, 2));
        assert!((segs[0].score - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ruzzo_tompa_paper_example() {
        // The worked example from the original paper.
        let scores = [4.0, -5.0, 3.0, -3.0, 1.0, 2.0, -2.0, 2.0, -2.0, 1.0, 5.0];
        let segs = max_segments(&scores);
        let expected = [
            Segment::new(0, 0, 4.0),
            Segment::new(2, 2, 3.0),
            Segment::new(4, 10, 7.0),
        ];
        assert_segs_eq(&segs, &expected);
    }

    #[test]
    fn two_separate_bursts() {
        let scores = [-1.0, 2.0, 3.0, -10.0, 4.0, -1.0, 2.0, -8.0];
        let segs = max_segments(&scores);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].interval, TimeInterval::new(1, 2));
        assert!((segs[0].score - 5.0).abs() < 1e-12);
        assert_eq!(segs[1].interval, TimeInterval::new(4, 6));
        assert!((segs[1].score - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segments_are_disjoint_and_positive() {
        let scores = [1.0, -0.5, 2.0, -3.0, 0.5, 0.5, -0.2, 0.1];
        let segs = max_segments(&scores);
        for w in segs.windows(2) {
            assert!(w[0].end() < w[1].start());
        }
        for s in &segs {
            assert!(s.score > 0.0);
        }
    }

    #[test]
    fn matches_reference_on_fixed_cases() {
        let cases: Vec<Vec<f64>> = vec![
            vec![4.0, -5.0, 3.0, -3.0, 1.0, 2.0, -2.0, 2.0, -2.0, 1.0, 5.0],
            vec![1.0, -1.0, 1.0, -1.0, 1.0],
            vec![-2.0, 5.0, -1.0, -1.0, 5.0, -2.0],
            vec![0.5, 0.5, -2.0, 3.0, -0.5, -0.5, 2.0],
            vec![2.0, -1.0, 2.0, -1.0, 2.0, -10.0, 1.0],
        ];
        for case in cases {
            assert_segs_eq(&max_segments(&case), &max_segments_reference(&case));
        }
    }

    #[test]
    fn best_segment_matches_kadane() {
        let scores = [0.3, -0.2, 0.9, -1.4, 2.0, 0.1, -0.6, 0.4];
        let segs = max_segments(&scores);
        let best = segs
            .iter()
            .map(|s| s.score)
            .fold(f64::NEG_INFINITY, f64::max);
        let kadane = max_subarray(&scores).unwrap().score;
        assert!((best - kadane).abs() < 1e-12);
    }

    #[test]
    fn kadane_finds_middle_segment() {
        let scores = [-2.0, 1.0, 2.0, -1.0, 3.0, -5.0, 1.0];
        let seg = max_subarray(&scores).unwrap();
        assert_eq!(seg.interval, TimeInterval::new(1, 4));
        assert!((seg.score - 5.0).abs() < 1e-12);
    }
}
