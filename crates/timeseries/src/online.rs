//! Incremental (online) maintenance of maximal scoring subsequences.
//!
//! The streaming `STLocal` algorithm (Algorithm 2 in the paper) appends one
//! r-score to each tracked region's sequence per timestamp and needs the set
//! of maximal windows to be kept up to date without reprocessing the whole
//! sequence. [`OnlineMaxSeg`] does exactly that: it carries the Ruzzo–Tompa
//! candidate list across pushes, so each new score costs amortized `O(1)`
//! and the current maximal segments can be read off at any time.

use crate::ruzzo_tompa::{rt_push, Candidate, Segment};

/// Online Ruzzo–Tompa state: push scores one at a time, read the maximal
/// segments of everything pushed so far at any point.
#[derive(Debug, Clone, Default)]
pub struct OnlineMaxSeg {
    candidates: Vec<Candidate>,
    cum: f64,
    len: usize,
}

impl OnlineMaxSeg {
    /// Creates an empty state (no scores pushed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the next score of the sequence.
    pub fn push(&mut self, score: f64) {
        self.cum = rt_push(&mut self.candidates, self.len, score, self.cum);
        self.len += 1;
    }

    /// Appends several scores in order.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, scores: I) {
        for s in scores {
            self.push(s);
        }
    }

    /// Number of scores pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no score has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Running total of all scores pushed so far.
    ///
    /// `STLocal` uses this to prune region sequences: once the total drops
    /// below zero the region can never again contribute a maximal window
    /// that extends the current suffix, so its sequence is dropped.
    pub fn total(&self) -> f64 {
        self.cum
    }

    /// The maximal scoring subsequences of everything pushed so far, sorted
    /// by start index.
    pub fn maximal_segments(&self) -> Vec<Segment> {
        let mut segs: Vec<Segment> = self
            .candidates
            .iter()
            .map(|c| Candidate::to_segment(*c))
            .collect();
        segs.sort_by_key(|s| s.start());
        segs
    }

    /// The highest-scoring maximal segment so far, if any score pushed so far
    /// was positive.
    pub fn best_segment(&self) -> Option<Segment> {
        self.candidates
            .iter()
            .map(|c| Candidate::to_segment(*c))
            .max_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Number of candidate segments currently kept. This is the "open
    /// windows" count reported in Figure 6 of the paper.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ruzzo_tompa::max_segments;

    #[test]
    fn empty_state() {
        let s = OnlineMaxSeg::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.total(), 0.0);
        assert!(s.maximal_segments().is_empty());
        assert!(s.best_segment().is_none());
    }

    #[test]
    fn matches_batch_on_paper_example() {
        let scores = [4.0, -5.0, 3.0, -3.0, 1.0, 2.0, -2.0, 2.0, -2.0, 1.0, 5.0];
        let mut online = OnlineMaxSeg::new();
        online.extend(scores.iter().copied());
        let batch = max_segments(&scores);
        let incr = online.maximal_segments();
        assert_eq!(batch.len(), incr.len());
        for (a, b) in batch.iter().zip(&incr) {
            assert_eq!(a.interval, b.interval);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_batch_at_every_prefix() {
        let scores = [0.5, -1.0, 2.0, 1.0, -4.0, 3.0, -0.5, 0.7, -0.1, 0.2];
        let mut online = OnlineMaxSeg::new();
        for i in 0..scores.len() {
            online.push(scores[i]);
            let batch = max_segments(&scores[..=i]);
            let incr = online.maximal_segments();
            assert_eq!(batch.len(), incr.len(), "prefix {i}");
            for (a, b) in batch.iter().zip(&incr) {
                assert_eq!(a.interval, b.interval, "prefix {i}");
                assert!((a.score - b.score).abs() < 1e-12, "prefix {i}");
            }
        }
    }

    #[test]
    fn total_tracks_sum() {
        let mut s = OnlineMaxSeg::new();
        s.extend([1.0, -2.5, 3.0]);
        assert!((s.total() - 1.5).abs() < 1e-12);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn best_segment_is_max_score() {
        let mut s = OnlineMaxSeg::new();
        s.extend([2.0, -5.0, 1.0, 1.0, 1.0, -5.0, 2.5]);
        let best = s.best_segment().unwrap();
        assert!((best.score - 3.0).abs() < 1e-12);
        assert_eq!(best.start(), 2);
        assert_eq!(best.end(), 4);
    }

    #[test]
    fn candidate_count_bounded_by_positive_scores() {
        let mut s = OnlineMaxSeg::new();
        let scores = [1.0, -0.1, 1.0, -0.1, 1.0, -0.1];
        s.extend(scores.iter().copied());
        assert!(s.candidate_count() <= scores.iter().filter(|&&x| x > 0.0).count());
    }
}
