//! Expected-frequency baselines and per-stream burstiness (Eq. 7).
//!
//! The regional framework (Section 4 of the paper) measures the burstiness
//! of a term `t` in stream `D_x` at timestamp `i` as the *discrepancy*
//! between the observed frequency and an expected baseline:
//!
//! ```text
//! B(t, D_x[i]) = D_x[i][t] − E_x[i][t]
//! ```
//!
//! The paper deliberately leaves the choice of baseline open ("the nature of
//! an appropriate baseline depends on the domain"): the running average of
//! all history, a sliding window of recent history, or seasonal data from
//! previous periods. This module provides those options behind a single
//! trait so the mining algorithms are agnostic to the choice.

/// An online model of the expected frequency of a term in one stream.
///
/// The model is fed observations in timeline order via [`observe`] and asked
/// for the expectation of the *next* observation via [`expected`] — i.e. the
/// expectation at timestamp `i` is computed strictly from history before `i`,
/// matching the paper's definition of `E_x[i][t]`.
///
/// [`observe`]: BaselineModel::observe
/// [`expected`]: BaselineModel::expected
pub trait BaselineModel {
    /// Expected frequency of the next observation given history seen so far,
    /// or `None` if no history is available yet.
    fn expected(&self) -> Option<f64>;

    /// Feeds the observation for the current timestamp into the model.
    fn observe(&mut self, value: f64);

    /// Resets the model to its initial (no-history) state.
    fn reset(&mut self);
}

/// Mean of *all* observations seen so far — the paper's default suggestion.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    count: usize,
}

impl RunningMean {
    /// Creates an empty running-mean model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BaselineModel for RunningMean {
    fn expected(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    fn observe(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    fn reset(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }
}

/// Mean of the last `window` observations ("focus only on the most recent
/// measurements").
#[derive(Debug, Clone)]
pub struct SlidingWindowMean {
    window: usize,
    buf: std::collections::VecDeque<f64>,
    sum: f64,
}

impl SlidingWindowMean {
    /// Creates a sliding-window model over the last `window` observations.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            buf: std::collections::VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }
}

impl BaselineModel for SlidingWindowMean {
    fn expected(&self) -> Option<f64> {
        (!self.buf.is_empty()).then(|| self.sum / self.buf.len() as f64)
    }

    fn observe(&mut self, value: f64) {
        self.buf.push_back(value);
        self.sum += value;
        if self.buf.len() > self.window {
            if let Some(old) = self.buf.pop_front() {
                self.sum -= old;
            }
        }
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }
}

/// Exponentially weighted moving average with smoothing factor `alpha`
/// (weight of the most recent observation).
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA model; `alpha` must be in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }
}

impl BaselineModel for Ewma {
    fn expected(&self) -> Option<f64> {
        self.value
    }

    fn observe(&mut self, value: f64) {
        self.value = Some(match self.value {
            None => value,
            Some(prev) => self.alpha * value + (1.0 - self.alpha) * prev,
        });
    }

    fn reset(&mut self) {
        self.value = None;
    }
}

/// Seasonal baseline: the expectation at phase `p` of the current period is
/// the mean of the observations at phase `p` of all *previous* periods
/// (e.g. "the average daily frequency over the Decembers of previous
/// years"). Falls back to the overall running mean until a full period of
/// history exists for the phase.
#[derive(Debug, Clone)]
pub struct Seasonal {
    period: usize,
    phase_sums: Vec<f64>,
    phase_counts: Vec<usize>,
    next_phase: usize,
    overall: RunningMean,
}

impl Seasonal {
    /// Creates a seasonal model with the given period length (in timestamps).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "period must be positive");
        Self {
            period,
            phase_sums: vec![0.0; period],
            phase_counts: vec![0; period],
            next_phase: 0,
            overall: RunningMean::new(),
        }
    }
}

impl BaselineModel for Seasonal {
    fn expected(&self) -> Option<f64> {
        let phase = self.next_phase;
        if self.phase_counts[phase] > 0 {
            Some(self.phase_sums[phase] / self.phase_counts[phase] as f64)
        } else {
            self.overall.expected()
        }
    }

    fn observe(&mut self, value: f64) {
        let phase = self.next_phase;
        self.phase_sums[phase] += value;
        self.phase_counts[phase] += 1;
        self.overall.observe(value);
        self.next_phase = (self.next_phase + 1) % self.period;
    }

    fn reset(&mut self) {
        self.phase_sums.iter_mut().for_each(|x| *x = 0.0);
        self.phase_counts.iter_mut().for_each(|x| *x = 0);
        self.next_phase = 0;
        self.overall.reset();
    }
}

/// Computes the per-timestamp burstiness series `B(t, D_x[i])` (Eq. 7) of a
/// frequency series under the given baseline model.
///
/// The expectation at each timestamp is computed strictly from the history
/// before that timestamp. When no history exists yet (the first timestamp),
/// the burstiness is reported as 0: with nothing to compare against, nothing
/// is a deviation.
pub fn burstiness_series<M: BaselineModel>(frequencies: &[f64], model: &mut M) -> Vec<f64> {
    let mut out = Vec::with_capacity(frequencies.len());
    for &y in frequencies {
        let b = match model.expected() {
            Some(e) => y - e,
            None => 0.0,
        };
        out.push(b);
        model.observe(y);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_basic() {
        let mut m = RunningMean::new();
        assert_eq!(m.expected(), None);
        m.observe(2.0);
        m.observe(4.0);
        assert_eq!(m.expected(), Some(3.0));
        m.reset();
        assert_eq!(m.expected(), None);
    }

    #[test]
    fn sliding_window_forgets_old_values() {
        let mut m = SlidingWindowMean::new(2);
        m.observe(10.0);
        m.observe(2.0);
        m.observe(4.0);
        // Only the last two observations (2, 4) should count.
        assert_eq!(m.expected(), Some(3.0));
    }

    #[test]
    fn sliding_window_before_full() {
        let mut m = SlidingWindowMean::new(5);
        assert_eq!(m.expected(), None);
        m.observe(6.0);
        assert_eq!(m.expected(), Some(6.0));
    }

    #[test]
    fn ewma_weights_recent_observations() {
        let mut m = Ewma::new(0.5);
        m.observe(0.0);
        m.observe(10.0);
        assert_eq!(m.expected(), Some(5.0));
        m.observe(10.0);
        assert_eq!(m.expected(), Some(7.5));
    }

    #[test]
    fn ewma_alpha_one_tracks_last_value() {
        let mut m = Ewma::new(1.0);
        m.observe(3.0);
        m.observe(9.0);
        assert_eq!(m.expected(), Some(9.0));
    }

    #[test]
    fn seasonal_uses_same_phase_history() {
        // Period 7 (weekly seasonality over daily data).
        let mut m = Seasonal::new(7);
        // One full week of history: phase 0 gets 70, others get 1.
        m.observe(70.0);
        for _ in 1..7 {
            m.observe(1.0);
        }
        // Expectation for the next timestamp (phase 0) should be 70, not the
        // overall mean.
        assert_eq!(m.expected(), Some(70.0));
        m.observe(72.0);
        // Phase 1 expectation is 1.
        assert_eq!(m.expected(), Some(1.0));
    }

    #[test]
    fn seasonal_falls_back_to_overall_mean() {
        let mut m = Seasonal::new(4);
        m.observe(2.0);
        m.observe(4.0);
        // Phase 2 has no history yet; fall back to the overall mean (3).
        assert_eq!(m.expected(), Some(3.0));
    }

    #[test]
    fn burstiness_series_first_value_is_zero() {
        let mut m = RunningMean::new();
        let b = burstiness_series(&[5.0, 5.0, 5.0, 20.0], &mut m);
        assert_eq!(b[0], 0.0);
        assert_eq!(b[1], 0.0);
        assert_eq!(b[2], 0.0);
        assert_eq!(b[3], 15.0);
    }

    #[test]
    fn burstiness_series_detects_deviation_and_recovery() {
        let mut m = SlidingWindowMean::new(3);
        let freqs = [4.0, 4.0, 4.0, 16.0, 4.0];
        let b = burstiness_series(&freqs, &mut m);
        assert_eq!(b[3], 12.0);
        assert!(b[4] < 0.0); // after the spike the expectation is inflated
    }

    #[test]
    fn burstiness_series_empty_input() {
        let mut m = RunningMean::new();
        assert!(burstiness_series(&[], &mut m).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_window_panics() {
        SlidingWindowMean::new(0);
    }

    #[test]
    #[should_panic]
    fn bad_alpha_panics() {
        Ewma::new(1.5);
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        Seasonal::new(0);
    }
}
