//! Inclusive timestamp intervals.

use std::fmt;

/// A closed interval `[start, end]` of integer timestamps.
///
/// Timestamps are abstract indices into the timeline of a collection (days,
/// weeks, ... — whatever granularity the caller chose). Both endpoints are
/// inclusive, matching the paper's `Y_t[l : r]` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimeInterval {
    /// First timestamp covered by the interval (inclusive).
    pub start: usize,
    /// Last timestamp covered by the interval (inclusive).
    pub end: usize,
}

impl TimeInterval {
    /// Creates a new interval; `start` and `end` are swapped if given out of
    /// order.
    pub fn new(start: usize, end: usize) -> Self {
        if start <= end {
            Self { start, end }
        } else {
            Self {
                start: end,
                end: start,
            }
        }
    }

    /// Number of timestamps covered (always at least 1).
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Always false: an interval covers at least one timestamp. Provided for
    /// API symmetry with collection types.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the timestamp `t` lies inside the interval.
    pub fn contains(&self, t: usize) -> bool {
        t >= self.start && t <= self.end
    }

    /// Whether the two closed intervals share at least one timestamp.
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The intersection of the two intervals, if they overlap.
    pub fn intersection(&self, other: &TimeInterval) -> Option<TimeInterval> {
        if self.overlaps(other) {
            Some(TimeInterval {
                start: self.start.max(other.start),
                end: self.end.min(other.end),
            })
        } else {
            None
        }
    }

    /// The smallest interval covering both inputs (they need not overlap).
    pub fn span(&self, other: &TimeInterval) -> TimeInterval {
        TimeInterval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Jaccard similarity `|A ∩ B| / |A ∪ B|` of the two intervals, measured
    /// in covered timestamps. Used by the `Base` baseline of the paper.
    pub fn jaccard(&self, other: &TimeInterval) -> f64 {
        let inter = match self.intersection(other) {
            Some(i) => i.len(),
            None => 0,
        };
        let union = self.len() + other.len() - inter;
        inter as f64 / union as f64
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_order() {
        let i = TimeInterval::new(7, 3);
        assert_eq!(i.start, 3);
        assert_eq!(i.end, 7);
        assert_eq!(i.len(), 5);
    }

    #[test]
    fn singleton_interval() {
        let i = TimeInterval::new(4, 4);
        assert_eq!(i.len(), 1);
        assert!(i.contains(4));
        assert!(!i.contains(3));
        assert!(!i.is_empty());
    }

    #[test]
    fn overlap_and_intersection() {
        let a = TimeInterval::new(0, 5);
        let b = TimeInterval::new(3, 9);
        let c = TimeInterval::new(6, 7);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersection(&b), Some(TimeInterval::new(3, 5)));
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn touching_intervals_overlap() {
        let a = TimeInterval::new(0, 3);
        let b = TimeInterval::new(3, 6);
        assert!(a.overlaps(&b));
        assert_eq!(a.intersection(&b).unwrap().len(), 1);
    }

    #[test]
    fn span_covers_gap() {
        let a = TimeInterval::new(0, 2);
        let b = TimeInterval::new(8, 9);
        assert_eq!(a.span(&b), TimeInterval::new(0, 9));
    }

    #[test]
    fn jaccard_values() {
        let a = TimeInterval::new(0, 4); // 5 units
        let b = TimeInterval::new(0, 4);
        assert!((a.jaccard(&b) - 1.0).abs() < 1e-12);
        let c = TimeInterval::new(5, 9);
        assert_eq!(a.jaccard(&c), 0.0);
        let d = TimeInterval::new(3, 7); // overlap 2, union 8
        assert!((a.jaccard(&d) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_by_start_then_end() {
        let mut v = [
            TimeInterval::new(5, 6),
            TimeInterval::new(1, 9),
            TimeInterval::new(1, 2),
        ];
        v.sort();
        assert_eq!(v[0], TimeInterval::new(1, 2));
        assert_eq!(v[1], TimeInterval::new(1, 9));
        assert_eq!(v[2], TimeInterval::new(5, 6));
    }
}
