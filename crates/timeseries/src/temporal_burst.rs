//! Temporal burstiness of a term within a single stream.
//!
//! Implements the discrepancy-based temporal burstiness measure of Eq. 1 in
//! the paper (introduced in Lappas et al., "On burstiness-aware search for
//! document sequences", KDD 2009) and the linear-time extraction of the
//! non-overlapping bursty temporal intervals that `STComb` consumes.
//!
//! Given the frequency series `Y_t = y_1 .. y_N` of a term and an interval
//! `I = [l, r]`:
//!
//! ```text
//! B_T(I) = sum_{i in I} y_i / W  −  |I| / N        where W = sum_i y_i
//! ```
//!
//! i.e. the share of the term's total mass that falls inside `I` minus the
//! share of the timeline that `I` covers. `B_T(I)` is always in `[-1, 1]`
//! and positive exactly when the interval holds more than its "fair share"
//! of the mass. Because `B_T` decomposes into per-timestamp contributions
//! `y_i/W − 1/N`, the set of maximal bursty intervals is exactly the set of
//! Ruzzo–Tompa maximal segments of that transformed series.

use crate::interval::TimeInterval;
use crate::ruzzo_tompa::max_segments;

/// A bursty temporal interval: where it lies on the timeline and how bursty
/// it is (its `B_T` score).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyInterval {
    /// The interval on the timeline (inclusive timestamps).
    pub interval: TimeInterval,
    /// The temporal burstiness `B_T` of the interval, in `(0, 1]`.
    pub score: f64,
}

/// Computes the temporal burstiness `B_T(I)` (Eq. 1) of the interval
/// `[start, end]` (inclusive) of the frequency series `frequencies`.
///
/// Returns 0 when the series has no mass (all-zero frequencies), and clamps
/// the interval to the series length.
///
/// # Examples
///
/// ```
/// use stb_timeseries::{temporal_burstiness, TimeInterval};
/// let freqs = [0.0, 0.0, 8.0, 8.0, 0.0, 0.0, 0.0, 0.0];
/// // The two bursty days hold 100% of the mass but only 25% of the timeline.
/// let b = temporal_burstiness(&freqs, TimeInterval::new(2, 3));
/// assert!((b - 0.75).abs() < 1e-12);
/// ```
pub fn temporal_burstiness(frequencies: &[f64], interval: TimeInterval) -> f64 {
    if frequencies.is_empty() {
        return 0.0;
    }
    let n = frequencies.len();
    let total: f64 = frequencies.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let start = interval.start.min(n - 1);
    let end = interval.end.min(n - 1);
    let mass: f64 = frequencies[start..=end].iter().sum();
    mass / total - (end - start + 1) as f64 / n as f64
}

/// Extracts the set of non-overlapping bursty temporal intervals of a
/// frequency series, each with its `B_T` score, in linear time.
///
/// This reproduces the burst extraction of Lappas et al. (KDD 2009) that
/// `STComb` builds on: transform each timestamp's frequency into its
/// discrepancy contribution and take the Ruzzo–Tompa maximal segments.
/// Returned intervals are sorted by start timestamp, strictly
/// non-overlapping, and all have strictly positive scores.
pub fn bursty_intervals(frequencies: &[f64]) -> Vec<BurstyInterval> {
    if frequencies.is_empty() {
        return Vec::new();
    }
    let n = frequencies.len() as f64;
    let total: f64 = frequencies.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let transformed: Vec<f64> = frequencies.iter().map(|&y| y / total - 1.0 / n).collect();
    max_segments(&transformed)
        .into_iter()
        .map(|seg| BurstyInterval {
            interval: seg.interval,
            score: seg.score,
        })
        .collect()
}

/// Like [`bursty_intervals`] but keeps only intervals with score at least
/// `min_score`. Useful to suppress micro-bursts when feeding `STComb`.
pub fn bursty_intervals_with_threshold(frequencies: &[f64], min_score: f64) -> Vec<BurstyInterval> {
    bursty_intervals(frequencies)
        .into_iter()
        .filter(|b| b.score >= min_score)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series() {
        assert!(bursty_intervals(&[]).is_empty());
        assert_eq!(temporal_burstiness(&[], TimeInterval::new(0, 0)), 0.0);
    }

    #[test]
    fn zero_mass_series() {
        let freqs = [0.0; 10];
        assert!(bursty_intervals(&freqs).is_empty());
        assert_eq!(temporal_burstiness(&freqs, TimeInterval::new(0, 9)), 0.0);
    }

    #[test]
    fn uniform_series_has_no_bursts() {
        let freqs = [5.0; 12];
        assert!(bursty_intervals(&freqs).is_empty());
        // Any interval of a uniform series has zero burstiness.
        assert!(temporal_burstiness(&freqs, TimeInterval::new(3, 7)).abs() < 1e-12);
    }

    #[test]
    fn whole_timeline_has_zero_burstiness() {
        let freqs = [1.0, 9.0, 2.0, 0.0, 5.0];
        let b = temporal_burstiness(&freqs, TimeInterval::new(0, 4));
        assert!(b.abs() < 1e-12);
    }

    #[test]
    fn burstiness_bounded_by_one() {
        let freqs = [0.0, 0.0, 0.0, 100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let b = temporal_burstiness(&freqs, TimeInterval::new(3, 3));
        assert!(b > 0.0 && b <= 1.0);
        assert!((b - 0.9).abs() < 1e-12);
    }

    #[test]
    fn single_spike_detected() {
        let freqs = [1.0, 1.0, 1.0, 50.0, 1.0, 1.0, 1.0, 1.0];
        let bursts = bursty_intervals(&freqs);
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].interval, TimeInterval::new(3, 3));
        assert!(bursts[0].score > 0.7);
    }

    #[test]
    fn two_spikes_detected_separately() {
        let mut freqs = vec![1.0; 30];
        freqs[5] = 40.0;
        freqs[6] = 40.0;
        freqs[20] = 60.0;
        let bursts = bursty_intervals(&freqs);
        assert_eq!(bursts.len(), 2);
        assert_eq!(bursts[0].interval, TimeInterval::new(5, 6));
        assert_eq!(bursts[1].interval, TimeInterval::new(20, 20));
    }

    #[test]
    fn interval_scores_match_direct_formula() {
        let freqs = [2.0, 1.0, 0.0, 14.0, 18.0, 1.0, 0.0, 2.0, 1.0, 1.0];
        for b in bursty_intervals(&freqs) {
            let direct = temporal_burstiness(&freqs, b.interval);
            assert!((b.score - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn intervals_do_not_overlap() {
        let freqs = [3.0, 0.1, 5.0, 0.1, 0.1, 7.0, 0.1, 2.0, 0.1, 4.0];
        let bursts = bursty_intervals(&freqs);
        for w in bursts.windows(2) {
            assert!(w[0].interval.end < w[1].interval.start);
        }
    }

    #[test]
    fn threshold_filters_weak_bursts() {
        let mut freqs = vec![1.0; 20];
        freqs[3] = 2.0; // weak blip
        freqs[10] = 50.0; // strong burst
        let all = bursty_intervals(&freqs);
        let strong = bursty_intervals_with_threshold(&freqs, 0.3);
        assert!(all.len() >= strong.len());
        assert_eq!(strong.len(), 1);
        assert_eq!(strong[0].interval, TimeInterval::new(10, 10));
    }

    #[test]
    fn interval_clamped_to_series() {
        let freqs = [1.0, 2.0, 3.0];
        let b = temporal_burstiness(&freqs, TimeInterval::new(2, 10));
        let direct = temporal_burstiness(&freqs, TimeInterval::new(2, 2));
        assert_eq!(b, direct);
    }
}
