//! Classical (Torgerson) Multidimensional Scaling.
//!
//! The paper (Section 6.1) projects the locations of the Topix news sources
//! onto a 2-D plane using Multidimensional Scaling of their pairwise
//! geographic distances, and all of the regional pattern mining then happens
//! in that plane. [`classical_mds`] reproduces that projection: given an
//! `n x n` matrix of pairwise distances it returns `n` planar points whose
//! Euclidean distances approximate the input distances as well as a rank-2
//! embedding can.

use crate::linalg::SymMatrix;
use crate::point::Point2D;
use std::fmt;

/// Errors returned by [`classical_mds`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdsError {
    /// The distance matrix is not square.
    NotSquare,
    /// The distance matrix contains a negative or non-finite entry.
    InvalidDistance {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl fmt::Display for MdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdsError::NotSquare => write!(f, "distance matrix must be square"),
            MdsError::InvalidDistance { row, col } => {
                write!(
                    f,
                    "invalid distance at ({row}, {col}): must be finite and non-negative"
                )
            }
        }
    }
}

impl std::error::Error for MdsError {}

/// Projects points described by a pairwise distance matrix into the plane
/// using classical MDS.
///
/// Steps: square the distances, double-center (`B = -1/2 J D^2 J`), take the
/// two leading eigenpairs of `B`, and scale the eigenvectors by the square
/// roots of the (non-negative parts of the) eigenvalues.
///
/// The embedding is unique only up to rotation/reflection/translation, which
/// is irrelevant for burst-region mining: only relative proximity matters.
///
/// # Errors
///
/// Returns an error if the matrix is not square or contains negative or
/// non-finite entries.
///
/// # Examples
///
/// ```
/// use stb_geo::classical_mds;
/// // Three collinear points at 0, 1, 3 on a line.
/// let d = vec![
///     vec![0.0, 1.0, 3.0],
///     vec![1.0, 0.0, 2.0],
///     vec![3.0, 2.0, 0.0],
/// ];
/// let pts = classical_mds(&d).unwrap();
/// let d01 = pts[0].distance(&pts[1]);
/// let d12 = pts[1].distance(&pts[2]);
/// assert!((d01 - 1.0).abs() < 1e-6);
/// assert!((d12 - 2.0).abs() < 1e-6);
/// ```
pub fn classical_mds(distances: &[Vec<f64>]) -> Result<Vec<Point2D>, MdsError> {
    let n = distances.len();
    for (i, row) in distances.iter().enumerate() {
        if row.len() != n {
            return Err(MdsError::NotSquare);
        }
        for (j, &d) in row.iter().enumerate() {
            if !d.is_finite() || d < 0.0 {
                return Err(MdsError::InvalidDistance { row: i, col: j });
            }
        }
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![Point2D::new(0.0, 0.0)]);
    }

    // Squared distances, symmetrized.
    let mut sq = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            let d = (distances[i][j] + distances[j][i]) / 2.0;
            sq[i][j] = d * d;
        }
    }

    // Double centering: B = -1/2 * J * D^2 * J, J = I - 11^T / n.
    let row_means: Vec<f64> = sq
        .iter()
        .map(|r| r.iter().sum::<f64>() / n as f64)
        .collect();
    let grand_mean: f64 = row_means.iter().sum::<f64>() / n as f64;
    let mut b = SymMatrix::zeros(n);
    for i in 0..n {
        for j in i..n {
            let v = -0.5 * (sq[i][j] - row_means[i] - row_means[j] + grand_mean);
            b.set(i, j, v);
        }
    }

    let eig = b.eigen_jacobi();
    let mut coords = vec![Point2D::new(0.0, 0.0); n];
    for (k, coord_axis) in [0usize, 1usize].iter().enumerate() {
        if *coord_axis >= eig.values.len() {
            break;
        }
        let lambda = eig.values[*coord_axis].max(0.0);
        let scale = lambda.sqrt();
        for (i, c) in coords.iter_mut().enumerate() {
            let val = eig.vectors[*coord_axis][i] * scale;
            if k == 0 {
                c.x = val;
            } else {
                c.y = val;
            }
        }
    }
    Ok(coords)
}

/// Stress-1 goodness-of-fit of an embedding: the normalized root of the sum
/// of squared differences between the input distances and the embedded
/// Euclidean distances. Zero means a perfect fit; values below ~0.1 are
/// conventionally considered a good 2-D representation.
pub fn stress(distances: &[Vec<f64>], embedding: &[Point2D]) -> f64 {
    let n = distances.len();
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = distances[i][j];
            let e = embedding[i].distance(&embedding[j]);
            num += (d - e) * (d - e);
            den += d * d;
        }
    }
    if den == 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haversine::pairwise_distance_matrix;
    use crate::point::GeoPoint;

    #[test]
    fn empty_and_singleton() {
        assert!(classical_mds(&[]).unwrap().is_empty());
        let one = classical_mds(&[vec![0.0]]).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn rejects_non_square() {
        let d = vec![vec![0.0, 1.0]];
        assert_eq!(classical_mds(&d), Err(MdsError::NotSquare));
    }

    #[test]
    fn rejects_negative_distance() {
        let d = vec![vec![0.0, -1.0], vec![-1.0, 0.0]];
        assert!(matches!(
            classical_mds(&d),
            Err(MdsError::InvalidDistance { .. })
        ));
    }

    #[test]
    fn recovers_planar_configuration() {
        // A 3-4-5 right triangle is exactly embeddable in 2-D.
        let d = vec![
            vec![0.0, 3.0, 5.0],
            vec![3.0, 0.0, 4.0],
            vec![5.0, 4.0, 0.0],
        ];
        let pts = classical_mds(&d).unwrap();
        assert!((pts[0].distance(&pts[1]) - 3.0).abs() < 1e-6);
        assert!((pts[1].distance(&pts[2]) - 4.0).abs() < 1e-6);
        assert!((pts[0].distance(&pts[2]) - 5.0).abs() < 1e-6);
        assert!(stress(&d, &pts) < 1e-6);
    }

    #[test]
    fn square_configuration() {
        let s2 = std::f64::consts::SQRT_2;
        let d = vec![
            vec![0.0, 1.0, s2, 1.0],
            vec![1.0, 0.0, 1.0, s2],
            vec![s2, 1.0, 0.0, 1.0],
            vec![1.0, s2, 1.0, 0.0],
        ];
        let pts = classical_mds(&d).unwrap();
        assert!(stress(&d, &pts) < 1e-6);
    }

    #[test]
    fn geographic_embedding_preserves_neighborhoods() {
        // European capitals should embed closer to each other than to
        // far-away cities.
        let pts_geo = vec![
            GeoPoint::new(48.85, 2.35),   // Paris
            GeoPoint::new(52.52, 13.40),  // Berlin
            GeoPoint::new(51.50, -0.12),  // London
            GeoPoint::new(-33.86, 151.2), // Sydney
            GeoPoint::new(35.68, 139.69), // Tokyo
        ];
        let d = pairwise_distance_matrix(&pts_geo);
        let emb = classical_mds(&d).unwrap();
        let paris_berlin = emb[0].distance(&emb[1]);
        let paris_sydney = emb[0].distance(&emb[3]);
        assert!(paris_berlin < paris_sydney);
        let s = stress(&d, &emb);
        assert!(s < 0.35, "stress too high: {s}");
    }

    #[test]
    fn stress_zero_for_identical() {
        let d = vec![vec![0.0, 2.0], vec![2.0, 0.0]];
        let pts = classical_mds(&d).unwrap();
        assert!(stress(&d, &pts) < 1e-9);
    }
}
