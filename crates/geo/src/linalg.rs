//! Minimal dense linear algebra: symmetric matrices and the cyclic Jacobi
//! eigensolver.
//!
//! Classical MDS needs the leading eigenpairs of an `n x n` symmetric
//! (double-centered Gram) matrix. For the problem sizes in the paper
//! (`n = 181` Topix sources, at most a few thousand synthetic streams) a
//! dense cyclic Jacobi sweep is simple, numerically robust, and fast enough,
//! so we implement it here rather than pulling in a linear-algebra crate.

use std::fmt;

/// A dense symmetric matrix stored as the full square (row-major).
///
/// Only symmetric data should be stored; [`SymMatrix::set`] writes both
/// `(i, j)` and `(j, i)` to make that easy to maintain.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates an `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds a symmetric matrix from a full row-major square `rows`,
    /// symmetrizing as `(a_ij + a_ji) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not square.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        for r in rows {
            assert_eq!(r.len(), n, "matrix must be square");
        }
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.data[i * n + j] = (rows[i][j] + rows[j][i]) / 2.0;
            }
        }
        m
    }

    /// Dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets elements `(i, j)` and `(j, i)` to `v`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Sum of squares of all off-diagonal elements; the Jacobi convergence
    /// criterion drives this to (numerical) zero.
    pub fn off_diagonal_norm_sq(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let v = self.get(i, j);
                    s += v * v;
                }
            }
        }
        s
    }

    /// Computes the full eigendecomposition with the cyclic Jacobi method.
    ///
    /// Returns eigenpairs sorted by eigenvalue in **descending** order. Each
    /// eigenvector is returned as a length-`n` column. The decomposition
    /// satisfies `A v = lambda v` to roughly `1e-9` relative accuracy for
    /// well-conditioned inputs.
    pub fn eigen_jacobi(&self) -> Eigen {
        let n = self.n;
        if n == 0 {
            return Eigen {
                values: Vec::new(),
                vectors: Vec::new(),
            };
        }
        let mut a = self.clone();
        // Eigenvector accumulator, starts as identity.
        let mut v = vec![vec![0.0; n]; n];
        for (i, row) in v.iter_mut().enumerate() {
            row[i] = 1.0;
        }

        let max_sweeps = 100;
        let tol = 1e-12 * (1.0 + self.frobenius_norm());
        for _ in 0..max_sweeps {
            if a.off_diagonal_norm_sq().sqrt() <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() <= f64::EPSILON * tol.max(1.0) {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    // Stable computation of tan(phi).
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;

                    // Standard symmetric Jacobi update (Golub & Van Loan):
                    // rotate rows/columns p and q, zeroing a[p][q].
                    let new_pp = c * c * app - 2.0 * s * c * apq + s * s * aqq;
                    let new_qq = s * s * app + 2.0 * s * c * apq + c * c * aqq;
                    a.set(p, p, new_pp);
                    a.set(q, q, new_qq);
                    a.set(p, q, 0.0);
                    for k in 0..n {
                        if k == p || k == q {
                            continue;
                        }
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }

                    // Accumulate the rotation into the eigenvector matrix.
                    for row in v.iter_mut() {
                        let vp = row[p];
                        let vq = row[q];
                        row[p] = c * vp - s * vq;
                        row[q] = s * vp + c * vq;
                    }
                }
            }
        }

        let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
            .map(|j| (a.get(j, j), (0..n).map(|i| v[i][j]).collect()))
            .collect();
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
        Eigen {
            values: pairs.iter().map(|p| p.0).collect(),
            vectors: pairs.into_iter().map(|p| p.1).collect(),
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            y[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

impl fmt::Display for SymMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{:10.4} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Result of a symmetric eigendecomposition: eigenvalues in descending order
/// and the matching eigenvectors (unit columns).
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors; `vectors[k]` corresponds to `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 0, 3.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 2.0);
        let e = m.eigen_jacobi();
        assert_close(e.values[0], 3.0, 1e-9);
        assert_close(e.values[1], 2.0, 1e-9);
        assert_close(e.values[2], 1.0, 1e-9);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = SymMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = m.eigen_jacobi();
        assert_close(e.values[0], 3.0, 1e-9);
        assert_close(e.values[1], 1.0, 1e-9);
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let m = SymMatrix::from_rows(&[
            vec![4.0, 1.0, -2.0],
            vec![1.0, 2.0, 0.0],
            vec![-2.0, 0.0, 3.0],
        ]);
        let e = m.eigen_jacobi();
        for (lambda, vec_) in e.values.iter().zip(&e.vectors) {
            let av = m.mat_vec(vec_);
            for (avi, vi) in av.iter().zip(vec_) {
                assert_close(*avi, lambda * vi, 1e-8);
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = SymMatrix::from_rows(&[
            vec![5.0, 2.0, 0.0, 1.0],
            vec![2.0, 6.0, 1.0, 0.0],
            vec![0.0, 1.0, 7.0, 3.0],
            vec![1.0, 0.0, 3.0, 8.0],
        ]);
        let e = m.eigen_jacobi();
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = e.vectors[i]
                    .iter()
                    .zip(&e.vectors[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(dot, expect, 1e-8);
            }
        }
    }

    #[test]
    fn trace_equals_sum_of_eigenvalues() {
        let m = SymMatrix::from_rows(&[
            vec![1.0, 0.5, 0.2],
            vec![0.5, -2.0, 0.3],
            vec![0.2, 0.3, 4.0],
        ]);
        let e = m.eigen_jacobi();
        let trace = 1.0 - 2.0 + 4.0;
        assert_close(e.values.iter().sum::<f64>(), trace, 1e-9);
    }

    #[test]
    fn empty_matrix() {
        let m = SymMatrix::zeros(0);
        let e = m.eigen_jacobi();
        assert!(e.values.is_empty());
        assert!(e.vectors.is_empty());
    }

    #[test]
    fn from_rows_symmetrizes() {
        let m = SymMatrix::from_rows(&[vec![0.0, 2.0], vec![0.0, 0.0]]);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    #[should_panic]
    fn non_square_panics() {
        SymMatrix::from_rows(&[vec![1.0, 2.0]]);
    }
}
