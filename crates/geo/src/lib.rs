//! Geographic primitives and projection utilities for spatiotemporal
//! burstiness mining.
//!
//! This crate is the *spatial substrate* of the `stburst` workspace. It
//! provides everything the pattern-mining algorithms need to reason about
//! "where" a document stream lives:
//!
//! * [`GeoPoint`] — a latitude/longitude geostamp, with great-circle
//!   distances ([`haversine_km`]).
//! * [`Point2D`] and [`Rect`] — planar points and axis-aligned rectangles,
//!   the geometry used by the regional (`STLocal`) patterns.
//! * [`Mbr`] — minimum bounding rectangles, used to report the spatial
//!   extent of combinatorial (`STComb`) patterns (Table 1 of the paper).
//! * [`Grid`] — the grid partitioning of the map discussed in Section 2
//!   ("Granularity") of the paper, used to aggregate fine-grained streams
//!   into cells.
//! * [`classical_mds`] — classical (Torgerson) Multidimensional Scaling,
//!   the projection the paper uses to place the Topix country sources on a
//!   2-D plane from their pairwise geographic distances.
//! * [`countries`] — a gazetteer of country centroids standing in for the
//!   181 Topix country sources.
//!
//! The linear algebra needed by MDS (a symmetric eigensolver) is implemented
//! from scratch in [`linalg`]; the crate has no heavyweight dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod countries;
pub mod grid;
pub mod haversine;
pub mod linalg;
pub mod mds;
pub mod point;
pub mod rect;

pub use countries::{all_countries, Country};
pub use grid::{Grid, GridCell};
pub use haversine::{haversine_km, EARTH_RADIUS_KM};
pub use linalg::SymMatrix;
pub use mds::{classical_mds, MdsError};
pub use point::{GeoPoint, Point2D};
pub use rect::{Mbr, Rect};
