//! Geographic and planar points.

use std::fmt;

/// A point on the Earth's surface, expressed in decimal degrees.
///
/// This is the *geostamp* attached to every document stream in the paper's
/// model (Section 2): each stream originates from one fixed location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in decimal degrees, positive north, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in decimal degrees, positive east, in `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a new geostamp from latitude/longitude in decimal degrees.
    ///
    /// Values are clamped to the valid ranges rather than rejected: the
    /// gazetteer data this crate works with only needs city/country-level
    /// accuracy and out-of-range inputs are invariably small rounding spills.
    pub fn new(lat: f64, lon: f64) -> Self {
        Self {
            lat: lat.clamp(-90.0, 90.0),
            lon: lon.clamp(-180.0, 180.0),
        }
    }

    /// Latitude in radians.
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }

    /// Great-circle distance to `other` in kilometers.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        crate::haversine::haversine_km(self, other)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

/// A point on the planar map produced by the MDS projection (or any other
/// 2-D embedding of the stream locations).
///
/// The regional pattern mining (`STLocal`) operates entirely on these planar
/// coordinates: bursty regions are axis-aligned rectangles in this plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2D {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2D {
    /// Creates a new planar point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point2D) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    pub fn distance_sq(&self, other: &Point2D) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl fmt::Display for Point2D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point2D {
    fn from((x, y): (f64, f64)) -> Self {
        Point2D::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geopoint_clamps_out_of_range() {
        let p = GeoPoint::new(95.0, -200.0);
        assert_eq!(p.lat, 90.0);
        assert_eq!(p.lon, -180.0);
    }

    #[test]
    fn geopoint_radians() {
        let p = GeoPoint::new(90.0, 180.0);
        assert!((p.lat_rad() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((p.lon_rad() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn point2d_distance_is_euclidean() {
        let a = Point2D::new(0.0, 0.0);
        let b = Point2D::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn point2d_distance_symmetric() {
        let a = Point2D::new(1.5, -2.0);
        let b = Point2D::new(-0.5, 7.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn point2d_from_tuple() {
        let p: Point2D = (2.0, 3.0).into();
        assert_eq!(p, Point2D::new(2.0, 3.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(GeoPoint::new(1.0, 2.0).to_string(), "(1.0000, 2.0000)");
        assert_eq!(Point2D::new(1.0, 2.0).to_string(), "(1.000, 2.000)");
    }
}
