//! Axis-aligned rectangles and minimum bounding rectangles on the planar map.
//!
//! Regional spatiotemporal patterns (Section 4 of the paper) are restricted to
//! axis-oriented rectangles: this keeps the discrepancy maximization
//! polynomial while still capturing spatially coherent regions. The
//! combinatorial patterns of Section 3 are evaluated spatially through the
//! minimum bounding rectangle ([`Mbr`]) of the streams they include (Table 1).

use crate::point::Point2D;
use std::fmt;

/// A closed axis-aligned rectangle `[min_x, max_x] x [min_y, max_y]`.
///
/// Degenerate rectangles (single points or segments) are allowed: a region
/// containing a single stream is a perfectly valid bursty region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Smallest x coordinate (inclusive).
    pub min_x: f64,
    /// Smallest y coordinate (inclusive).
    pub min_y: f64,
    /// Largest x coordinate (inclusive).
    pub max_x: f64,
    /// Largest y coordinate (inclusive).
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from two opposite corners, normalizing the order
    /// of the coordinates.
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Self {
            min_x: x1.min(x2),
            min_y: y1.min(y2),
            max_x: x1.max(x2),
            max_y: y1.max(y2),
        }
    }

    /// A degenerate rectangle covering exactly one point.
    pub fn from_point(p: Point2D) -> Self {
        Self::new(p.x, p.y, p.x, p.y)
    }

    /// Width along the x axis.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height along the y axis.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area of the rectangle (zero for degenerate rectangles).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center of the rectangle.
    pub fn center(&self) -> Point2D {
        Point2D::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Whether the (closed) rectangle contains the point `p`.
    pub fn contains(&self, p: &Point2D) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether the (closed) rectangle fully contains `other`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Whether the two closed rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Expands the rectangle by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3},{:.3}]x[{:.3},{:.3}]",
            self.min_x, self.max_x, self.min_y, self.max_y
        )
    }
}

/// Incremental minimum-bounding-rectangle builder.
///
/// Used to compute, for a combinatorial (`STComb`) pattern, the rectangle
/// delimited by the streams it contains — the "# countries in MBR" column of
/// Table 1 in the paper.
#[derive(Debug, Clone, Default)]
pub struct Mbr {
    rect: Option<Rect>,
}

impl Mbr {
    /// An empty MBR containing no points.
    pub fn new() -> Self {
        Self { rect: None }
    }

    /// Builds an MBR directly from an iterator of points.
    pub fn from_points<I: IntoIterator<Item = Point2D>>(points: I) -> Self {
        let mut mbr = Self::new();
        for p in points {
            mbr.push(p);
        }
        mbr
    }

    /// Extends the MBR to cover `p`.
    pub fn push(&mut self, p: Point2D) {
        self.rect = Some(match self.rect {
            None => Rect::from_point(p),
            Some(r) => r.union(&Rect::from_point(p)),
        });
    }

    /// The accumulated rectangle, or `None` if no point was pushed.
    pub fn rect(&self) -> Option<Rect> {
        self.rect
    }

    /// Whether any point has been pushed.
    pub fn is_empty(&self) -> bool {
        self.rect.is_none()
    }

    /// Counts how many of the given points fall inside the accumulated MBR.
    ///
    /// Returns 0 when the MBR is empty.
    pub fn count_contained(&self, points: &[Point2D]) -> usize {
        match self.rect {
            None => 0,
            Some(r) => points.iter().filter(|p| r.contains(p)).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(5.0, 7.0, 1.0, 2.0);
        assert_eq!(r.min_x, 1.0);
        assert_eq!(r.max_x, 5.0);
        assert_eq!(r.min_y, 2.0);
        assert_eq!(r.max_y, 7.0);
    }

    #[test]
    fn contains_boundary_points() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains(&Point2D::new(0.0, 0.0)));
        assert!(r.contains(&Point2D::new(2.0, 2.0)));
        assert!(r.contains(&Point2D::new(1.0, 2.0)));
        assert!(!r.contains(&Point2D::new(2.0001, 1.0)));
    }

    #[test]
    fn degenerate_rect_contains_only_its_point() {
        let r = Rect::from_point(Point2D::new(1.0, 1.0));
        assert_eq!(r.area(), 0.0);
        assert!(r.contains(&Point2D::new(1.0, 1.0)));
        assert!(!r.contains(&Point2D::new(1.0, 1.1)));
    }

    #[test]
    fn intersects_and_union() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        let c = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&c);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&c));
    }

    #[test]
    fn touching_rectangles_intersect() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn mbr_covers_all_points() {
        let pts = vec![
            Point2D::new(0.0, 5.0),
            Point2D::new(-3.0, 2.0),
            Point2D::new(4.0, -1.0),
        ];
        let mbr = Mbr::from_points(pts.clone());
        let r = mbr.rect().unwrap();
        for p in &pts {
            assert!(r.contains(p));
        }
        assert_eq!(r.min_x, -3.0);
        assert_eq!(r.max_y, 5.0);
    }

    #[test]
    fn empty_mbr() {
        let mbr = Mbr::new();
        assert!(mbr.is_empty());
        assert!(mbr.rect().is_none());
        assert_eq!(mbr.count_contained(&[Point2D::new(0.0, 0.0)]), 0);
    }

    #[test]
    fn mbr_count_contained() {
        let mbr = Mbr::from_points(vec![Point2D::new(0.0, 0.0), Point2D::new(10.0, 10.0)]);
        let pts = vec![
            Point2D::new(5.0, 5.0),
            Point2D::new(11.0, 5.0),
            Point2D::new(0.0, 10.0),
        ];
        assert_eq!(mbr.count_contained(&pts), 2);
    }

    #[test]
    fn expanded_contains_original() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        let e = r.expanded(0.5);
        assert!(e.contains_rect(&r));
        assert_eq!(e.width(), 2.0);
    }

    #[test]
    fn center_of_rect() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0);
        assert_eq!(r.center(), Point2D::new(2.0, 1.0));
    }
}
