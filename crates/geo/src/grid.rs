//! Grid partitioning of the planar map.
//!
//! Section 2 of the paper ("Granularity") notes that when the number of raw
//! sources is overwhelming (e.g. millions of Twitter users), one can
//! partition the map with a grid and treat every cell as a single aggregate
//! stream. [`Grid`] implements that partitioning: it maps planar points to
//! cell indices and exposes the cell rectangles so that aggregated streams
//! can be given a geostamp (the cell center).

use crate::point::Point2D;
use crate::rect::Rect;

/// Identifier of a grid cell: `(column, row)` with the origin at the
/// bottom-left corner of the gridded area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridCell {
    /// Column index (x direction), 0-based.
    pub col: usize,
    /// Row index (y direction), 0-based.
    pub row: usize,
}

/// A uniform grid over an axis-aligned bounding area.
#[derive(Debug, Clone)]
pub struct Grid {
    bounds: Rect,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
}

impl Grid {
    /// Creates a grid with `cols x rows` cells covering `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero, or if `bounds` is degenerate in a
    /// dimension that is subdivided into more than one cell.
    pub fn new(bounds: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        let cell_w = bounds.width() / cols as f64;
        let cell_h = bounds.height() / rows as f64;
        assert!(
            (cell_w > 0.0 || cols == 1) && (cell_h > 0.0 || rows == 1),
            "degenerate bounds cannot be subdivided"
        );
        Self {
            bounds,
            cols,
            rows,
            cell_w,
            cell_h,
        }
    }

    /// Creates the smallest grid with square-ish cells of side at most
    /// `cell_size` covering `bounds`.
    pub fn with_cell_size(bounds: Rect, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let cols = (bounds.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (bounds.height() / cell_size).ceil().max(1.0) as usize;
        Self::new(bounds, cols, rows)
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// Whether the grid has no cells (never true: construction requires at
    /// least one cell; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bounding area covered by the grid.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Maps a point to its cell, or `None` if the point lies outside the
    /// grid bounds.
    ///
    /// Points exactly on the right/top boundary belong to the last cell.
    pub fn cell_of(&self, p: &Point2D) -> Option<GridCell> {
        if !self.bounds.contains(p) {
            return None;
        }
        let col = if self.cell_w == 0.0 {
            0
        } else {
            (((p.x - self.bounds.min_x) / self.cell_w) as usize).min(self.cols - 1)
        };
        let row = if self.cell_h == 0.0 {
            0
        } else {
            (((p.y - self.bounds.min_y) / self.cell_h) as usize).min(self.rows - 1)
        };
        Some(GridCell { col, row })
    }

    /// The rectangle covered by a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range.
    pub fn cell_rect(&self, cell: GridCell) -> Rect {
        assert!(
            cell.col < self.cols && cell.row < self.rows,
            "cell out of range"
        );
        let min_x = self.bounds.min_x + cell.col as f64 * self.cell_w;
        let min_y = self.bounds.min_y + cell.row as f64 * self.cell_h;
        Rect::new(min_x, min_y, min_x + self.cell_w, min_y + self.cell_h)
    }

    /// The center of a cell, usable as the geostamp of the aggregate stream.
    pub fn cell_center(&self, cell: GridCell) -> Point2D {
        self.cell_rect(cell).center()
    }

    /// Groups point indices by the cell they fall into. Points outside the
    /// bounds are dropped.
    pub fn assign(&self, points: &[Point2D]) -> Vec<(GridCell, Vec<usize>)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<GridCell, Vec<usize>> = BTreeMap::new();
        for (i, p) in points.iter().enumerate() {
            if let Some(cell) = self.cell_of(p) {
                map.entry(cell).or_default().push(i);
            }
        }
        map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid() -> Grid {
        Grid::new(Rect::new(0.0, 0.0, 10.0, 10.0), 5, 2)
    }

    #[test]
    fn dimensions() {
        let g = unit_grid();
        assert_eq!(g.cols(), 5);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.len(), 10);
        assert!(!g.is_empty());
    }

    #[test]
    fn cell_of_interior_point() {
        let g = unit_grid();
        assert_eq!(
            g.cell_of(&Point2D::new(0.5, 0.5)),
            Some(GridCell { col: 0, row: 0 })
        );
        assert_eq!(
            g.cell_of(&Point2D::new(9.5, 9.5)),
            Some(GridCell { col: 4, row: 1 })
        );
        assert_eq!(
            g.cell_of(&Point2D::new(4.0, 6.0)),
            Some(GridCell { col: 2, row: 1 })
        );
    }

    #[test]
    fn boundary_points_belong_to_last_cell() {
        let g = unit_grid();
        assert_eq!(
            g.cell_of(&Point2D::new(10.0, 10.0)),
            Some(GridCell { col: 4, row: 1 })
        );
    }

    #[test]
    fn outside_points_are_none() {
        let g = unit_grid();
        assert_eq!(g.cell_of(&Point2D::new(10.1, 5.0)), None);
        assert_eq!(g.cell_of(&Point2D::new(-0.1, 5.0)), None);
    }

    #[test]
    fn cell_rect_covers_its_points() {
        let g = unit_grid();
        let p = Point2D::new(3.3, 7.7);
        let cell = g.cell_of(&p).unwrap();
        assert!(g.cell_rect(cell).contains(&p));
    }

    #[test]
    fn cell_centers_are_inside_bounds() {
        let g = unit_grid();
        for col in 0..g.cols() {
            for row in 0..g.rows() {
                let c = g.cell_center(GridCell { col, row });
                assert!(g.bounds().contains(&c));
            }
        }
    }

    #[test]
    fn with_cell_size_covers_bounds() {
        let g = Grid::with_cell_size(Rect::new(0.0, 0.0, 10.0, 4.0), 3.0);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.rows(), 2);
    }

    #[test]
    fn assign_groups_points() {
        let g = unit_grid();
        let pts = vec![
            Point2D::new(0.5, 0.5),
            Point2D::new(0.7, 0.1),
            Point2D::new(9.0, 9.0),
            Point2D::new(50.0, 50.0), // outside
        ];
        let groups = g.assign(&pts);
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 3);
        let first = groups
            .iter()
            .find(|(c, _)| *c == GridCell { col: 0, row: 0 })
            .unwrap();
        assert_eq!(first.1, vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn zero_cells_panics() {
        Grid::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0, 1);
    }
}
