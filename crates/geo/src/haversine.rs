//! Great-circle distances between geostamps.
//!
//! The paper projects the Topix sources onto a plane via Multidimensional
//! Scaling of their pairwise geographic distances (Section 6.1, ref \[30\]).
//! We use the haversine formulation, which is numerically stable for the
//! city/country-scale distances involved and accurate to well under 0.5%
//! relative to a full ellipsoidal (Vincenty) solution — far below the
//! resolution that matters for burst-region mining.

use crate::point::GeoPoint;

/// Mean Earth radius in kilometers (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Great-circle distance between two geostamps, in kilometers.
///
/// # Examples
///
/// ```
/// use stb_geo::{GeoPoint, haversine_km};
/// let athens = GeoPoint::new(37.98, 23.73);
/// let riverside = GeoPoint::new(33.95, -117.40);
/// let d = haversine_km(&athens, &riverside);
/// assert!(d > 10_000.0 && d < 12_000.0);
/// ```
pub fn haversine_km(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    // Clamp guards against tiny negative round-off for antipodal points.
    2.0 * EARTH_RADIUS_KM * h.sqrt().clamp(0.0, 1.0).asin()
}

/// Builds the full symmetric matrix of pairwise great-circle distances, in
/// kilometers, for a slice of geostamps.
///
/// The result is row-major with `points.len()` rows and columns; the diagonal
/// is zero. This is the input to [`crate::classical_mds`].
pub fn pairwise_distance_matrix(points: &[GeoPoint]) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = haversine_km(&points[i], &points[j]);
            d[i][j] = dist;
            d[j][i] = dist;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(48.85, 2.35);
        assert_eq!(haversine_km(&p, &p), 0.0);
    }

    #[test]
    fn known_distance_london_paris() {
        let london = GeoPoint::new(51.5074, -0.1278);
        let paris = GeoPoint::new(48.8566, 2.3522);
        let d = haversine_km(&london, &paris);
        // Real-world value is ~343.5 km.
        assert!((d - 343.5).abs() < 5.0, "got {d}");
    }

    #[test]
    fn symmetric() {
        let a = GeoPoint::new(-33.86, 151.21);
        let b = GeoPoint::new(35.68, 139.69);
        assert!((haversine_km(&a, &b) - haversine_km(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = haversine_km(&a, &b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, expected {half}");
    }

    #[test]
    fn pairwise_matrix_shape_and_symmetry() {
        let pts = vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(10.0, 10.0),
            GeoPoint::new(-20.0, 50.0),
        ];
        let m = pairwise_distance_matrix(&pts);
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m[i].len(), 3);
            assert_eq!(m[i][i], 0.0);
            for j in 0..3 {
                assert!((m[i][j] - m[j][i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn analytic_reference_distances() {
        // One degree of longitude at the equator is exactly pi*R/180.
        let deg = haversine_km(&GeoPoint::new(0.0, 0.0), &GeoPoint::new(0.0, 1.0));
        assert!(
            (deg - std::f64::consts::PI * EARTH_RADIUS_KM / 180.0).abs() < 1e-6,
            "got {deg}"
        );
        // Pole to equator is exactly a quarter circumference.
        let quarter = haversine_km(&GeoPoint::new(90.0, 0.0), &GeoPoint::new(0.0, 0.0));
        assert!(
            (quarter - std::f64::consts::PI * EARTH_RADIUS_KM / 2.0).abs() < 1e-6,
            "got {quarter}"
        );
    }

    #[test]
    fn known_city_pair_distances() {
        // Published great-circle distances; tolerance 1% covers coordinate
        // rounding and the spherical-Earth approximation.
        let cases = [
            // (city A, city B, expected km)
            ((40.7128, -74.0060), (51.5074, -0.1278), 5570.0), // New York - London
            ((35.6762, 139.6503), (-33.8688, 151.2093), 7823.0), // Tokyo - Sydney
            ((30.0444, 31.2357), (-33.9249, 18.4241), 7239.0), // Cairo - Cape Town
            ((-12.0464, -77.0428), (9.9281, -84.0907), 2565.0), // Lima - San Jose (CR)
        ];
        for ((alat, alon), (blat, blon), expected) in cases {
            let d = haversine_km(&GeoPoint::new(alat, alon), &GeoPoint::new(blat, blon));
            assert!(
                (d - expected).abs() < expected * 0.01,
                "({alat},{alon})-({blat},{blon}): got {d}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn triangle_inequality_holds_on_sample() {
        let pts = vec![
            GeoPoint::new(37.98, 23.73),
            GeoPoint::new(51.5, -0.12),
            GeoPoint::new(40.71, -74.0),
        ];
        let m = pairwise_distance_matrix(&pts);
        assert!(m[0][2] <= m[0][1] + m[1][2] + 1e-6);
    }
}
