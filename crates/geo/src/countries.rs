//! Country gazetteer: approximate centroids of the world's countries.
//!
//! The Topix dataset used in the paper aggregates news sources per country
//! (181 countries, Sep-2008..Jul-2009). The original crawl is not publicly
//! available, so the synthetic corpus in `stb-datagen` uses this static
//! gazetteer as the set of stream geostamps. Centroids are approximate
//! (country-scale accuracy): the mining algorithms only rely on relative
//! proximity, never on sub-degree precision.

use crate::point::GeoPoint;

/// A country entry: ISO-3166 alpha-2 code, English short name, and an
/// approximate centroid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Country {
    /// ISO 3166-1 alpha-2 code.
    pub code: &'static str,
    /// English short name.
    pub name: &'static str,
    /// Approximate centroid latitude (decimal degrees).
    pub lat: f64,
    /// Approximate centroid longitude (decimal degrees).
    pub lon: f64,
}

impl Country {
    /// The country's centroid as a [`GeoPoint`].
    pub fn geostamp(&self) -> GeoPoint {
        GeoPoint::new(self.lat, self.lon)
    }
}

/// Returns the full gazetteer, sorted by ISO code.
pub fn all_countries() -> &'static [Country] {
    COUNTRIES
}

/// Looks up a country by its ISO 3166-1 alpha-2 code (case-insensitive).
pub fn by_code(code: &str) -> Option<&'static Country> {
    let upper = code.to_ascii_uppercase();
    COUNTRIES.iter().find(|c| c.code == upper)
}

/// Looks up a country by its English short name (case-insensitive).
pub fn by_name(name: &str) -> Option<&'static Country> {
    COUNTRIES.iter().find(|c| c.name.eq_ignore_ascii_case(name))
}

macro_rules! country {
    ($code:literal, $name:literal, $lat:expr, $lon:expr) => {
        Country {
            code: $code,
            name: $name,
            lat: $lat,
            lon: $lon,
        }
    };
}

/// Static gazetteer data. 181 entries, matching the number of country-level
/// streams reported for the Topix dataset.
static COUNTRIES: &[Country] = &[
    country!("AE", "United Arab Emirates", 24.0, 54.0),
    country!("AF", "Afghanistan", 33.0, 65.0),
    country!("AG", "Antigua and Barbuda", 17.05, -61.8),
    country!("AL", "Albania", 41.0, 20.0),
    country!("AM", "Armenia", 40.0, 45.0),
    country!("AO", "Angola", -12.5, 18.5),
    country!("AR", "Argentina", -34.0, -64.0),
    country!("AT", "Austria", 47.3, 13.3),
    country!("AU", "Australia", -25.0, 134.0),
    country!("AZ", "Azerbaijan", 40.5, 47.5),
    country!("BA", "Bosnia and Herzegovina", 44.0, 18.0),
    country!("BB", "Barbados", 13.2, -59.5),
    country!("BD", "Bangladesh", 24.0, 90.0),
    country!("BE", "Belgium", 50.8, 4.0),
    country!("BF", "Burkina Faso", 13.0, -2.0),
    country!("BG", "Bulgaria", 43.0, 25.0),
    country!("BH", "Bahrain", 26.0, 50.5),
    country!("BI", "Burundi", -3.5, 30.0),
    country!("BJ", "Benin", 9.5, 2.25),
    country!("BN", "Brunei", 4.5, 114.7),
    country!("BO", "Bolivia", -17.0, -65.0),
    country!("BR", "Brazil", -10.0, -55.0),
    country!("BS", "Bahamas", 24.25, -76.0),
    country!("BT", "Bhutan", 27.5, 90.5),
    country!("BW", "Botswana", -22.0, 24.0),
    country!("BY", "Belarus", 53.0, 28.0),
    country!("BZ", "Belize", 17.25, -88.75),
    country!("CA", "Canada", 56.0, -106.0),
    country!("CD", "DR Congo", -2.0, 23.0),
    country!("CF", "Central African Republic", 7.0, 21.0),
    country!("CG", "Republic of the Congo", -1.0, 15.0),
    country!("CH", "Switzerland", 47.0, 8.0),
    country!("CI", "Ivory Coast", 8.0, -5.0),
    country!("CL", "Chile", -30.0, -71.0),
    country!("CM", "Cameroon", 6.0, 12.0),
    country!("CN", "China", 35.0, 105.0),
    country!("CO", "Colombia", 4.0, -72.0),
    country!("CR", "Costa Rica", 10.0, -84.0),
    country!("CU", "Cuba", 21.5, -80.0),
    country!("CV", "Cape Verde", 16.0, -24.0),
    country!("CY", "Cyprus", 35.0, 33.0),
    country!("CZ", "Czech Republic", 49.75, 15.5),
    country!("DE", "Germany", 51.0, 9.0),
    country!("DJ", "Djibouti", 11.5, 43.0),
    country!("DK", "Denmark", 56.0, 10.0),
    country!("DO", "Dominican Republic", 19.0, -70.7),
    country!("DZ", "Algeria", 28.0, 3.0),
    country!("EC", "Ecuador", -2.0, -77.5),
    country!("EE", "Estonia", 59.0, 26.0),
    country!("EG", "Egypt", 27.0, 30.0),
    country!("ER", "Eritrea", 15.0, 39.0),
    country!("ES", "Spain", 40.0, -4.0),
    country!("ET", "Ethiopia", 8.0, 38.0),
    country!("FI", "Finland", 64.0, 26.0),
    country!("FJ", "Fiji", -18.0, 175.0),
    country!("FR", "France", 46.0, 2.0),
    country!("GA", "Gabon", -1.0, 11.75),
    country!("GB", "United Kingdom", 54.0, -2.0),
    country!("GD", "Grenada", 12.1, -61.7),
    country!("GE", "Georgia", 42.0, 43.5),
    country!("GH", "Ghana", 8.0, -2.0),
    country!("GM", "Gambia", 13.5, -15.5),
    country!("GN", "Guinea", 11.0, -10.0),
    country!("GQ", "Equatorial Guinea", 2.0, 10.0),
    country!("GR", "Greece", 39.0, 22.0),
    country!("GT", "Guatemala", 15.5, -90.25),
    country!("GW", "Guinea-Bissau", 12.0, -15.0),
    country!("GY", "Guyana", 5.0, -59.0),
    country!("HN", "Honduras", 15.0, -86.5),
    country!("HR", "Croatia", 45.2, 15.5),
    country!("HT", "Haiti", 19.0, -72.4),
    country!("HU", "Hungary", 47.0, 20.0),
    country!("ID", "Indonesia", -5.0, 120.0),
    country!("IE", "Ireland", 53.0, -8.0),
    country!("IL", "Israel", 31.5, 34.75),
    country!("IN", "India", 20.0, 77.0),
    country!("IQ", "Iraq", 33.0, 44.0),
    country!("IR", "Iran", 32.0, 53.0),
    country!("IS", "Iceland", 65.0, -18.0),
    country!("IT", "Italy", 42.8, 12.8),
    country!("JM", "Jamaica", 18.25, -77.5),
    country!("JO", "Jordan", 31.0, 36.0),
    country!("JP", "Japan", 36.0, 138.0),
    country!("KE", "Kenya", 1.0, 38.0),
    country!("KG", "Kyrgyzstan", 41.0, 75.0),
    country!("KH", "Cambodia", 13.0, 105.0),
    country!("KM", "Comoros", -12.2, 44.25),
    country!("KP", "North Korea", 40.0, 127.0),
    country!("KR", "South Korea", 37.0, 127.5),
    country!("KW", "Kuwait", 29.3, 47.65),
    country!("KZ", "Kazakhstan", 48.0, 68.0),
    country!("LA", "Laos", 18.0, 105.0),
    country!("LB", "Lebanon", 33.8, 35.8),
    country!("LC", "Saint Lucia", 13.9, -61.0),
    country!("LK", "Sri Lanka", 7.0, 81.0),
    country!("LR", "Liberia", 6.5, -9.5),
    country!("LS", "Lesotho", -29.5, 28.5),
    country!("LT", "Lithuania", 56.0, 24.0),
    country!("LU", "Luxembourg", 49.75, 6.16),
    country!("LV", "Latvia", 57.0, 25.0),
    country!("LY", "Libya", 25.0, 17.0),
    country!("MA", "Morocco", 32.0, -5.0),
    country!("MD", "Moldova", 47.0, 29.0),
    country!("ME", "Montenegro", 42.5, 19.3),
    country!("MG", "Madagascar", -20.0, 47.0),
    country!("MK", "North Macedonia", 41.8, 22.0),
    country!("ML", "Mali", 17.0, -4.0),
    country!("MM", "Myanmar", 22.0, 98.0),
    country!("MN", "Mongolia", 46.0, 105.0),
    country!("MR", "Mauritania", 20.0, -12.0),
    country!("MT", "Malta", 35.83, 14.58),
    country!("MU", "Mauritius", -20.28, 57.55),
    country!("MV", "Maldives", 3.25, 73.0),
    country!("MW", "Malawi", -13.5, 34.0),
    country!("MX", "Mexico", 23.0, -102.0),
    country!("MY", "Malaysia", 2.5, 112.5),
    country!("MZ", "Mozambique", -18.25, 35.0),
    country!("NA", "Namibia", -22.0, 17.0),
    country!("NE", "Niger", 16.0, 8.0),
    country!("NG", "Nigeria", 10.0, 8.0),
    country!("NI", "Nicaragua", 13.0, -85.0),
    country!("NL", "Netherlands", 52.5, 5.75),
    country!("NO", "Norway", 62.0, 10.0),
    country!("NP", "Nepal", 28.0, 84.0),
    country!("NZ", "New Zealand", -41.0, 174.0),
    country!("OM", "Oman", 21.0, 57.0),
    country!("PA", "Panama", 9.0, -80.0),
    country!("PE", "Peru", -10.0, -76.0),
    country!("PG", "Papua New Guinea", -6.0, 147.0),
    country!("PH", "Philippines", 13.0, 122.0),
    country!("PK", "Pakistan", 30.0, 70.0),
    country!("PL", "Poland", 52.0, 20.0),
    country!("PS", "Palestine", 31.9, 35.2),
    country!("PT", "Portugal", 39.5, -8.0),
    country!("PY", "Paraguay", -23.0, -58.0),
    country!("QA", "Qatar", 25.5, 51.25),
    country!("RO", "Romania", 46.0, 25.0),
    country!("RS", "Serbia", 44.0, 21.0),
    country!("RU", "Russia", 60.0, 100.0),
    country!("RW", "Rwanda", -2.0, 30.0),
    country!("SA", "Saudi Arabia", 25.0, 45.0),
    country!("SB", "Solomon Islands", -8.0, 159.0),
    country!("SC", "Seychelles", -4.58, 55.67),
    country!("SD", "Sudan", 15.0, 30.0),
    country!("SE", "Sweden", 62.0, 15.0),
    country!("SG", "Singapore", 1.37, 103.8),
    country!("SI", "Slovenia", 46.1, 14.8),
    country!("SK", "Slovakia", 48.7, 19.5),
    country!("SL", "Sierra Leone", 8.5, -11.5),
    country!("SN", "Senegal", 14.0, -14.0),
    country!("SO", "Somalia", 10.0, 49.0),
    country!("SR", "Suriname", 4.0, -56.0),
    country!("ST", "Sao Tome and Principe", 1.0, 7.0),
    country!("SV", "El Salvador", 13.8, -88.9),
    country!("SY", "Syria", 35.0, 38.0),
    country!("SZ", "Eswatini", -26.5, 31.5),
    country!("TD", "Chad", 15.0, 19.0),
    country!("TG", "Togo", 8.0, 1.17),
    country!("TH", "Thailand", 15.0, 100.0),
    country!("TJ", "Tajikistan", 39.0, 71.0),
    country!("TL", "Timor-Leste", -8.8, 125.9),
    country!("TM", "Turkmenistan", 40.0, 60.0),
    country!("TN", "Tunisia", 34.0, 9.0),
    country!("TO", "Tonga", -20.0, -175.0),
    country!("TR", "Turkey", 39.0, 35.0),
    country!("TT", "Trinidad and Tobago", 10.5, -61.3),
    country!("TW", "Taiwan", 23.5, 121.0),
    country!("TZ", "Tanzania", -6.0, 35.0),
    country!("UA", "Ukraine", 49.0, 32.0),
    country!("UG", "Uganda", 1.0, 32.0),
    country!("US", "United States", 38.0, -97.0),
    country!("UY", "Uruguay", -33.0, -56.0),
    country!("UZ", "Uzbekistan", 41.0, 64.0),
    country!("VE", "Venezuela", 8.0, -66.0),
    country!("VN", "Vietnam", 16.0, 108.0),
    country!("VU", "Vanuatu", -16.0, 167.0),
    country!("WS", "Samoa", -13.6, -172.3),
    country!("YE", "Yemen", 15.0, 48.0),
    country!("ZA", "South Africa", -29.0, 24.0),
    country!("ZM", "Zambia", -15.0, 30.0),
    country!("ZW", "Zimbabwe", -19.0, 30.0),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn has_181_countries() {
        assert_eq!(all_countries().len(), 181);
    }

    #[test]
    fn codes_are_unique_and_uppercase() {
        let mut seen = HashSet::new();
        for c in all_countries() {
            assert_eq!(c.code.len(), 2);
            assert_eq!(c.code, c.code.to_ascii_uppercase());
            assert!(seen.insert(c.code), "duplicate code {}", c.code);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut seen = HashSet::new();
        for c in all_countries() {
            assert!(seen.insert(c.name), "duplicate name {}", c.name);
        }
    }

    #[test]
    fn coordinates_in_range() {
        for c in all_countries() {
            assert!(c.lat >= -90.0 && c.lat <= 90.0, "{}", c.code);
            assert!(c.lon >= -180.0 && c.lon <= 180.0, "{}", c.code);
        }
    }

    #[test]
    fn lookup_by_code_and_name() {
        assert_eq!(by_code("gr").unwrap().name, "Greece");
        assert_eq!(by_code("GR").unwrap().name, "Greece");
        assert_eq!(by_name("zimbabwe").unwrap().code, "ZW");
        assert!(by_code("XX").is_none());
        assert!(by_name("Atlantis").is_none());
    }

    #[test]
    fn geostamps_are_valid() {
        for c in all_countries() {
            let g = c.geostamp();
            assert_eq!(g.lat, c.lat);
            assert_eq!(g.lon, c.lon);
        }
    }

    #[test]
    fn specific_countries_present_for_major_events() {
        // Countries referenced by the Major Events List of the paper.
        for name in [
            "United States",
            "Zimbabwe",
            "Madagascar",
            "Peru",
            "Honduras",
            "Guinea-Bissau",
            "Comoros",
            "Somalia",
            "Australia",
            "France",
            "Brazil",
            "Israel",
            "DR Congo",
        ] {
            assert!(by_name(name).is_some(), "missing {name}");
        }
    }
}
