//! Property-based tests for the geographic substrate.

use proptest::prelude::*;
use stb_geo::haversine::pairwise_distance_matrix;
use stb_geo::mds::stress;
use stb_geo::{classical_mds, haversine_km, GeoPoint, Grid, Mbr, Point2D, Rect, SymMatrix};

fn arb_geopoint() -> impl Strategy<Value = GeoPoint> {
    (-85.0f64..85.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

fn arb_point2d() -> impl Strategy<Value = Point2D> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point2D::new(x, y))
}

proptest! {
    #[test]
    fn haversine_is_symmetric_and_nonnegative(a in arb_geopoint(), b in arb_geopoint()) {
        let d1 = haversine_km(&a, &b);
        let d2 = haversine_km(&b, &a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
        // No two points on Earth are farther apart than half the circumference.
        prop_assert!(d1 <= std::f64::consts::PI * stb_geo::EARTH_RADIUS_KM + 1.0);
    }

    #[test]
    fn haversine_triangle_inequality(a in arb_geopoint(), b in arb_geopoint(), c in arb_geopoint()) {
        let ab = haversine_km(&a, &b);
        let bc = haversine_km(&b, &c);
        let ac = haversine_km(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn rect_union_contains_both(p1 in arb_point2d(), p2 in arb_point2d(), p3 in arb_point2d(), p4 in arb_point2d()) {
        let a = Rect::new(p1.x, p1.y, p2.x, p2.y);
        let b = Rect::new(p3.x, p3.y, p4.x, p4.y);
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn mbr_contains_all_inputs(pts in prop::collection::vec(arb_point2d(), 1..40)) {
        let mbr = Mbr::from_points(pts.clone());
        let r = mbr.rect().unwrap();
        for p in &pts {
            prop_assert!(r.contains(p));
        }
        prop_assert_eq!(mbr.count_contained(&pts), pts.len());
    }

    #[test]
    fn grid_cell_rect_contains_point(pts in prop::collection::vec(arb_point2d(), 1..30), cols in 1usize..10, rows in 1usize..10) {
        let bounds = Rect::new(-1000.0, -1000.0, 1000.0, 1000.0);
        let grid = Grid::new(bounds, cols, rows);
        for p in &pts {
            let cell = grid.cell_of(p).expect("point inside bounds");
            prop_assert!(grid.cell_rect(cell).contains(p));
        }
    }

    #[test]
    fn grid_assign_partitions_points(pts in prop::collection::vec(arb_point2d(), 0..50)) {
        let bounds = Rect::new(-1000.0, -1000.0, 1000.0, 1000.0);
        let grid = Grid::new(bounds, 7, 5);
        let groups = grid.assign(&pts);
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        prop_assert_eq!(total, pts.len());
        // Every index appears exactly once.
        let mut seen = vec![false; pts.len()];
        for (_, idxs) in &groups {
            for &i in idxs {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
    }

    #[test]
    fn eigen_reconstructs_trace(vals in prop::collection::vec(-10.0f64..10.0, 2..6)) {
        // Build a symmetric matrix with known trace from random entries.
        let n = vals.len();
        let mut m = SymMatrix::zeros(n);
        for i in 0..n {
            m.set(i, i, vals[i]);
            for j in (i + 1)..n {
                m.set(i, j, (vals[i] - vals[j]) * 0.1);
            }
        }
        let e = m.eigen_jacobi();
        let trace: f64 = vals.iter().sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6);
    }

    #[test]
    fn mds_embedding_is_finite_and_low_stress_for_planar_inputs(
        pts in prop::collection::vec(arb_point2d(), 3..12)
    ) {
        // Distances generated from actual planar points must embed (almost)
        // perfectly in 2-D.
        let n = pts.len();
        let mut d = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                d[i][j] = pts[i].distance(&pts[j]);
            }
        }
        let emb = classical_mds(&d).unwrap();
        prop_assert_eq!(emb.len(), n);
        for p in &emb {
            prop_assert!(p.x.is_finite() && p.y.is_finite());
        }
        prop_assert!(stress(&d, &emb) < 1e-4);
    }

    #[test]
    fn mds_on_geographic_distances_is_finite(pts in prop::collection::vec(arb_geopoint(), 3..10)) {
        let d = pairwise_distance_matrix(&pts);
        let emb = classical_mds(&d).unwrap();
        prop_assert_eq!(emb.len(), pts.len());
        for p in &emb {
            prop_assert!(p.x.is_finite() && p.y.is_finite());
        }
    }
}
