//! Property-based tests for the search engine: the Threshold Algorithm must
//! always agree with exhaustive evaluation, the serving path (prebuilt
//! index + query cache) must be indistinguishable from cold evaluation, and
//! a spatiotemporally filtered `Query` must be byte-identical to an
//! exhaustive search whose pattern set was post-filtered by geometry.

use proptest::prelude::*;
use proptest::TestCaseError;
use stb_core::{CombinatorialPattern, PatternGeometry, RegionalPattern};
use stb_corpus::{Collection, CollectionBuilder, DocId, StreamId, TermId};
use stb_geo::{GeoPoint, Rect};
use stb_search::threshold::exhaustive_topk;
use stb_search::{
    threshold_topk, BurstySearchEngine, EngineConfig, InvertedIndex, NoPatternPolicy, Query,
    QueryKey, SearchResult,
};
use stb_timeseries::TimeInterval;
use std::collections::HashMap;

fn arb_index() -> impl Strategy<Value = InvertedIndex> {
    // Up to 4 terms, up to 30 docs, sparse random scores.
    prop::collection::vec(
        (0u32..4, 0u32..30, -1.0f64..5.0).prop_map(|(t, d, s)| (TermId(t), DocId(d), s)),
        0..80,
    )
    .prop_map(|entries| {
        let mut idx = InvertedIndex::new();
        for (t, d, s) in entries {
            idx.insert(t, d, s);
        }
        idx.finalize();
        idx
    })
}

/// Document blueprint: (stream, timestamp, bag of (term, count)).
type DocSpec = (u32, usize, Vec<(u32, u32)>);
/// Pattern blueprint: (term, stream bitmask, start, extra length, score).
type PatternSpec = (u32, u8, usize, usize, f64);
/// Regional-pattern blueprint: (term, stream bitmask, start, extra length,
/// score, (rect corner, rect extent)).
type RegionalSpec = (u32, u8, usize, usize, f64, ((f64, f64), (f64, f64)));
/// Spatiotemporal filter blueprint: optional (start, extra) window and
/// optional (corner, extent) region.
type FilterSpec = (Option<(usize, usize)>, Option<((f64, f64), (f64, f64))>);

const N_STREAMS: u32 = 4;
const N_TERMS: u32 = 4;
const TIMELINE: usize = 8;

fn arb_docs() -> impl Strategy<Value = Vec<DocSpec>> {
    prop::collection::vec(
        (
            0..N_STREAMS,
            0..TIMELINE,
            prop::collection::vec((0..N_TERMS, 1u32..9), 1..4),
        ),
        1..40,
    )
}

fn arb_patterns() -> impl Strategy<Value = Vec<PatternSpec>> {
    prop::collection::vec(
        (0..N_TERMS, 1u8..16, 0..TIMELINE, 0usize..4, 0.1f64..3.0),
        0..8,
    )
}

fn arb_regional_patterns() -> impl Strategy<Value = Vec<RegionalSpec>> {
    prop::collection::vec(
        (
            0..N_TERMS,
            1u8..16,
            0..TIMELINE,
            0usize..4,
            0.1f64..3.0,
            ((-1.0f64..2.0, -1.0f64..5.0), (0.0f64..2.5, 0.0f64..4.0)),
        ),
        0..8,
    )
}

fn arb_filter() -> impl Strategy<Value = FilterSpec> {
    (
        prop::option::of((0..TIMELINE, 0usize..4)),
        prop::option::of(((-1.0f64..2.0, -1.0f64..5.0), (0.0f64..2.5, 0.0f64..4.0))),
    )
}

fn build_collection(docs: &[DocSpec]) -> Collection {
    let mut b = CollectionBuilder::new(TIMELINE);
    // Intern the whole vocabulary up front so TermId(0..N_TERMS) all exist.
    for t in 0..N_TERMS {
        b.dict_mut().intern(&format!("t{t}"));
    }
    for s in 0..N_STREAMS {
        b.add_stream(&format!("s{s}"), GeoPoint::new(f64::from(s), 0.0));
    }
    for (stream, ts, counts) in docs {
        let mut bag = HashMap::new();
        for (term, count) in counts {
            *bag.entry(TermId(*term)).or_insert(0) += *count;
        }
        b.add_document(StreamId(*stream), *ts, bag);
    }
    b.build()
}

fn spec_streams(mask: u8) -> Vec<StreamId> {
    (0..N_STREAMS)
        .filter(|s| mask & (1 << s) != 0)
        .map(StreamId)
        .collect()
}

fn spec_timeframe(start: usize, extra: usize) -> TimeInterval {
    TimeInterval::new(start, (start + extra).min(TIMELINE - 1))
}

fn patterns_by_term(specs: &[PatternSpec]) -> HashMap<TermId, Vec<CombinatorialPattern>> {
    let mut by_term: HashMap<TermId, Vec<CombinatorialPattern>> = HashMap::new();
    for &(term, mask, start, extra, score) in specs {
        by_term
            .entry(TermId(term))
            .or_default()
            .push(CombinatorialPattern::new(
                spec_streams(mask),
                spec_timeframe(start, extra),
                score,
                vec![],
            ));
    }
    by_term
}

fn regional_by_term(specs: &[RegionalSpec]) -> HashMap<TermId, Vec<RegionalPattern>> {
    let mut by_term: HashMap<TermId, Vec<RegionalPattern>> = HashMap::new();
    for &(term, mask, start, extra, score, ((x, y), (w, h))) in specs {
        by_term
            .entry(TermId(term))
            .or_default()
            .push(RegionalPattern::new(
                Rect::new(x, y, x + w, y + h),
                spec_streams(mask),
                spec_timeframe(start, extra),
                score,
            ));
    }
    by_term
}

fn filter_query(base: Query, filter: &FilterSpec) -> Query {
    let mut q = base;
    if let Some((start, extra)) = filter.0 {
        q = q.time_window(start..=(start + extra).min(TIMELINE - 1));
    }
    if let Some(((x, y), (w, h))) = filter.1 {
        q = q.region(Rect::new(x, y, x + w, y + h));
    }
    q
}

/// Drops every pattern that fails the filter, using the same geometry the
/// engine filters by (`PatternGeometry` over the collection's positions) —
/// the oracle the filtered query path is checked against.
fn post_filter<P: PatternGeometry + Clone>(
    by_term: &HashMap<TermId, Vec<P>>,
    collection: &Collection,
    filter: &FilterSpec,
) -> HashMap<TermId, Vec<P>> {
    let positions = collection.positions();
    let window = filter.0.map(|(start, extra)| spec_timeframe(start, extra));
    let region = filter
        .1
        .map(|((x, y), (w, h))| Rect::new(x, y, x + w, y + h));
    by_term
        .iter()
        .map(|(&term, patterns)| {
            let kept: Vec<P> = patterns
                .iter()
                .filter(|p| {
                    window.is_none_or(|w| p.timeframe().overlaps(&w))
                        && region.is_none_or(|r| {
                            p.region(&positions).is_some_and(|pr| pr.intersects(&r))
                        })
                })
                .cloned()
                .collect();
            (term, kept)
        })
        .collect()
}

fn sample_queries() -> [Vec<TermId>; 4] {
    [
        vec![TermId(0)],
        vec![TermId(1), TermId(2)],
        vec![TermId(0), TermId(3)],
        vec![TermId(0), TermId(1), TermId(2), TermId(3)],
    ]
}

fn config_for(zero: bool) -> EngineConfig {
    EngineConfig::builder()
        .no_pattern(if zero {
            NoPatternPolicy::Zero
        } else {
            NoPatternPolicy::Exclude
        })
        .build()
}

fn run(engine: &BurstySearchEngine, terms: &[TermId], k: usize) -> Vec<SearchResult> {
    engine
        .query(&Query::terms(terms.iter().copied()).top_k(k))
        .map(|r| r.results)
        .unwrap_or_default()
}

fn assert_same(a: &[SearchResult], b: &[SearchResult]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.doc, y.doc);
        prop_assert!((x.score - y.score).abs() < 1e-9);
    }
    Ok(())
}

/// Byte-identical comparison: same documents, bitwise-equal scores.
fn assert_identical(a: &[SearchResult], b: &[SearchResult]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.doc, y.doc);
        prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
    Ok(())
}

proptest! {
    #[test]
    fn cached_and_uncached_search_return_identical_topk(
        docs in arb_docs(),
        specs in arb_patterns(),
        k in 1usize..8,
        zero in proptest::bool::ANY
    ) {
        let collection = build_collection(&docs);
        let by_term = patterns_by_term(&specs);
        let config = config_for(zero);

        // Reference: cold engine, caching disabled — every search is a
        // from-scratch evaluation.
        let mut cold = BurstySearchEngine::new(&collection, config);
        cold.set_cache_capacity(0);
        cold.set_patterns_from(&by_term);

        // Serving path: prebuilt index + result cache.
        let mut hot = BurstySearchEngine::new(&collection, config);
        hot.set_patterns_from(&by_term);
        hot.finalize_with_threads(2);

        // Two rounds: the second round is answered from the cache and must
        // still agree with the cold engine.
        for _round in 0..2 {
            for query in &sample_queries() {
                assert_same(&run(&cold, query, k), &run(&hot, query, k))?;
            }
        }
        prop_assert!(hot.metrics().cache_hits >= sample_queries().len() as u64);
    }

    #[test]
    fn set_patterns_after_finalize_invalidates_stale_entries(
        docs in arb_docs(),
        specs in arb_patterns(),
        k in 1usize..8
    ) {
        let collection = build_collection(&docs);
        let mut by_term = patterns_by_term(&specs);
        let config = EngineConfig::default();

        let mut hot = BurstySearchEngine::new(&collection, config);
        hot.set_patterns_from(&by_term);
        hot.finalize_with_threads(2);
        // Populate the cache with results for the original patterns.
        for query in &sample_queries() {
            let _ = run(&hot, query, k);
        }

        // Change TermId(0)'s patterns: double scores, or create a pattern
        // where none existed.
        let entry = by_term.entry(TermId(0)).or_default();
        if entry.is_empty() {
            entry.push(CombinatorialPattern::new(
                (0..N_STREAMS).map(StreamId).collect(),
                TimeInterval::new(0, TIMELINE - 1),
                1.0,
                vec![],
            ));
        } else {
            for p in entry.iter_mut() {
                p.score *= 2.0;
            }
        }
        hot.set_patterns(TermId(0), &by_term[&TermId(0)]);

        // A fresh cold engine with the updated patterns is the oracle: the
        // finalized engine must serve the new results, not stale cache hits.
        let mut reference = BurstySearchEngine::new(&collection, config);
        reference.set_cache_capacity(0);
        reference.set_patterns_from(&by_term);
        for query in &sample_queries() {
            assert_same(&run(&reference, query, k), &run(&hot, query, k))?;
        }
    }

    /// The tentpole equivalence: a `Query` with time/region filters equals
    /// an exhaustive (unfiltered) search over the geometrically
    /// post-filtered pattern set, byte-identically — for combinatorial
    /// (MBR-located) patterns, with the cache on and off, finalized or not.
    #[test]
    fn filtered_query_matches_postfilter_oracle_combinatorial(
        docs in arb_docs(),
        specs in arb_patterns(),
        filter in arb_filter(),
        k in 1usize..8,
        zero in proptest::bool::ANY,
        finalized in proptest::bool::ANY
    ) {
        let collection = build_collection(&docs);
        let by_term = patterns_by_term(&specs);
        let config = config_for(zero);

        let mut engine = BurstySearchEngine::new(&collection, config);
        engine.set_patterns_from(&by_term);
        if finalized {
            engine.finalize_with_threads(2);
        }
        let mut uncached = BurstySearchEngine::new(&collection, config);
        uncached.set_cache_capacity(0);
        uncached.set_patterns_from(&by_term);

        // Oracle: unfiltered engine over the post-filtered pattern set.
        let mut oracle = BurstySearchEngine::new(&collection, config);
        oracle.set_cache_capacity(0);
        oracle.set_patterns_from(&post_filter(&by_term, &collection, &filter));

        for terms in &sample_queries() {
            let q = filter_query(Query::terms(terms.iter().copied()).top_k(k), &filter);
            let expect = run(&oracle, terms, k);
            // Cached engine, twice (second round from the cache).
            for _ in 0..2 {
                assert_identical(&engine.query(&q).unwrap().results, &expect)?;
            }
            assert_identical(&uncached.query(&q).unwrap().results, &expect)?;
        }
    }

    /// Same equivalence for regional (`STLocal`-shaped) patterns, whose
    /// geometry is the mined rectangle rather than a stream MBR.
    #[test]
    fn filtered_query_matches_postfilter_oracle_regional(
        docs in arb_docs(),
        specs in arb_regional_patterns(),
        filter in arb_filter(),
        k in 1usize..8,
        zero in proptest::bool::ANY,
        finalized in proptest::bool::ANY
    ) {
        let collection = build_collection(&docs);
        let by_term = regional_by_term(&specs);
        let config = config_for(zero);

        let mut engine = BurstySearchEngine::new(&collection, config);
        engine.set_patterns_from(&by_term);
        if finalized {
            engine.finalize_with_threads(2);
        }
        let mut oracle = BurstySearchEngine::new(&collection, config);
        oracle.set_cache_capacity(0);
        oracle.set_patterns_from(&post_filter(&by_term, &collection, &filter));

        for terms in &sample_queries() {
            let q = filter_query(Query::terms(terms.iter().copied()).top_k(k), &filter);
            let expect = run(&oracle, terms, k);
            for _ in 0..2 {
                assert_identical(&engine.query(&q).unwrap().results, &expect)?;
            }
        }
    }

    /// Queries differing only in their window/region must never share a
    /// cache entry: interleaving differently-filtered queries on one cached
    /// engine returns exactly what a cache-disabled engine returns.
    #[test]
    fn differently_filtered_queries_never_collide_in_the_cache(
        docs in arb_docs(),
        specs in arb_patterns(),
        filters in prop::collection::vec(arb_filter(), 2..5),
        k in 1usize..8
    ) {
        let collection = build_collection(&docs);
        let by_term = patterns_by_term(&specs);
        let config = EngineConfig::default();

        let mut cached = BurstySearchEngine::new(&collection, config);
        cached.set_patterns_from(&by_term);
        cached.finalize_with_threads(2);
        let mut uncached = BurstySearchEngine::new(&collection, config);
        uncached.set_cache_capacity(0);
        uncached.set_patterns_from(&by_term);

        let terms = vec![TermId(0), TermId(1)];
        // Two interleaved rounds so every filter variant both populates and
        // re-reads the cache with the others in between.
        for _round in 0..2 {
            for filter in &filters {
                let q = filter_query(Query::terms(terms.iter().copied()).top_k(k), filter);
                assert_identical(
                    &cached.query(&q).unwrap().results,
                    &uncached.query(&q).unwrap().results,
                )?;
            }
        }
        // And the canonical keys themselves are pairwise distinct whenever
        // the canonicalized filters are (different specs may clamp to the
        // same window, which legitimately shares a key).
        let canonical: Vec<(Option<TimeInterval>, Option<Rect>)> = filters
            .iter()
            .map(|f| {
                (
                    f.0.map(|(s, e)| spec_timeframe(s, e)),
                    f.1.map(|((x, y), (w, h))| Rect::new(x, y, x + w, y + h)),
                )
            })
            .collect();
        let keys: Vec<QueryKey> = canonical
            .iter()
            .map(|&(window, region)| QueryKey::canonical(&terms, k, config, window, region))
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate().skip(i + 1) {
                if canonical[i] != canonical[j] {
                    prop_assert_ne!(a, b);
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn threshold_algorithm_matches_exhaustive(
        idx in arb_index(),
        k in 1usize..12,
        n_query in 1usize..4,
        exclude in proptest::bool::ANY
    ) {
        let query: Vec<TermId> = (0..n_query as u32).map(TermId).collect();
        let policy = if exclude { NoPatternPolicy::Exclude } else { NoPatternPolicy::Zero };
        let ta = threshold_topk(&idx, &query, k, policy);
        let ex = exhaustive_topk(&idx, &query, k, policy);
        prop_assert_eq!(ta.len(), ex.len());
        for (a, b) in ta.iter().zip(&ex) {
            // Scores must agree exactly; document identity may differ only on
            // exact score ties, which both sides break by doc id.
            prop_assert!((a.score - b.score).abs() < 1e-9);
            prop_assert_eq!(a.doc, b.doc);
        }
    }

    #[test]
    fn results_are_sorted_positive_and_unique(idx in arb_index(), k in 1usize..12) {
        let query = vec![TermId(0), TermId(1), TermId(2)];
        let results = threshold_topk(&idx, &query, k, NoPatternPolicy::Zero);
        prop_assert!(results.len() <= k);
        for w in results.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-12);
        }
        let mut docs: Vec<DocId> = results.iter().map(|r| r.doc).collect();
        let before = docs.len();
        docs.sort();
        docs.dedup();
        prop_assert_eq!(docs.len(), before);
        for r in &results {
            prop_assert!(r.score > 0.0);
        }
    }
}
