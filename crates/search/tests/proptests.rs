//! Property-based tests for the search engine: the Threshold Algorithm must
//! always agree with exhaustive evaluation.

use proptest::prelude::*;
use stb_corpus::{DocId, TermId};
use stb_search::threshold::exhaustive_topk;
use stb_search::{threshold_topk, InvertedIndex, NoPatternPolicy};

fn arb_index() -> impl Strategy<Value = InvertedIndex> {
    // Up to 4 terms, up to 30 docs, sparse random scores.
    prop::collection::vec(
        (0u32..4, 0u32..30, -1.0f64..5.0).prop_map(|(t, d, s)| (TermId(t), DocId(d), s)),
        0..80,
    )
    .prop_map(|entries| {
        let mut idx = InvertedIndex::new();
        for (t, d, s) in entries {
            idx.insert(t, d, s);
        }
        idx.finalize();
        idx
    })
}

proptest! {
    #[test]
    fn threshold_algorithm_matches_exhaustive(
        idx in arb_index(),
        k in 1usize..12,
        n_query in 1usize..4,
        exclude in proptest::bool::ANY
    ) {
        let query: Vec<TermId> = (0..n_query as u32).map(TermId).collect();
        let policy = if exclude { NoPatternPolicy::Exclude } else { NoPatternPolicy::Zero };
        let ta = threshold_topk(&idx, &query, k, policy);
        let ex = exhaustive_topk(&idx, &query, k, policy);
        prop_assert_eq!(ta.len(), ex.len());
        for (a, b) in ta.iter().zip(&ex) {
            // Scores must agree exactly; document identity may differ only on
            // exact score ties, which both sides break by doc id.
            prop_assert!((a.score - b.score).abs() < 1e-9);
            prop_assert_eq!(a.doc, b.doc);
        }
    }

    #[test]
    fn results_are_sorted_positive_and_unique(idx in arb_index(), k in 1usize..12) {
        let query = vec![TermId(0), TermId(1), TermId(2)];
        let results = threshold_topk(&idx, &query, k, NoPatternPolicy::Zero);
        prop_assert!(results.len() <= k);
        for w in results.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-12);
        }
        let mut docs: Vec<DocId> = results.iter().map(|r| r.doc).collect();
        let before = docs.len();
        docs.sort();
        docs.dedup();
        prop_assert_eq!(docs.len(), before);
        for r in &results {
            prop_assert!(r.score > 0.0);
        }
    }
}
