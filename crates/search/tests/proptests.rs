//! Property-based tests for the search engine: the Threshold Algorithm must
//! always agree with exhaustive evaluation, and the serving path (prebuilt
//! index + query cache) must be indistinguishable from cold evaluation.

use proptest::prelude::*;
use proptest::TestCaseError;
use stb_core::CombinatorialPattern;
use stb_corpus::{Collection, CollectionBuilder, DocId, StreamId, TermId};
use stb_geo::GeoPoint;
use stb_search::threshold::exhaustive_topk;
use stb_search::{
    threshold_topk, BurstySearchEngine, EngineConfig, InvertedIndex, NoPatternPolicy,
};
use stb_timeseries::TimeInterval;
use std::collections::HashMap;

fn arb_index() -> impl Strategy<Value = InvertedIndex> {
    // Up to 4 terms, up to 30 docs, sparse random scores.
    prop::collection::vec(
        (0u32..4, 0u32..30, -1.0f64..5.0).prop_map(|(t, d, s)| (TermId(t), DocId(d), s)),
        0..80,
    )
    .prop_map(|entries| {
        let mut idx = InvertedIndex::new();
        for (t, d, s) in entries {
            idx.insert(t, d, s);
        }
        idx.finalize();
        idx
    })
}

/// Document blueprint: (stream, timestamp, bag of (term, count)).
type DocSpec = (u32, usize, Vec<(u32, u32)>);
/// Pattern blueprint: (term, stream bitmask, start, extra length, score).
type PatternSpec = (u32, u8, usize, usize, f64);

const N_STREAMS: u32 = 4;
const N_TERMS: u32 = 4;
const TIMELINE: usize = 8;

fn arb_docs() -> impl Strategy<Value = Vec<DocSpec>> {
    prop::collection::vec(
        (
            0..N_STREAMS,
            0..TIMELINE,
            prop::collection::vec((0..N_TERMS, 1u32..9), 1..4),
        ),
        1..40,
    )
}

fn arb_patterns() -> impl Strategy<Value = Vec<PatternSpec>> {
    prop::collection::vec(
        (0..N_TERMS, 1u8..16, 0..TIMELINE, 0usize..4, 0.1f64..3.0),
        0..8,
    )
}

fn build_collection(docs: &[DocSpec]) -> Collection {
    let mut b = CollectionBuilder::new(TIMELINE);
    // Intern the whole vocabulary up front so TermId(0..N_TERMS) all exist.
    for t in 0..N_TERMS {
        b.dict_mut().intern(&format!("t{t}"));
    }
    for s in 0..N_STREAMS {
        b.add_stream(&format!("s{s}"), GeoPoint::new(f64::from(s), 0.0));
    }
    for (stream, ts, counts) in docs {
        let mut bag = HashMap::new();
        for (term, count) in counts {
            *bag.entry(TermId(*term)).or_insert(0) += *count;
        }
        b.add_document(StreamId(*stream), *ts, bag);
    }
    b.build()
}

fn patterns_by_term(specs: &[PatternSpec]) -> HashMap<TermId, Vec<CombinatorialPattern>> {
    let mut by_term: HashMap<TermId, Vec<CombinatorialPattern>> = HashMap::new();
    for &(term, mask, start, extra, score) in specs {
        let streams: Vec<StreamId> = (0..N_STREAMS)
            .filter(|s| mask & (1 << s) != 0)
            .map(StreamId)
            .collect();
        let timeframe = TimeInterval::new(start, (start + extra).min(TIMELINE - 1));
        by_term
            .entry(TermId(term))
            .or_default()
            .push(CombinatorialPattern::new(streams, timeframe, score, vec![]));
    }
    by_term
}

fn sample_queries() -> [Vec<TermId>; 4] {
    [
        vec![TermId(0)],
        vec![TermId(1), TermId(2)],
        vec![TermId(0), TermId(3)],
        vec![TermId(0), TermId(1), TermId(2), TermId(3)],
    ]
}

fn assert_same(
    a: &[stb_search::SearchResult],
    b: &[stb_search::SearchResult],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.doc, y.doc);
        prop_assert!((x.score - y.score).abs() < 1e-9);
    }
    Ok(())
}

proptest! {
    #[test]
    fn cached_and_uncached_search_return_identical_topk(
        docs in arb_docs(),
        specs in arb_patterns(),
        k in 1usize..8,
        zero in proptest::bool::ANY
    ) {
        let collection = build_collection(&docs);
        let by_term = patterns_by_term(&specs);
        let config = EngineConfig {
            no_pattern: if zero { NoPatternPolicy::Zero } else { NoPatternPolicy::Exclude },
            ..Default::default()
        };

        // Reference: cold engine, caching disabled — every search is a
        // from-scratch evaluation.
        let mut cold = BurstySearchEngine::new(&collection, config);
        cold.set_cache_capacity(0);
        cold.set_patterns_from(&by_term);

        // Serving path: prebuilt index + result cache.
        let mut hot = BurstySearchEngine::new(&collection, config);
        hot.set_patterns_from(&by_term);
        hot.finalize_with_threads(2);

        // Two rounds: the second round is answered from the cache and must
        // still agree with the cold engine.
        for _round in 0..2 {
            for query in &sample_queries() {
                assert_same(&cold.search(query, k), &hot.search(query, k))?;
            }
        }
        prop_assert!(hot.cache_hits() >= sample_queries().len() as u64);
    }

    #[test]
    fn set_patterns_after_finalize_invalidates_stale_entries(
        docs in arb_docs(),
        specs in arb_patterns(),
        k in 1usize..8
    ) {
        let collection = build_collection(&docs);
        let mut by_term = patterns_by_term(&specs);
        let config = EngineConfig::default();

        let mut hot = BurstySearchEngine::new(&collection, config);
        hot.set_patterns_from(&by_term);
        hot.finalize_with_threads(2);
        // Populate the cache with results for the original patterns.
        for query in &sample_queries() {
            let _ = hot.search(query, k);
        }

        // Change TermId(0)'s patterns: double scores, or create a pattern
        // where none existed.
        let entry = by_term.entry(TermId(0)).or_default();
        if entry.is_empty() {
            entry.push(CombinatorialPattern::new(
                (0..N_STREAMS).map(StreamId).collect(),
                TimeInterval::new(0, TIMELINE - 1),
                1.0,
                vec![],
            ));
        } else {
            for p in entry.iter_mut() {
                p.score *= 2.0;
            }
        }
        hot.set_patterns(TermId(0), &by_term[&TermId(0)]);

        // A fresh cold engine with the updated patterns is the oracle: the
        // finalized engine must serve the new results, not stale cache hits.
        let mut reference = BurstySearchEngine::new(&collection, config);
        reference.set_cache_capacity(0);
        reference.set_patterns_from(&by_term);
        for query in &sample_queries() {
            assert_same(&reference.search(query, k), &hot.search(query, k))?;
        }
    }
}

proptest! {
    #[test]
    fn threshold_algorithm_matches_exhaustive(
        idx in arb_index(),
        k in 1usize..12,
        n_query in 1usize..4,
        exclude in proptest::bool::ANY
    ) {
        let query: Vec<TermId> = (0..n_query as u32).map(TermId).collect();
        let policy = if exclude { NoPatternPolicy::Exclude } else { NoPatternPolicy::Zero };
        let ta = threshold_topk(&idx, &query, k, policy);
        let ex = exhaustive_topk(&idx, &query, k, policy);
        prop_assert_eq!(ta.len(), ex.len());
        for (a, b) in ta.iter().zip(&ex) {
            // Scores must agree exactly; document identity may differ only on
            // exact score ties, which both sides break by doc id.
            prop_assert!((a.score - b.score).abs() < 1e-9);
            prop_assert_eq!(a.doc, b.doc);
        }
    }

    #[test]
    fn results_are_sorted_positive_and_unique(idx in arb_index(), k in 1usize..12) {
        let query = vec![TermId(0), TermId(1), TermId(2)];
        let results = threshold_topk(&idx, &query, k, NoPatternPolicy::Zero);
        prop_assert!(results.len() <= k);
        for w in results.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-12);
        }
        let mut docs: Vec<DocId> = results.iter().map(|r| r.doc).collect();
        let before = docs.len();
        docs.sort();
        docs.dedup();
        prop_assert_eq!(docs.len(), before);
        for r in &results {
            prop_assert!(r.score > 0.0);
        }
    }
}
