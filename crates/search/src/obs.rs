//! Observability hooks for the serving path.
//!
//! [`SearchObs`] bundles every metric the query hot path records — the
//! query-latency histogram, the Threshold-Algorithm scan histogram, the
//! sampled trace ring, and the slow-query log — around one shared
//! [`ObsRegistry`]. It is attached to a [`crate::ServingFront`] (or a
//! standalone [`crate::BurstySearchEngine`]) once at wiring time via
//! `attach_obs`; un-attached engines skip instrumentation entirely (one
//! atomic load and a branch per query), which is the "compiled-out"
//! baseline the `bench_obs` overhead gate compares against.
//!
//! Recording obeys the crate's lock-free serving discipline: histograms
//! and counters are relaxed atomics, trace/slow-log capture claims a ring
//! slot with a `try_lock` and drops the sample on contention. Nothing on
//! the query path ever blocks another reader.

use crate::cache::QueryKey;
use crate::query::QueryStats;
use stb_obs::{
    Counter, LatencyHistogram, ObsRegistry, Sampler, SlowQueryLog, SlowQueryRecord, SpanClock,
    SpanKind, TraceId, TraceKind, TraceRecord, TraceRing,
};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Construction parameters for [`SearchObs`].
#[derive(Debug, Clone)]
pub struct SearchObsConfig {
    /// Sample one query trace in this many queries into the trace ring
    /// (0 disables trace sampling; slow queries are always considered).
    pub trace_sample_every: u64,
    /// Capacity of the sampled trace ring.
    pub trace_capacity: usize,
    /// Queries at or above this latency enter the slow-query log. The
    /// threshold is runtime-adjustable afterwards via
    /// [`SlowQueryLog::set_threshold`].
    pub slow_query_threshold: Duration,
    /// Capacity of the slow-query log.
    pub slow_log_capacity: usize,
}

impl Default for SearchObsConfig {
    fn default() -> Self {
        Self {
            trace_sample_every: 64,
            trace_capacity: 256,
            slow_query_threshold: Duration::from_millis(100),
            slow_log_capacity: 64,
        }
    }
}

/// Metric handles for the query hot path, pre-resolved from a shared
/// [`ObsRegistry`] so recording never touches the registry lock.
///
/// Registered metrics:
///
/// | name | kind | meaning |
/// |---|---|---|
/// | `search_queries_total` | counter | queries answered (ok, incl. vacuous) |
/// | `search_query_errors_total` | counter | queries rejected with a [`crate::QueryError`] |
/// | `search_query_ns` | histogram | end-to-end query latency |
/// | `search_ta_scan_ns` | histogram | Threshold-Algorithm scan span |
/// | `search_ta_postings_scanned` | histogram | postings read per evaluated query |
/// | `search_cache_hits` / `search_cache_misses` | counter | adopted from the result cache's live cells |
#[derive(Debug)]
pub struct SearchObs {
    registry: Arc<ObsRegistry>,
    queries: Arc<Counter>,
    query_errors: Arc<Counter>,
    query_ns: Arc<LatencyHistogram>,
    ta_scan_ns: Arc<LatencyHistogram>,
    ta_postings: Arc<LatencyHistogram>,
    sampler: Sampler,
    trace_seq: AtomicU64,
    traces: TraceRing,
    slow: SlowQueryLog,
}

impl SearchObs {
    /// Creates the search metric set on `registry`.
    pub fn new(registry: Arc<ObsRegistry>, config: &SearchObsConfig) -> Arc<Self> {
        Arc::new(Self {
            queries: registry.counter("search_queries_total"),
            query_errors: registry.counter("search_query_errors_total"),
            query_ns: registry.histogram("search_query_ns"),
            ta_scan_ns: registry.histogram("search_ta_scan_ns"),
            ta_postings: registry.histogram("search_ta_postings_scanned"),
            sampler: Sampler::every(config.trace_sample_every),
            trace_seq: AtomicU64::new(0),
            traces: TraceRing::new(config.trace_capacity),
            slow: SlowQueryLog::new(config.slow_query_threshold, config.slow_log_capacity),
            registry,
        })
    }

    /// The registry the metric handles live in.
    pub fn registry(&self) -> &Arc<ObsRegistry> {
        &self.registry
    }

    /// The end-to-end query latency histogram (`search_query_ns`).
    pub fn query_latency(&self) -> &Arc<LatencyHistogram> {
        &self.query_ns
    }

    /// The sampled query traces currently retained.
    pub fn traces(&self) -> Vec<TraceRecord> {
        self.traces.snapshot()
    }

    /// The slow-query log (threshold adjustable at runtime).
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slow
    }

    /// Called by an attaching front to expose the result cache's live
    /// hit/miss cells through the registry.
    pub(crate) fn adopt_cache_counters(&self, hits: &Arc<Counter>, misses: &Arc<Counter>) {
        self.registry
            .adopt_counter("search_cache_hits", Arc::clone(hits));
        self.registry
            .adopt_counter("search_cache_misses", Arc::clone(misses));
    }

    /// Records a rejected query.
    pub(crate) fn record_error(&self) {
        self.query_errors.inc();
    }

    /// Records a completed query: latency histogram + counters always;
    /// trace ring when sampled; slow-query log (with the canonical key
    /// rendered lazily) when at or above the threshold.
    pub(crate) fn record_query(&self, clock: SpanClock, key: &QueryKey, stats: &QueryStats) {
        let (total_ns, spans) = clock.finish();
        self.queries.inc();
        self.query_ns.record(total_ns);
        if !stats.cache_hit {
            self.ta_postings.record(stats.postings_scanned as u64);
            if let Some(scan) = spans.iter().find(|s| s.kind == SpanKind::TaScan) {
                self.ta_scan_ns.record(scan.duration_ns);
            }
        }
        let slow = self.slow.is_slow(total_ns);
        let sampled = self.sampler.hit();
        if !(slow || sampled) {
            return;
        }
        let id = TraceId(self.trace_seq.fetch_add(1, Relaxed));
        if sampled {
            self.traces.push(TraceRecord {
                id,
                kind: TraceKind::Query,
                total_ns,
                spans: spans.clone(),
            });
        }
        if slow {
            self.slow.push(SlowQueryRecord {
                key: key.describe(),
                total_ns,
                spans,
                stats: vec![
                    ("cache_hit", u64::from(stats.cache_hit)),
                    (
                        "served_from_prebuilt",
                        u64::from(stats.served_from_prebuilt),
                    ),
                    ("postings_scanned", stats.postings_scanned as u64),
                    ("candidates_pruned", stats.candidates_pruned as u64),
                    ("terms", stats.terms as u64),
                    ("filtered", u64::from(stats.filtered)),
                ],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_query_feeds_histogram_trace_and_slow_log() {
        let obs = SearchObs::new(
            Arc::new(ObsRegistry::new()),
            &SearchObsConfig {
                trace_sample_every: 1,
                slow_query_threshold: Duration::ZERO,
                ..SearchObsConfig::default()
            },
        );
        let mut clock = SpanClock::start();
        clock.lap(SpanKind::Plan);
        clock.lap(SpanKind::TaScan);
        let key = QueryKey::new(
            &[stb_corpus::TermId(3)],
            10,
            crate::engine::EngineConfig::default(),
        );
        let stats = QueryStats {
            cache_hit: false,
            served_from_prebuilt: true,
            postings_scanned: 42,
            candidates_pruned: 7,
            terms: 1,
            filtered: false,
        };
        obs.record_query(clock, &key, &stats);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("search_queries_total"), Some(1));
        assert_eq!(
            snap.histogram("search_query_ns").map(|h| h.count()),
            Some(1)
        );
        assert_eq!(
            snap.histogram("search_ta_postings_scanned")
                .map(|h| h.p50()),
            Some(42)
        );
        assert_eq!(obs.traces().len(), 1);
        let slow = obs.slow_log().snapshot();
        assert_eq!(slow.len(), 1);
        assert!(slow[0].key.contains("terms=[3]"));
        assert!(slow[0].stats.contains(&("postings_scanned", 42)));
    }
}
