//! Burstiness component of the document score (Eq. 11).
//!
//! `burstiness(d, t)` looks at the spatiotemporal patterns mined for the
//! term `t` that *overlap* the document `d` (contain both its stream of
//! origin and its timestamp) and aggregates their scores with a function
//! `f(P_{t,d})`. The paper found the maximum to work best; minimum, mean and
//! median are provided as alternatives. When *no* pattern overlaps the
//! document the paper assigns `-inf` (the document cannot be bursty for that
//! term); [`NoPatternPolicy`] makes that behaviour explicit and optionally
//! relaxes it to a zero contribution.

/// Aggregation function `f(P_{t,d})` over the scores of the overlapping
/// patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BurstinessAgg {
    /// Maximum overlapping pattern score — the paper's best choice (default).
    #[default]
    Max,
    /// Minimum overlapping pattern score.
    Min,
    /// Arithmetic mean of the overlapping pattern scores.
    Mean,
    /// Median of the overlapping pattern scores.
    Median,
}

impl BurstinessAgg {
    /// Aggregates a non-empty slice of pattern scores. Returns `None` when
    /// the slice is empty (no overlapping pattern — see [`NoPatternPolicy`]).
    pub fn aggregate(&self, scores: &[f64]) -> Option<f64> {
        if scores.is_empty() {
            return None;
        }
        Some(match self {
            BurstinessAgg::Max => scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            BurstinessAgg::Min => scores.iter().copied().fold(f64::INFINITY, f64::min),
            BurstinessAgg::Mean => scores.iter().sum::<f64>() / scores.len() as f64,
            BurstinessAgg::Median => {
                let mut sorted = scores.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                let mid = sorted.len() / 2;
                if sorted.len() % 2 == 1 {
                    sorted[mid]
                } else {
                    (sorted[mid - 1] + sorted[mid]) / 2.0
                }
            }
        })
    }
}

/// What to do when a document overlaps no pattern of a query term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NoPatternPolicy {
    /// The paper's Eq. 11: burstiness is `-inf`, i.e. the document is
    /// excluded from the results of any query containing the term (default).
    #[default]
    Exclude,
    /// The term simply contributes nothing to the document's score.
    Zero,
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORES: &[f64] = &[0.4, 1.2, 0.8, 0.1];

    #[test]
    fn max_min_mean_median() {
        assert_eq!(BurstinessAgg::Max.aggregate(SCORES), Some(1.2));
        assert_eq!(BurstinessAgg::Min.aggregate(SCORES), Some(0.1));
        let mean = BurstinessAgg::Mean.aggregate(SCORES).unwrap();
        assert!((mean - 0.625).abs() < 1e-12);
        let median = BurstinessAgg::Median.aggregate(SCORES).unwrap();
        assert!((median - 0.6).abs() < 1e-12);
    }

    #[test]
    fn median_of_odd_length() {
        assert_eq!(BurstinessAgg::Median.aggregate(&[3.0, 1.0, 2.0]), Some(2.0));
    }

    #[test]
    fn single_score_all_aggregates_agree() {
        for agg in [
            BurstinessAgg::Max,
            BurstinessAgg::Min,
            BurstinessAgg::Mean,
            BurstinessAgg::Median,
        ] {
            assert_eq!(agg.aggregate(&[0.7]), Some(0.7));
        }
    }

    #[test]
    fn empty_scores_give_none() {
        assert_eq!(BurstinessAgg::Max.aggregate(&[]), None);
        assert_eq!(BurstinessAgg::Median.aggregate(&[]), None);
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(BurstinessAgg::default(), BurstinessAgg::Max);
        assert_eq!(NoPatternPolicy::default(), NoPatternPolicy::Exclude);
    }
}
