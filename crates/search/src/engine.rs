//! The bursty-document search engine (Section 5, Problem 2).
//!
//! The engine combines three ingredients:
//!
//! 1. a document collection (for term frequencies and document metadata),
//! 2. the spatiotemporal patterns mined per term by one of the miners
//!    (`STComb`, `STLocal`, or the temporal-only `TB` baseline) — the engine
//!    handles one pattern source at a time, as in the paper,
//! 3. a scoring configuration (relevance strategy, burstiness aggregation,
//!    no-pattern policy).
//!
//! For every query term the engine needs a posting list whose per-document
//! score is `relevance(d, t) × burstiness(d, t)` (Eq. 10–11); the top-k is
//! then evaluated with Fagin's Threshold Algorithm.
//!
//! # Serving path
//!
//! The engine has two modes. In *cold* mode (the paper's experimental
//! setting) every [`BurstySearchEngine::search`] call scores the query
//! terms' posting lists from scratch. For serving repeated query traffic,
//! call [`BurstySearchEngine::finalize`] once after registering patterns:
//! it materializes the score-sorted posting list of **every** term in the
//! collection — built in parallel across terms, which are independent —
//! so subsequent searches only walk prebuilt lists. On top of the prebuilt
//! index sit
//!
//! * an LRU cache of evaluated top-k result lists, keyed on
//!   (terms, k, config) and invalidated per term by
//!   [`BurstySearchEngine::set_patterns`],
//! * an incremental per-term rebuild: updating one term's patterns after
//!   finalization re-scores only that term's posting list, and
//! * a batched [`BurstySearchEngine::search_many`] that amortizes index
//!   construction (cold mode) or cache traffic (finalized mode) over a
//!   whole workload.

use crate::burstiness::{BurstinessAgg, NoPatternPolicy};
use crate::cache::{QueryCache, QueryKey};
use crate::index::{InvertedIndex, Posting};
use crate::relevance::Relevance;
use crate::threshold::{threshold_topk, ScoredDoc};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use stb_core::{parallel_map, Pattern, PatternSource};
use stb_corpus::StreamId;
use stb_corpus::{Collection, DocId, TermId, Timestamp};
use stb_timeseries::TimeInterval;

/// A search hit: a document and its total score for the query.
pub type SearchResult = ScoredDoc;

/// Default capacity of the engine's query-result cache (distinct queries).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Scoring configuration of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EngineConfig {
    /// Relevance strategy (default: `log(freq + 1)`).
    pub relevance: Relevance,
    /// Burstiness aggregation over overlapping patterns (default: maximum).
    pub aggregation: BurstinessAgg,
    /// Behaviour for documents with no overlapping pattern (default:
    /// exclude, per Eq. 11).
    pub no_pattern: NoPatternPolicy,
}

/// A pattern reduced to what the engine needs: which stream/timestamp pairs
/// it covers and how strong it is.
#[derive(Debug, Clone)]
struct StoredPattern {
    streams: Vec<StreamId>,
    timeframe: TimeInterval,
    score: f64,
}

impl StoredPattern {
    fn overlaps(&self, stream: StreamId, ts: Timestamp) -> bool {
        self.timeframe.contains(ts) && self.streams.binary_search(&stream).is_ok()
    }
}

/// The bursty-document search engine.
///
/// # Example
///
/// Build a tiny two-stream collection, register one mined pattern, prebuild
/// the posting index, and search:
///
/// ```
/// use std::collections::HashMap;
/// use stb_core::CombinatorialPattern;
/// use stb_corpus::CollectionBuilder;
/// use stb_geo::GeoPoint;
/// use stb_search::{BurstySearchEngine, EngineConfig};
/// use stb_timeseries::TimeInterval;
///
/// // "earthquake" bursts in Athens during timestamps 2..=3.
/// let mut b = CollectionBuilder::new(5);
/// let quake = b.dict_mut().intern("earthquake");
/// let athens = b.add_stream("Athens", GeoPoint::new(38.0, 23.7));
/// let lima = b.add_stream("Lima", GeoPoint::new(-12.0, -77.0));
/// for ts in 0..5 {
///     let f = if ts == 2 || ts == 3 { 8 } else { 1 };
///     b.add_document(athens, ts, HashMap::from([(quake, f)]));
///     b.add_document(lima, ts, HashMap::from([(quake, 1)]));
/// }
/// let collection = b.build();
///
/// let mut engine = BurstySearchEngine::new(&collection, EngineConfig::default());
/// let pattern =
///     CombinatorialPattern::new(vec![athens], TimeInterval::new(2, 3), 2.0, vec![]);
/// engine.set_patterns(quake, &[pattern]);
/// engine.finalize(); // prebuild the score-sorted posting index, in parallel
///
/// let top = engine.search(&[quake], 2);
/// assert_eq!(top.len(), 2); // the two Athens burst documents
/// assert!(top[0].score >= top[1].score);
/// // A repeated query is now answered from the result cache.
/// assert_eq!(engine.search(&[quake], 2), top);
/// assert!(engine.cache_hits() >= 1);
/// ```
///
/// # Ownership and live updates
///
/// The engine *owns* its collection as an `Arc<Collection>` snapshot
/// rather than borrowing it: queries (`&self`, internally synchronized
/// cache) can then be served from one thread while an ingestion pipeline
/// prepares the next snapshot on another, swapping it in with
/// [`BurstySearchEngine::update_collection`]. `new` accepts anything
/// convertible into the shared handle — an `Arc<Collection>`, an owned
/// `Collection`, or (cloning) a `&Collection`.
pub struct BurstySearchEngine {
    collection: Arc<Collection>,
    config: EngineConfig,
    patterns: HashMap<TermId, Vec<StoredPattern>>,
    /// Corpus-level inverted lists: term → documents containing it.
    term_docs: HashMap<TermId, Vec<DocId>>,
    /// The full-collection scored posting index, present after
    /// [`BurstySearchEngine::finalize`].
    prebuilt: Option<InvertedIndex>,
    /// LRU cache of evaluated top-k result lists.
    cache: QueryCache,
    /// Number of full prebuilt-index builds (for [`EngineMetrics`]).
    finalize_count: u64,
    /// Wall-clock duration of the most recent full build.
    last_finalize: Option<Duration>,
    /// Number of single-term posting-list rebuilds on the prebuilt index.
    term_rescore_count: u64,
}

/// A point-in-time snapshot of the engine's serving counters, for benchmark
/// harnesses and operational monitoring (see `IngestPipeline` in
/// `stb-ingest`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineMetrics {
    /// Searches answered from the query-result cache.
    pub cache_hits: u64,
    /// Searches that had to be evaluated.
    pub cache_misses: u64,
    /// Query results currently cached.
    pub cache_len: usize,
    /// Capacity of the result cache (0 = caching disabled).
    pub cache_capacity: usize,
    /// Whether the full-collection posting index is prebuilt.
    pub finalized: bool,
    /// Terms with at least one posting in the prebuilt index (0 if cold).
    pub indexed_terms: usize,
    /// Total postings in the prebuilt index (0 if cold).
    pub indexed_postings: usize,
    /// Number of full prebuilt-index builds so far.
    pub finalize_count: u64,
    /// Wall-clock milliseconds of the most recent full build, if any.
    pub last_finalize_ms: Option<f64>,
    /// Single-term posting-list rebuilds applied to the prebuilt index
    /// (incremental `set_patterns` / `refresh_term` calls).
    pub term_rescore_count: u64,
    /// Documents in the engine's current collection snapshot.
    pub n_docs: usize,
}

impl BurstySearchEngine {
    /// Creates an engine over a collection with the given scoring
    /// configuration. Patterns must be registered per term with
    /// [`BurstySearchEngine::set_patterns`] before searching.
    pub fn new(collection: impl Into<Arc<Collection>>, config: EngineConfig) -> Self {
        let collection = collection.into();
        let mut term_docs: HashMap<TermId, Vec<DocId>> = HashMap::new();
        for doc in collection.documents() {
            for &term in doc.counts.keys() {
                term_docs.entry(term).or_default().push(doc.id);
            }
        }
        for docs in term_docs.values_mut() {
            docs.sort();
            docs.dedup();
        }
        Self {
            collection,
            config,
            patterns: HashMap::new(),
            term_docs,
            prebuilt: None,
            cache: QueryCache::new(DEFAULT_CACHE_CAPACITY),
            finalize_count: 0,
            last_finalize: None,
            term_rescore_count: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's current collection snapshot.
    pub fn collection(&self) -> &Arc<Collection> {
        &self.collection
    }

    /// Registers the mined patterns of a term, replacing any previous ones.
    /// Accepts any pattern type (`CombinatorialPattern`, `RegionalPattern`, …).
    ///
    /// On a finalized engine this incrementally re-scores the posting list
    /// of `term` alone (the rest of the prebuilt index is untouched) and
    /// invalidates the cached results of every query involving the term.
    pub fn set_patterns<P: Pattern>(&mut self, term: TermId, patterns: &[P]) {
        let stored = patterns
            .iter()
            .map(|p| StoredPattern {
                streams: p.streams().to_vec(),
                timeframe: p.timeframe(),
                score: p.score(),
            })
            .collect();
        self.patterns.insert(term, stored);
        self.refresh_term(term);
    }

    /// Re-derives one term's scored posting list from the engine's current
    /// collection snapshot and patterns, updating the prebuilt index in
    /// place (if finalized) and invalidating the cached results of every
    /// query involving the term.
    ///
    /// [`BurstySearchEngine::set_patterns`] calls this automatically; call
    /// it directly when a term's scores changed for a reason *other* than
    /// its patterns — new documents arrived via
    /// [`BurstySearchEngine::update_collection`], or the corpus-level
    /// statistics a [`Relevance::TfIdf`] configuration depends on moved.
    pub fn refresh_term(&mut self, term: TermId) {
        if self.prebuilt.is_some() {
            let list = self.term_postings(term);
            if let Some(index) = self.prebuilt.as_mut() {
                index.set_postings(term, list);
            }
            self.term_rescore_count += 1;
        }
        self.cache.invalidate_term(term);
    }

    /// Swaps in a newer collection snapshot, incrementally extending the
    /// engine's corpus-level inverted lists with `new_docs` — the documents
    /// appended since the snapshot the engine previously held (dense ids, in
    /// arrival order).
    ///
    /// This does **not** re-score any posting list: after swapping, refresh
    /// the terms whose scores the new documents affect (their own terms, at
    /// minimum) with [`BurstySearchEngine::set_patterns`] or
    /// [`BurstySearchEngine::refresh_term`] — which is exactly what the
    /// `stb-ingest` pipeline's per-tick commit does with its dirty-term set.
    pub fn update_collection(&mut self, collection: Arc<Collection>, new_docs: &[DocId]) {
        self.collection = collection;
        for &doc_id in new_docs {
            let doc = self.collection.document(doc_id);
            for &term in doc.counts.keys() {
                let docs = self.term_docs.entry(term).or_default();
                debug_assert!(
                    docs.last().is_none_or(|&last| last < doc_id),
                    "new documents must arrive in id order"
                );
                docs.push(doc_id);
            }
        }
    }

    /// Registers the patterns of every term of a [`PatternSource`] — e.g.
    /// the output of `STLocal::mine_collection_parallel` or
    /// `STComb::mine_collection_parallel` — so a mining run can feed the
    /// index builder directly.
    /// Sources are replayed in order, so a term appearing twice keeps its
    /// last entry, exactly as two [`BurstySearchEngine::set_patterns`] calls
    /// would.
    pub fn set_patterns_from<S: PatternSource>(&mut self, source: &S) {
        source.for_each_term(&mut |term, patterns| self.set_patterns(term, patterns));
    }

    /// Number of documents that contain the term.
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.term_docs.get(&term).map(Vec::len).unwrap_or(0)
    }

    /// `burstiness(d, t)` of Eq. 11: aggregates the scores of the patterns of
    /// `term` that overlap the document, or `None` if no pattern overlaps.
    pub fn document_burstiness(&self, term: TermId, doc: DocId) -> Option<f64> {
        let document = self.collection.document(doc);
        let overlapping: Vec<f64> = self
            .patterns
            .get(&term)?
            .iter()
            .filter(|p| p.overlaps(document.stream, document.timestamp))
            .map(|p| p.score)
            .collect();
        self.config.aggregation.aggregate(&overlapping)
    }

    /// The Eq. 10–11 scored posting list of one term (unsorted).
    fn term_postings(&self, term: TermId) -> Vec<Posting> {
        let n_docs = self.collection.documents().len();
        let Some(docs) = self.term_docs.get(&term) else {
            return Vec::new();
        };
        let doc_freq = docs.len();
        let mut list = Vec::new();
        for &doc_id in docs {
            let doc = self.collection.document(doc_id);
            let relevance = self
                .config
                .relevance
                .score(doc.freq(term), doc_freq, n_docs);
            match self.document_burstiness(term, doc_id) {
                Some(burst) => list.push(Posting {
                    doc: doc_id,
                    score: relevance * burst,
                }),
                None => {
                    if self.config.no_pattern == NoPatternPolicy::Zero {
                        // The term contributes nothing but the document
                        // stays eligible for the rest of the query.
                        list.push(Posting {
                            doc: doc_id,
                            score: 0.0,
                        });
                    }
                    // Under Exclude the document is simply absent from
                    // this term's posting list, which the Threshold
                    // Algorithm interprets as -inf.
                }
            }
        }
        list
    }

    /// Builds the per-term inverted index (Eq. 10 per-term scores) for a set
    /// of query terms.
    pub fn build_index(&self, query: &[TermId]) -> InvertedIndex {
        let mut terms = query.to_vec();
        terms.sort();
        terms.dedup();
        let mut index = InvertedIndex::new();
        for term in terms {
            index.set_postings(term, self.term_postings(term));
        }
        index.finalize();
        index
    }

    /// Prebuilds the score-sorted posting index of **every** term in the
    /// collection, in parallel across all available cores. See
    /// [`BurstySearchEngine::finalize_with_threads`].
    pub fn finalize(&mut self) {
        let n_threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.finalize_with_threads(n_threads);
    }

    /// Prebuilds the full-collection posting index with an explicit worker
    /// count.
    ///
    /// Terms are scored independently (exactly the independence `STLocal`'s
    /// parallel mining driver exploits), so the build distributes term ids
    /// over `n_threads` scoped threads and merges the finished lists into
    /// one [`InvertedIndex`]. The result is deterministic regardless of the
    /// thread count. Any previously cached query results are dropped.
    ///
    /// Calling this again after more [`BurstySearchEngine::set_patterns`]
    /// calls rebuilds from the current patterns; for single-term updates the
    /// incremental path inside `set_patterns` is cheaper.
    pub fn finalize_with_threads(&mut self, n_threads: usize) {
        let start = Instant::now();
        let mut terms: Vec<TermId> = self.term_docs.keys().copied().collect();
        terms.sort();
        let this = &*self;
        let lists = parallel_map(terms.len(), n_threads, |i| this.term_postings(terms[i]));
        let mut index = InvertedIndex::new();
        for (term, list) in terms.iter().zip(lists) {
            index.set_postings(*term, list);
        }
        index.finalize();
        self.prebuilt = Some(index);
        self.cache.clear();
        self.finalize_count += 1;
        self.last_finalize = Some(start.elapsed());
    }

    /// Whether the full-collection posting index has been prebuilt.
    pub fn is_finalized(&self) -> bool {
        self.prebuilt.is_some()
    }

    /// The prebuilt full-collection posting index, if
    /// [`BurstySearchEngine::finalize`] has run.
    pub fn prebuilt_index(&self) -> Option<&InvertedIndex> {
        self.prebuilt.as_ref()
    }

    /// Replaces the query-result cache with an empty one of the given
    /// capacity (0 disables caching).
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache = QueryCache::new(capacity);
    }

    /// Number of searches answered from the query-result cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Number of searches that had to be evaluated.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Number of query results currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// A snapshot of the engine's serving counters.
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_len: self.cache.len(),
            cache_capacity: self.cache.capacity(),
            finalized: self.prebuilt.is_some(),
            indexed_terms: self.prebuilt.as_ref().map_or(0, InvertedIndex::n_terms),
            indexed_postings: self.prebuilt.as_ref().map_or(0, InvertedIndex::n_postings),
            finalize_count: self.finalize_count,
            last_finalize_ms: self.last_finalize.map(|d| d.as_secs_f64() * 1000.0),
            term_rescore_count: self.term_rescore_count,
            n_docs: self.collection.documents().len(),
        }
    }

    /// Answers a query: the top-`k` documents by Eq. 10, best first.
    ///
    /// On a finalized engine this reads the prebuilt posting lists (and the
    /// result cache); otherwise the query terms' lists are scored on the
    /// fly, as in the paper's experiments.
    pub fn search(&self, query: &[TermId], k: usize) -> Vec<SearchResult> {
        let key = QueryKey::new(query, k, self.config);
        if let Some(hit) = self.cache.get(&key) {
            return hit;
        }
        let results = match &self.prebuilt {
            Some(index) => threshold_topk(index, query, k, self.config.no_pattern),
            None => {
                let index = self.build_index(query);
                threshold_topk(&index, query, k, self.config.no_pattern)
            }
        };
        self.cache.put(key, results.clone());
        results
    }

    /// Answers a batch of queries with one shared index, returning one
    /// result list per query (same order as the input).
    ///
    /// On a cold engine this scores the union of all query terms once
    /// instead of once per query; on a finalized engine the prebuilt index
    /// already amortizes that, and repeated queries in the batch hit the
    /// cache.
    pub fn search_many(&self, queries: &[Vec<TermId>], k: usize) -> Vec<Vec<SearchResult>> {
        if self.prebuilt.is_some() {
            return queries.iter().map(|q| self.search(q, k)).collect();
        }
        // Consult the cache first, so a cold engine only scores the terms of
        // the queries that actually missed.
        let mut results: Vec<Option<Vec<SearchResult>>> = queries
            .iter()
            .map(|query| self.cache.get(&QueryKey::new(query, k, self.config)))
            .collect();
        let mut union: Vec<TermId> = queries
            .iter()
            .zip(&results)
            .filter(|(_, cached)| cached.is_none())
            .flat_map(|(query, _)| query.iter().copied())
            .collect();
        union.sort();
        union.dedup();
        if !union.is_empty() {
            let index = self.build_index(&union);
            for (query, slot) in queries.iter().zip(&mut results) {
                if slot.is_none() {
                    // Re-check the cache: an identical query earlier in this
                    // batch may have just been evaluated and stored.
                    let key = QueryKey::new(query, k, self.config);
                    let evaluated = self.cache.get(&key).unwrap_or_else(|| {
                        let fresh = threshold_topk(&index, query, k, self.config.no_pattern);
                        self.cache.put(key.clone(), fresh.clone());
                        fresh
                    });
                    *slot = Some(evaluated);
                }
            }
        }
        results.into_iter().map(|r| r.unwrap_or_default()).collect()
    }

    /// Convenience: answers a query given as raw strings, resolving them
    /// against the engine's collection snapshot.
    ///
    /// Words not (yet) in the dictionary are handled per the no-pattern
    /// policy, mirroring how [`threshold_topk`] treats a term with an
    /// empty posting list: under
    /// [`NoPatternPolicy::Exclude`] a query containing an unknown word can
    /// match no document, so the result is empty; under
    /// [`NoPatternPolicy::Zero`] unknown words contribute nothing and are
    /// dropped. Either way the call never panics — a word unseen at
    /// engine-build time simply scores once its term arrives through
    /// [`BurstySearchEngine::update_collection`].
    pub fn search_text(&self, query: &str, k: usize) -> Vec<SearchResult> {
        let mut terms = Vec::new();
        for word in query.split_whitespace() {
            match self.collection.dict().get(&word.to_lowercase()) {
                Some(term) => terms.push(term),
                None if self.config.no_pattern == NoPatternPolicy::Exclude => return Vec::new(),
                None => {}
            }
        }
        self.search(&terms, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stb_core::CombinatorialPattern;
    use stb_corpus::CollectionBuilder;
    use stb_geo::GeoPoint;
    use std::collections::HashMap as StdHashMap;

    /// Three streams, 10 timestamps. "flood" bursts in streams 0 and 1
    /// during timestamps 4..=6; documents elsewhere mention it sporadically.
    fn build_fixture() -> (Collection, TermId) {
        let mut b = CollectionBuilder::new(10);
        let flood = b.dict_mut().intern("flood");
        let other = b.dict_mut().intern("cricket");
        let s0 = b.add_stream("A", GeoPoint::new(0.0, 0.0));
        let s1 = b.add_stream("B", GeoPoint::new(1.0, 1.0));
        let s2 = b.add_stream("C", GeoPoint::new(50.0, 50.0));
        for ts in 0..10 {
            for &s in &[s0, s1, s2] {
                let mut counts = StdHashMap::new();
                counts.insert(other, 3);
                if ts % 3 == 0 {
                    counts.insert(flood, 1);
                }
                b.add_document(s, ts, counts);
            }
        }
        // Burst documents.
        for ts in 4..=6 {
            for &s in &[s0, s1] {
                let mut counts = StdHashMap::new();
                counts.insert(flood, 10);
                b.add_document(s, ts, counts);
            }
        }
        (b.build(), flood)
    }

    fn flood_pattern() -> CombinatorialPattern {
        CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1)],
            TimeInterval::new(4, 6),
            1.5,
            vec![],
        )
    }

    fn assert_same_results(a: &[SearchResult], b: &[SearchResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.doc, y.doc);
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    #[test]
    fn search_returns_burst_documents_first() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        let results = engine.search(&[flood], 6);
        assert_eq!(results.len(), 6);
        for r in &results {
            let d = c.document(r.doc);
            // Under the Exclude policy every returned document must overlap
            // the pattern.
            assert!((4..=6).contains(&d.timestamp));
            assert!(d.stream == StreamId(0) || d.stream == StreamId(1));
            assert!(r.score > 0.0);
        }
        // The strongest hits are the high-frequency burst documents.
        let top_doc = c.document(results[0].doc);
        assert_eq!(top_doc.freq(flood), 10);
    }

    #[test]
    fn zero_policy_keeps_non_overlapping_documents() {
        let (c, flood) = build_fixture();
        let config = EngineConfig {
            no_pattern: NoPatternPolicy::Zero,
            ..Default::default()
        };
        let mut engine = BurstySearchEngine::new(&c, config);
        engine.set_patterns(flood, &[flood_pattern()]);
        let strict_count = {
            let mut strict = BurstySearchEngine::new(&c, EngineConfig::default());
            strict.set_patterns(flood, &[flood_pattern()]);
            strict.search(&[flood], 100).len()
        };
        let lenient_count = engine.search(&[flood], 100).len();
        // Zero policy can only return at least as many documents; documents
        // outside the pattern score 0 and are still filtered from the top-k
        // (non-positive scores are never returned), so the counts match here.
        assert!(lenient_count >= strict_count);
    }

    #[test]
    fn no_patterns_means_no_results_under_exclude() {
        let (c, flood) = build_fixture();
        let engine = BurstySearchEngine::new(&c, EngineConfig::default());
        assert!(engine.search(&[flood], 10).is_empty());
    }

    #[test]
    fn document_burstiness_uses_max_aggregation() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        let weak = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1)],
            TimeInterval::new(4, 6),
            0.5,
            vec![],
        );
        engine.set_patterns(flood, &[weak, flood_pattern()]);
        // Find a burst document.
        let doc = c
            .documents()
            .iter()
            .find(|d| d.freq(flood) == 10)
            .unwrap()
            .id;
        assert_eq!(engine.document_burstiness(flood, doc), Some(1.5));
    }

    #[test]
    fn search_text_resolves_terms() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        let by_id = engine.search(&[flood], 5);
        let by_text = engine.search_text("Flood", 5);
        assert_eq!(by_id.len(), by_text.len());
        for (a, b) in by_id.iter().zip(&by_text) {
            assert_eq!(a.doc, b.doc);
        }
    }

    #[test]
    fn search_text_unknown_word_follows_no_pattern_policy() {
        let (c, flood) = build_fixture();
        for finalized in [false, true] {
            // Exclude: a query containing an unknown word can match nothing.
            let mut strict = BurstySearchEngine::new(&c, EngineConfig::default());
            strict.set_patterns(flood, &[flood_pattern()]);
            if finalized {
                strict.finalize_with_threads(2);
            }
            assert!(!strict.search_text("flood", 5).is_empty());
            assert!(strict.search_text("flood unknownterm", 5).is_empty());
            assert!(strict.search_text("unknownterm", 5).is_empty());

            // Zero: unknown words contribute nothing and are dropped.
            let mut lenient = BurstySearchEngine::new(
                &c,
                EngineConfig {
                    no_pattern: NoPatternPolicy::Zero,
                    ..Default::default()
                },
            );
            lenient.set_patterns(flood, &[flood_pattern()]);
            if finalized {
                lenient.finalize_with_threads(2);
            }
            let with_unknown = lenient.search_text("Flood unknownterm", 5);
            let without = lenient.search_text("Flood", 5);
            assert_eq!(with_unknown.len(), without.len());
            assert!(lenient.search_text("unknownterm", 5).is_empty());
        }
    }

    #[test]
    fn unseen_term_id_never_panics() {
        let (c, flood) = build_fixture();
        // A TermId the collection has never seen (e.g. interned into a newer
        // dictionary snapshot than the engine's) must yield empty results on
        // cold and finalized engines alike — not a panic or debug-assert.
        let ghost = TermId(4242);
        for finalized in [false, true] {
            let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
            engine.set_patterns(flood, &[flood_pattern()]);
            if finalized {
                engine.finalize_with_threads(2);
            }
            assert!(engine.search(&[ghost], 5).is_empty());
            assert!(engine.search(&[flood, ghost], 5).is_empty());
            assert_eq!(engine.doc_freq(ghost), 0);
            assert_eq!(engine.document_burstiness(ghost, DocId(0)), None);
        }
    }

    #[test]
    fn update_collection_scores_newly_arrived_documents() {
        let (c, flood) = build_fixture();
        let shared: Arc<Collection> = Arc::new(c);
        let mut engine = BurstySearchEngine::new(Arc::clone(&shared), EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.finalize_with_threads(2);
        let before = engine.search(&[flood], 50).len();

        // A new burst document and a brand-new term arrive.
        let mut next = Collection::clone(&shared);
        let surge = next.dict_mut().intern("surge");
        let mut counts = StdHashMap::new();
        counts.insert(flood, 10);
        counts.insert(surge, 3);
        let new_doc = next.push_document(StreamId(0), 5, counts);
        let next = Arc::new(next);
        engine.update_collection(Arc::clone(&next), &[new_doc]);
        engine.refresh_term(flood); // same patterns, one more overlapping doc
        engine.set_patterns(
            surge,
            &[CombinatorialPattern::new(
                vec![StreamId(0)],
                TimeInterval::new(4, 6),
                1.0,
                vec![],
            )],
        );

        let after = engine.search(&[flood], 50);
        assert_eq!(after.len(), before + 1);
        assert!(after.iter().any(|r| r.doc == new_doc));
        let surge_hits = engine.search(&[surge], 10);
        assert_eq!(surge_hits.len(), 1);
        assert_eq!(surge_hits[0].doc, new_doc);
        // The refreshed engine agrees with a cold engine over the new
        // snapshot.
        let mut reference = BurstySearchEngine::new(next, EngineConfig::default());
        reference.set_cache_capacity(0);
        reference.set_patterns(flood, &[flood_pattern()]);
        assert_same_results(&reference.search(&[flood], 50), &after);
    }

    #[test]
    fn metrics_snapshot_tracks_counters() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        let cold = engine.metrics();
        assert!(!cold.finalized);
        assert_eq!(cold.finalize_count, 0);
        assert_eq!(cold.last_finalize_ms, None);
        assert_eq!(cold.n_docs, engine.collection().documents().len());

        engine.set_patterns(flood, &[flood_pattern()]);
        engine.finalize_with_threads(2);
        let _ = engine.search(&[flood], 5);
        let _ = engine.search(&[flood], 5);
        engine.set_patterns(flood, &[flood_pattern()]);

        let m = engine.metrics();
        assert!(m.finalized);
        assert_eq!(m.finalize_count, 1);
        assert!(m.last_finalize_ms.is_some());
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert!(m.term_rescore_count >= 1);
        assert!(m.indexed_terms >= 1);
        assert!(m.indexed_postings >= m.indexed_terms);
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BurstySearchEngine>();
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let (c, flood) = build_fixture();
        let engine = BurstySearchEngine::new(&c, EngineConfig::default());
        // "flood" appears in documents at ts 0,3,6,9 for 3 streams (12 docs)
        // plus 6 burst documents.
        assert_eq!(engine.doc_freq(flood), 18);
    }

    #[test]
    fn multi_term_query_requires_all_terms_under_exclude() {
        let (c, flood) = build_fixture();
        let cricket = c.dict().get("cricket").unwrap();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.set_patterns(
            cricket,
            &[CombinatorialPattern::new(
                vec![StreamId(0), StreamId(1), StreamId(2)],
                TimeInterval::new(0, 9),
                0.3,
                vec![],
            )],
        );
        let results = engine.search(&[flood, cricket], 10);
        // Burst documents contain only "flood", background documents contain
        // "cricket" and sometimes "flood": only documents containing both
        // terms and overlapping both patterns qualify.
        for r in &results {
            let d = c.document(r.doc);
            assert!(d.freq(flood) > 0 && d.freq(cricket) > 0);
        }
    }

    #[test]
    fn finalized_engine_matches_cold_engine() {
        let (c, flood) = build_fixture();
        let cricket = c.dict().get("cricket").unwrap();
        let all_streams = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1), StreamId(2)],
            TimeInterval::new(0, 9),
            0.3,
            vec![],
        );
        for config in [
            EngineConfig::default(),
            EngineConfig {
                no_pattern: NoPatternPolicy::Zero,
                ..Default::default()
            },
        ] {
            let mut cold = BurstySearchEngine::new(&c, config);
            cold.set_cache_capacity(0);
            cold.set_patterns(flood, &[flood_pattern()]);
            cold.set_patterns(cricket, std::slice::from_ref(&all_streams));

            let mut hot = BurstySearchEngine::new(&c, config);
            hot.set_patterns(flood, &[flood_pattern()]);
            hot.set_patterns(cricket, std::slice::from_ref(&all_streams));
            hot.finalize_with_threads(3);
            assert!(hot.is_finalized());

            for query in [vec![flood], vec![cricket], vec![flood, cricket]] {
                for k in [1, 5, 50] {
                    assert_same_results(&cold.search(&query, k), &hot.search(&query, k));
                }
            }
        }
    }

    #[test]
    fn finalize_thread_count_does_not_change_results() {
        let (c, flood) = build_fixture();
        let mut one = BurstySearchEngine::new(&c, EngineConfig::default());
        one.set_patterns(flood, &[flood_pattern()]);
        one.finalize_with_threads(1);
        let mut many = BurstySearchEngine::new(&c, EngineConfig::default());
        many.set_patterns(flood, &[flood_pattern()]);
        many.finalize_with_threads(8);
        assert_same_results(&one.search(&[flood], 10), &many.search(&[flood], 10));
        // The prebuilt indexes are structurally identical too.
        let (a, b) = (
            one.prebuilt_index().unwrap(),
            many.prebuilt_index().unwrap(),
        );
        assert_eq!(a.n_terms(), b.n_terms());
        assert_eq!(a.n_postings(), b.n_postings());
    }

    #[test]
    fn repeated_search_hits_the_cache() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.finalize();
        let first = engine.search(&[flood], 5);
        assert_eq!(engine.cache_hits(), 0);
        let second = engine.search(&[flood], 5);
        assert_eq!(engine.cache_hits(), 1);
        assert_same_results(&first, &second);
        // Different k is a different cache entry.
        let _ = engine.search(&[flood], 6);
        assert_eq!(engine.cache_hits(), 1);
        assert_eq!(engine.cache_len(), 2);
    }

    #[test]
    fn set_patterns_after_finalize_rebuilds_incrementally() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.finalize();
        let before = engine.search(&[flood], 10);
        assert!(!before.is_empty());

        // Strengthen the pattern: cached results must not survive.
        let stronger = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1)],
            TimeInterval::new(4, 6),
            3.0,
            vec![],
        );
        engine.set_patterns(flood, &[stronger]);
        let after = engine.search(&[flood], 10);
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            assert!(
                (a.score - 2.0 * b.score).abs() < 1e-9,
                "doubled pattern score"
            );
        }

        // Dropping the patterns empties the term's posting list in place.
        engine.set_patterns(flood, &[] as &[CombinatorialPattern]);
        assert!(engine.search(&[flood], 10).is_empty());
    }

    #[test]
    fn search_many_cold_reuses_cache_on_repeat() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        let queries = vec![vec![flood], vec![flood]];
        let first = engine.search_many(&queries, 5);
        // Within one batch the second (identical) query hits the cache.
        assert_eq!(engine.cache_hits(), 1);
        // A repeated batch is answered entirely from the cache — no index
        // is rebuilt for it.
        let second = engine.search_many(&queries, 5);
        assert_eq!(engine.cache_hits(), 3);
        assert_eq!(first, second);
    }

    #[test]
    fn set_patterns_from_duplicate_terms_last_wins() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        let source = vec![
            (flood, vec![flood_pattern()]),
            (flood, Vec::new()), // a later run retracts the pattern
        ];
        engine.set_patterns_from(&source);
        assert!(engine.search(&[flood], 10).is_empty());
    }

    #[test]
    fn search_many_matches_individual_searches() {
        let (c, flood) = build_fixture();
        let cricket = c.dict().get("cricket").unwrap();
        let all_streams = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1), StreamId(2)],
            TimeInterval::new(0, 9),
            0.3,
            vec![],
        );
        let queries = vec![
            vec![flood],
            vec![cricket],
            vec![flood, cricket],
            vec![flood],
        ];
        for finalized in [false, true] {
            let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
            engine.set_patterns(flood, &[flood_pattern()]);
            engine.set_patterns(cricket, std::slice::from_ref(&all_streams));
            if finalized {
                engine.finalize();
            }
            let batch = engine.search_many(&queries, 7);
            assert_eq!(batch.len(), queries.len());
            let mut reference = BurstySearchEngine::new(&c, EngineConfig::default());
            reference.set_cache_capacity(0);
            reference.set_patterns(flood, &[flood_pattern()]);
            reference.set_patterns(cricket, std::slice::from_ref(&all_streams));
            for (q, got) in queries.iter().zip(&batch) {
                assert_same_results(got, &reference.search(q, 7));
            }
        }
    }
}
