//! The bursty-document search engine (Section 5, Problem 2).
//!
//! The engine combines three ingredients:
//!
//! 1. a document collection (for term frequencies and document metadata),
//! 2. the spatiotemporal patterns mined per term by one of the miners
//!    (`STComb`, `STLocal`, or the temporal-only `TB` baseline) — the engine
//!    handles one pattern source at a time, as in the paper,
//! 3. a scoring configuration (relevance strategy, burstiness aggregation,
//!    no-pattern policy).
//!
//! For every query term the engine needs a posting list whose per-document
//! score is `relevance(d, t) × burstiness(d, t)` (Eq. 10–11); the top-k is
//! then evaluated with Fagin's Threshold Algorithm.
//!
//! # Query surface
//!
//! Queries enter through the typed DSL: a [`Query`] (terms or raw text,
//! optional `time_window`/`region` filters, per-query options) executed by
//! [`BurstySearchEngine::query`] into a `Result<QueryResponse, QueryError>`
//! carrying results, optional per-document explanations, and execution
//! stats. The historical `search`/`search_many`/`search_text` trio remains
//! as thin deprecated shims over the DSL.
//!
//! # Serving path
//!
//! The engine has two modes. In *cold* mode (the paper's experimental
//! setting) every query scores its terms' posting lists from scratch. For
//! serving repeated query traffic,
//! call [`BurstySearchEngine::finalize`] once after registering patterns:
//! it materializes the score-sorted posting list of **every** term in the
//! collection — built in parallel across terms, which are independent —
//! so subsequent unfiltered queries only walk prebuilt lists (filtered
//! queries score their restricted lists per query). On top of that sit
//!
//! * an LRU cache of evaluated top-k result lists, keyed on the full
//!   canonical query — (terms, k, effective config, time window, region) —
//!   and invalidated per term by [`BurstySearchEngine::set_patterns`],
//! * an incremental per-term rebuild: updating one term's patterns after
//!   finalization re-scores only that term's posting list, and
//! * a batched [`BurstySearchEngine::query_many`] that amortizes index
//!   construction (cold mode, grouped by identical filters) or cache
//!   traffic (finalized mode) over a whole workload.

use crate::burstiness::{BurstinessAgg, NoPatternPolicy};
use crate::cache::{QueryCache, QueryKey};
use crate::error::QueryError;
use crate::index::{InvertedIndex, Posting};
use crate::obs::SearchObs;
use crate::query::{
    DocExplanation, PatternMatch, Query, QueryResponse, QueryStats, QueryTerms, TermExplanation,
    UnknownWords,
};
use crate::relevance::Relevance;
use crate::threshold::{threshold_topk_with_stats, ScoredDoc, TopkStats};
use stb_obs::{SpanClock, SpanKind};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use stb_core::{parallel_map, PatternGeometry, PatternRecord, PatternSource};
use stb_corpus::StreamId;
use stb_corpus::{Collection, DocId, TermId, Timestamp};
use stb_geo::{Point2D, Rect};
use stb_timeseries::TimeInterval;

/// A search hit: a document and its total score for the query.
pub type SearchResult = ScoredDoc;

/// Default capacity of the engine's query-result cache (distinct queries).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Scoring configuration of the engine.
///
/// Marked `#[non_exhaustive]`: new scoring knobs can be added without a
/// breaking change. Construct it with [`EngineConfig::default`] or, to
/// deviate from the defaults, with [`EngineConfig::builder`]:
///
/// ```
/// use stb_search::{EngineConfig, NoPatternPolicy, Relevance};
///
/// let config = EngineConfig::builder()
///     .relevance(Relevance::TfIdf)
///     .no_pattern(NoPatternPolicy::Zero)
///     .build();
/// assert_eq!(config.relevance, Relevance::TfIdf);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Relevance strategy (default: `log(freq + 1)`).
    pub relevance: Relevance,
    /// Burstiness aggregation over overlapping patterns (default: maximum).
    pub aggregation: BurstinessAgg,
    /// Behaviour for documents with no overlapping pattern (default:
    /// exclude, per Eq. 11).
    pub no_pattern: NoPatternPolicy,
}

impl EngineConfig {
    /// A fluent builder starting from the default configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }
}

/// Builder for [`EngineConfig`] (see [`EngineConfig::builder`]).
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets the relevance strategy.
    pub fn relevance(mut self, relevance: Relevance) -> Self {
        self.config.relevance = relevance;
        self
    }

    /// Sets the burstiness aggregation.
    pub fn aggregation(mut self, aggregation: BurstinessAgg) -> Self {
        self.config.aggregation = aggregation;
        self
    }

    /// Sets the no-overlapping-pattern policy.
    pub fn no_pattern(mut self, no_pattern: NoPatternPolicy) -> Self {
        self.config.no_pattern = no_pattern;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// A pattern reduced to what the engine needs: which stream/timestamp pairs
/// it covers, its spatial footprint, and how strong it is.
#[derive(Debug, Clone)]
pub(crate) struct StoredPattern {
    pub(crate) streams: Vec<StreamId>,
    pub(crate) timeframe: TimeInterval,
    /// Spatial footprint per `PatternGeometry` (an `STLocal` rectangle, or
    /// the stream MBR of a combinatorial pattern), captured at registration
    /// time from the collection's stream positions.
    pub(crate) region: Option<Rect>,
    pub(crate) score: f64,
}

impl StoredPattern {
    pub(crate) fn overlaps(&self, stream: StreamId, ts: Timestamp) -> bool {
        self.timeframe.contains(ts) && self.streams.binary_search(&stream).is_ok()
    }
}

impl From<PatternRecord> for StoredPattern {
    fn from(r: PatternRecord) -> Self {
        StoredPattern {
            streams: r.streams,
            timeframe: r.timeframe,
            region: r.region,
            score: r.score,
        }
    }
}

impl From<&StoredPattern> for PatternRecord {
    fn from(p: &StoredPattern) -> Self {
        PatternRecord {
            streams: p.streams.clone(),
            timeframe: p.timeframe,
            region: p.region,
            score: p.score,
        }
    }
}

/// A serializable snapshot of the engine's derived state: every term's
/// registered patterns (with the spatial footprints captured at
/// registration time) and, when the engine is finalized, its prebuilt
/// score-sorted posting lists.
///
/// Produced by [`BurstySearchEngine::export_state`] and consumed by
/// [`BurstySearchEngine::import_state`]; the `stb-store` snapshot format
/// persists exactly this structure. The corpus-level term→documents lists
/// are *not* part of the state — they are re-derived deterministically from
/// the collection on construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineState {
    /// Per-term registered patterns, terms sorted by id, each term's
    /// patterns in registration order.
    pub patterns: Vec<(TermId, Vec<PatternRecord>)>,
    /// Whether the full-collection posting index was prebuilt.
    pub finalized: bool,
    /// The prebuilt posting lists (empty unless `finalized`): terms sorted
    /// by id, each list sorted by descending score with ties broken by doc
    /// id. Scores carry their exact `f64` bit patterns.
    pub postings: Vec<(TermId, Vec<Posting>)>,
}

/// The spatiotemporal restriction of a query, applied to patterns.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct PatternFilter {
    pub(crate) window: Option<TimeInterval>,
    pub(crate) region: Option<Rect>,
}

impl PatternFilter {
    pub(crate) const NONE: PatternFilter = PatternFilter {
        window: None,
        region: None,
    };

    pub(crate) fn is_none(&self) -> bool {
        self.window.is_none() && self.region.is_none()
    }

    /// Whether a pattern survives the filter: its timeframe intersects the
    /// window (if any) and its region intersects the query rectangle (if
    /// any). A pattern with no spatial footprint never passes a region
    /// filter.
    pub(crate) fn passes(&self, pattern: &StoredPattern) -> bool {
        self.window.is_none_or(|w| pattern.timeframe.overlaps(&w))
            && self
                .region
                .is_none_or(|r| pattern.region.is_some_and(|pr| pr.intersects(&r)))
    }
}

/// The bursty-document search engine.
///
/// # Example
///
/// Build a tiny two-stream collection, register one mined pattern, prebuild
/// the posting index, and search:
///
/// ```
/// use std::collections::HashMap;
/// use stb_core::CombinatorialPattern;
/// use stb_corpus::CollectionBuilder;
/// use stb_geo::GeoPoint;
/// use stb_search::{BurstySearchEngine, EngineConfig, Query};
/// use stb_timeseries::TimeInterval;
///
/// // "earthquake" bursts in Athens during timestamps 2..=3.
/// let mut b = CollectionBuilder::new(5);
/// let quake = b.dict_mut().intern("earthquake");
/// let athens = b.add_stream("Athens", GeoPoint::new(38.0, 23.7));
/// let lima = b.add_stream("Lima", GeoPoint::new(-12.0, -77.0));
/// for ts in 0..5 {
///     let f = if ts == 2 || ts == 3 { 8 } else { 1 };
///     b.add_document(athens, ts, HashMap::from([(quake, f)]));
///     b.add_document(lima, ts, HashMap::from([(quake, 1)]));
/// }
/// let collection = b.build();
///
/// let mut engine = BurstySearchEngine::new(&collection, EngineConfig::default());
/// let pattern =
///     CombinatorialPattern::new(vec![athens], TimeInterval::new(2, 3), 2.0, vec![]);
/// engine.set_patterns(quake, &[pattern]);
/// engine.finalize(); // prebuild the score-sorted posting index, in parallel
///
/// let top = engine.query(&Query::terms([quake]).top_k(2)).unwrap();
/// assert_eq!(top.results.len(), 2); // the two Athens burst documents
/// assert!(top.results[0].score >= top.results[1].score);
/// // A repeated query is now answered from the result cache.
/// let again = engine.query(&Query::terms([quake]).top_k(2)).unwrap();
/// assert_eq!(again.results, top.results);
/// assert!(again.stats.cache_hit);
/// assert!(engine.metrics().cache_hits >= 1);
/// ```
///
/// # Ownership and live updates
///
/// The engine *owns* its collection as an `Arc<Collection>` snapshot
/// rather than borrowing it: queries (`&self`, internally synchronized
/// cache) can then be served from one thread while an ingestion pipeline
/// prepares the next snapshot on another, swapping it in with
/// [`BurstySearchEngine::update_collection`]. `new` accepts anything
/// convertible into the shared handle — an `Arc<Collection>`, an owned
/// `Collection`, or (cloning) a `&Collection`.
pub struct BurstySearchEngine {
    collection: Arc<Collection>,
    config: EngineConfig,
    /// Planar stream positions of the current snapshot (indexed by
    /// `StreamId::index`), cached for pattern-geometry capture.
    positions: Vec<Point2D>,
    patterns: HashMap<TermId, Vec<StoredPattern>>,
    /// Corpus-level inverted lists: term → documents containing it.
    term_docs: HashMap<TermId, Vec<DocId>>,
    /// The full-collection scored posting index, present after
    /// [`BurstySearchEngine::finalize`].
    prebuilt: Option<InvertedIndex>,
    /// LRU cache of evaluated top-k result lists.
    cache: QueryCache,
    /// Number of full prebuilt-index builds (for [`EngineMetrics`]).
    finalize_count: u64,
    /// Wall-clock duration of the most recent full build.
    last_finalize: Option<Duration>,
    /// Number of single-term posting-list rebuilds on the prebuilt index.
    term_rescore_count: u64,
    /// Observability hooks, set once via
    /// [`BurstySearchEngine::attach_obs`]; unset skips instrumentation.
    obs: OnceLock<Arc<SearchObs>>,
}

/// A point-in-time snapshot of the engine's serving counters, for benchmark
/// harnesses and operational monitoring (see `IngestPipeline` in
/// `stb-ingest`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineMetrics {
    /// Searches answered from the query-result cache.
    pub cache_hits: u64,
    /// Searches that had to be evaluated.
    pub cache_misses: u64,
    /// Query results currently cached.
    pub cache_len: usize,
    /// Capacity of the result cache (0 = caching disabled).
    pub cache_capacity: usize,
    /// Whether the full-collection posting index is prebuilt.
    pub finalized: bool,
    /// Terms with at least one posting in the prebuilt index (0 if cold).
    pub indexed_terms: usize,
    /// Total postings in the prebuilt index (0 if cold).
    pub indexed_postings: usize,
    /// Number of full prebuilt-index builds so far.
    pub finalize_count: u64,
    /// Wall-clock milliseconds of the most recent full build, if any.
    pub last_finalize_ms: Option<f64>,
    /// Single-term posting-list rebuilds applied to the prebuilt index
    /// (incremental `set_patterns` / `refresh_term` calls).
    pub term_rescore_count: u64,
    /// Documents in the engine's current collection snapshot.
    pub n_docs: usize,
}

impl BurstySearchEngine {
    /// Creates an engine over a collection with the given scoring
    /// configuration. Patterns must be registered per term with
    /// [`BurstySearchEngine::set_patterns`] before searching.
    pub fn new(collection: impl Into<Arc<Collection>>, config: EngineConfig) -> Self {
        let collection = collection.into();
        let mut term_docs: HashMap<TermId, Vec<DocId>> = HashMap::new();
        for doc in collection.documents() {
            for &term in doc.counts.keys() {
                term_docs.entry(term).or_default().push(doc.id);
            }
        }
        for docs in term_docs.values_mut() {
            docs.sort();
            docs.dedup();
        }
        Self {
            positions: collection.positions(),
            collection,
            config,
            patterns: HashMap::new(),
            term_docs,
            prebuilt: None,
            cache: QueryCache::new(DEFAULT_CACHE_CAPACITY),
            finalize_count: 0,
            last_finalize: None,
            term_rescore_count: 0,
            obs: OnceLock::new(),
        }
    }

    /// Attaches observability hooks: queries start recording latency,
    /// sampled traces, and slow-query entries into the given
    /// [`SearchObs`]. Attach once at wiring time; later calls are
    /// ignored. (The sharded tier attaches to its `ServingFront`
    /// instead; see `ServingFront::attach_obs`.)
    pub fn attach_obs(&self, obs: Arc<SearchObs>) {
        let _ = self.obs.set(obs);
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The engine's current collection snapshot.
    pub fn collection(&self) -> &Arc<Collection> {
        &self.collection
    }

    /// Registers the mined patterns of a term, replacing any previous ones.
    /// Accepts any pattern type (`CombinatorialPattern`, `RegionalPattern`, …).
    ///
    /// Each pattern's spatial footprint (its `PatternGeometry` region over
    /// the current snapshot's stream positions) is captured here, so
    /// region-filtered queries treat `STLocal` rectangles and `STComb`
    /// stream MBRs identically.
    ///
    /// On a finalized engine this incrementally re-scores the posting list
    /// of `term` alone (the rest of the prebuilt index is untouched) and
    /// invalidates the cached results of every query involving the term.
    pub fn set_patterns<P: PatternGeometry>(&mut self, term: TermId, patterns: &[P]) {
        let stored = patterns
            .iter()
            .map(|p| StoredPattern {
                streams: p.streams().to_vec(),
                timeframe: p.timeframe(),
                region: p.region(&self.positions),
                score: p.score(),
            })
            .collect();
        self.patterns.insert(term, stored);
        self.refresh_term(term);
    }

    /// Re-derives one term's scored posting list from the engine's current
    /// collection snapshot and patterns, updating the prebuilt index in
    /// place (if finalized) and invalidating the cached results of every
    /// query involving the term.
    ///
    /// [`BurstySearchEngine::set_patterns`] calls this automatically; call
    /// it directly when a term's scores changed for a reason *other* than
    /// its patterns — new documents arrived via
    /// [`BurstySearchEngine::update_collection`], or the corpus-level
    /// statistics a [`Relevance::TfIdf`] configuration depends on moved.
    pub fn refresh_term(&mut self, term: TermId) {
        if self.prebuilt.is_some() {
            let list = self.term_postings(term);
            if let Some(index) = self.prebuilt.as_mut() {
                index.set_postings(term, list);
            }
            self.term_rescore_count += 1;
        }
        self.cache.invalidate_term(term);
    }

    /// Swaps in a newer collection snapshot, incrementally extending the
    /// engine's corpus-level inverted lists with `new_docs` — the documents
    /// appended since the snapshot the engine previously held (dense ids, in
    /// arrival order).
    ///
    /// This does **not** re-score any posting list: after swapping, refresh
    /// the terms whose scores the new documents affect (their own terms, at
    /// minimum) with [`BurstySearchEngine::set_patterns`] or
    /// [`BurstySearchEngine::refresh_term`] — which is exactly what the
    /// `stb-ingest` pipeline's per-tick commit does with its dirty-term set.
    pub fn update_collection(&mut self, collection: Arc<Collection>, new_docs: &[DocId]) {
        self.collection = collection;
        self.positions = self.collection.positions();
        for &doc_id in new_docs {
            let doc = self.collection.document(doc_id);
            for &term in doc.counts.keys() {
                let docs = self.term_docs.entry(term).or_default();
                debug_assert!(
                    docs.last().is_none_or(|&last| last < doc_id),
                    "new documents must arrive in id order"
                );
                docs.push(doc_id);
            }
        }
    }

    /// Registers the patterns of every term of a [`PatternSource`] — e.g.
    /// the output of `STLocal::mine_collection_parallel` or
    /// `STComb::mine_collection_parallel` — so a mining run can feed the
    /// index builder directly.
    /// Sources are replayed in order, so a term appearing twice keeps its
    /// last entry, exactly as two [`BurstySearchEngine::set_patterns`] calls
    /// would.
    pub fn set_patterns_from<S: PatternSource>(&mut self, source: &S)
    where
        S::P: PatternGeometry,
    {
        source.for_each_term(&mut |term, patterns| self.set_patterns(term, patterns));
    }

    /// Number of documents that contain the term.
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.term_docs.get(&term).map(Vec::len).unwrap_or(0)
    }

    /// The stored patterns of a term (crate-internal: the sharded serving
    /// tier copies these into shard snapshots).
    pub(crate) fn patterns_of(&self, term: TermId) -> Option<&[StoredPattern]> {
        self.patterns.get(&term).map(Vec::as_slice)
    }

    /// The corpus-level term→documents list of a term.
    pub(crate) fn term_docs_of(&self, term: TermId) -> Option<&[DocId]> {
        self.term_docs.get(&term).map(Vec::as_slice)
    }

    /// Every term the engine knows about: the union of terms appearing in
    /// the collection and terms with registered patterns, sorted.
    pub(crate) fn known_terms(&self) -> Vec<TermId> {
        let mut terms: Vec<TermId> = self
            .term_docs
            .keys()
            .chain(self.patterns.keys())
            .copied()
            .collect();
        terms.sort();
        terms.dedup();
        terms
    }

    /// `burstiness(d, t)` of Eq. 11: aggregates the scores of the patterns of
    /// `term` that overlap the document, or `None` if no pattern overlaps.
    pub fn document_burstiness(&self, term: TermId, doc: DocId) -> Option<f64> {
        self.burstiness_with(term, doc, self.config.aggregation, PatternFilter::NONE)
    }

    /// Eq. 11 restricted to the patterns surviving `filter`.
    fn burstiness_with(
        &self,
        term: TermId,
        doc: DocId,
        aggregation: BurstinessAgg,
        filter: PatternFilter,
    ) -> Option<f64> {
        let document = self.collection.document(doc);
        burstiness_of(
            self.patterns.get(&term).map(Vec::as_slice),
            document.stream,
            document.timestamp,
            aggregation,
            filter,
        )
    }

    /// The Eq. 10–11 scored posting list of one term (unsorted) under the
    /// engine's own configuration and no filter — the list the prebuilt
    /// index materializes.
    fn term_postings(&self, term: TermId) -> Vec<Posting> {
        self.term_postings_with(term, self.config, PatternFilter::NONE)
    }

    /// The scored posting list of one term under an effective configuration
    /// (the engine's, possibly overridden per query) and a pattern filter.
    fn term_postings_with(
        &self,
        term: TermId,
        config: EngineConfig,
        filter: PatternFilter,
    ) -> Vec<Posting> {
        scored_postings(
            &self.collection,
            term,
            self.term_docs.get(&term).map(Vec::as_slice),
            self.patterns.get(&term).map(Vec::as_slice),
            config,
            filter,
        )
    }

    /// Builds the per-term inverted index (Eq. 10 per-term scores) for a set
    /// of query terms.
    pub fn build_index(&self, query: &[TermId]) -> InvertedIndex {
        self.build_index_with(query, self.config, PatternFilter::NONE)
    }

    /// Per-query index under an effective configuration and filter.
    fn build_index_with(
        &self,
        query: &[TermId],
        config: EngineConfig,
        filter: PatternFilter,
    ) -> InvertedIndex {
        query_index(query, |term| self.term_postings_with(term, config, filter))
    }

    /// Prebuilds the score-sorted posting index of **every** term in the
    /// collection, in parallel across all available cores. See
    /// [`BurstySearchEngine::finalize_with_threads`].
    pub fn finalize(&mut self) {
        let n_threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.finalize_with_threads(n_threads);
    }

    /// Prebuilds the full-collection posting index with an explicit worker
    /// count.
    ///
    /// Terms are scored independently (exactly the independence `STLocal`'s
    /// parallel mining driver exploits), so the build distributes term ids
    /// over `n_threads` scoped threads and merges the finished lists into
    /// one [`InvertedIndex`]. The result is deterministic regardless of the
    /// thread count. Any previously cached query results are dropped.
    ///
    /// Calling this again after more [`BurstySearchEngine::set_patterns`]
    /// calls rebuilds from the current patterns; for single-term updates the
    /// incremental path inside `set_patterns` is cheaper.
    pub fn finalize_with_threads(&mut self, n_threads: usize) {
        let start = Instant::now();
        let mut terms: Vec<TermId> = self.term_docs.keys().copied().collect();
        terms.sort();
        let this = &*self;
        let lists = parallel_map(terms.len(), n_threads, |i| this.term_postings(terms[i]));
        let mut index = InvertedIndex::new();
        for (term, list) in terms.iter().zip(lists) {
            index.set_postings(*term, list);
        }
        index.finalize();
        self.prebuilt = Some(index);
        self.cache.clear();
        self.finalize_count += 1;
        self.last_finalize = Some(start.elapsed());
    }

    /// Whether the full-collection posting index has been prebuilt.
    pub fn is_finalized(&self) -> bool {
        self.prebuilt.is_some()
    }

    /// The prebuilt full-collection posting index, if
    /// [`BurstySearchEngine::finalize`] has run.
    pub fn prebuilt_index(&self) -> Option<&InvertedIndex> {
        self.prebuilt.as_ref()
    }

    /// Exports the engine's derived state — per-term patterns with their
    /// captured spatial footprints and, if finalized, the prebuilt posting
    /// lists — in a deterministic order, preserving every score's exact
    /// `f64` bit pattern. See [`EngineState`].
    pub fn export_state(&self) -> EngineState {
        let mut terms: Vec<TermId> = self.patterns.keys().copied().collect();
        terms.sort();
        let patterns = terms
            .into_iter()
            .map(|term| {
                let records = self.patterns[&term]
                    .iter()
                    .map(PatternRecord::from)
                    .collect();
                (term, records)
            })
            .collect();
        let (finalized, postings) = match &self.prebuilt {
            Some(index) => {
                let lists = index
                    .terms()
                    .into_iter()
                    .map(|term| (term, index.postings(term).to_vec()))
                    .collect();
                (true, lists)
            }
            None => (false, Vec::new()),
        };
        EngineState {
            patterns,
            finalized,
            postings,
        }
    }

    /// Replaces the engine's derived state with a previously exported one,
    /// **without re-scoring anything**: patterns keep the spatial
    /// footprints captured when they were first registered, and the
    /// prebuilt posting lists are installed with their persisted scores
    /// bit-for-bit. The result cache is cleared (cached results refer to
    /// the replaced state).
    ///
    /// This is the recovery half of [`BurstySearchEngine::export_state`]:
    /// importing an exported state into an engine holding the same
    /// collection snapshot yields an engine that answers every query
    /// byte-identically to the original.
    pub fn import_state(&mut self, state: EngineState) {
        self.patterns = state
            .patterns
            .into_iter()
            .map(|(term, records)| {
                let stored = records.into_iter().map(StoredPattern::from).collect();
                (term, stored)
            })
            .collect();
        self.prebuilt = if state.finalized {
            let mut index = InvertedIndex::new();
            for (term, list) in state.postings {
                index.set_postings(term, list);
            }
            Some(index)
        } else {
            None
        };
        self.cache.clear();
    }

    /// Replaces the query-result cache with an empty one of the given
    /// capacity (0 disables caching).
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache = QueryCache::new(capacity);
    }

    /// Number of searches answered from the query-result cache.
    #[deprecated(
        since = "0.2.0",
        note = "the observability surface lives on `EngineMetrics`: use `metrics().cache_hits`"
    )]
    pub fn cache_hits(&self) -> u64 {
        self.metrics().cache_hits
    }

    /// Number of searches that had to be evaluated.
    #[deprecated(
        since = "0.2.0",
        note = "the observability surface lives on `EngineMetrics`: use `metrics().cache_misses`"
    )]
    pub fn cache_misses(&self) -> u64 {
        self.metrics().cache_misses
    }

    /// Number of query results currently cached.
    #[deprecated(
        since = "0.2.0",
        note = "the observability surface lives on `EngineMetrics`: use `metrics().cache_len`"
    )]
    pub fn cache_len(&self) -> usize {
        self.metrics().cache_len
    }

    /// A snapshot of the engine's serving counters.
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_len: self.cache.len(),
            cache_capacity: self.cache.capacity(),
            finalized: self.prebuilt.is_some(),
            indexed_terms: self.prebuilt.as_ref().map_or(0, InvertedIndex::n_terms),
            indexed_postings: self.prebuilt.as_ref().map_or(0, InvertedIndex::n_postings),
            finalize_count: self.finalize_count,
            last_finalize_ms: self.last_finalize.map(|d| d.as_secs_f64() * 1000.0),
            term_rescore_count: self.term_rescore_count,
            n_docs: self.collection.documents().len(),
        }
    }

    /// Validates and resolves a [`Query`] against the engine's current
    /// snapshot into an executable plan.
    fn plan(&self, query: &Query) -> Result<QueryPlan, QueryError> {
        plan_query(&self.collection, self.config, query)
    }

    /// Evaluates a plan against the cheapest sound index: the prebuilt
    /// full-collection index when the plan matches what it was built under
    /// (no filters, no per-query overrides), a per-query filtered index
    /// otherwise. Filtering happens *before* the Threshold Algorithm runs,
    /// so its early-termination bound applies to the filtered lists
    /// unchanged.
    fn evaluate(&self, plan: &QueryPlan) -> (Vec<SearchResult>, QueryStats) {
        let direct = plan.filter.is_none() && plan.config == self.config && self.prebuilt.is_some();
        let (results, ta) = match (&self.prebuilt, direct) {
            (Some(index), true) => {
                threshold_topk_with_stats(index, &plan.terms, plan.k, plan.config.no_pattern)
            }
            _ => {
                let index = self.build_index_with(&plan.terms, plan.config, plan.filter);
                threshold_topk_with_stats(&index, &plan.terms, plan.k, plan.config.no_pattern)
            }
        };
        (results, evaluated_stats(plan, ta, direct))
    }

    /// Assembles the response, computing explanations when asked to (also
    /// on cache hits — explanations are derived from the live pattern
    /// store, never cached).
    fn respond(
        &self,
        plan: &QueryPlan,
        results: Vec<SearchResult>,
        stats: QueryStats,
    ) -> QueryResponse {
        let explanations = if plan.explain {
            self.explain_results(plan, &results)
        } else {
            Vec::new()
        };
        QueryResponse {
            results,
            explanations,
            stats,
        }
    }

    /// Per-document Eq. 10–11 breakdown of a result list under a plan's
    /// effective configuration and filters.
    fn explain_results(&self, plan: &QueryPlan, results: &[SearchResult]) -> Vec<DocExplanation> {
        explain_results_with(
            &self.collection,
            plan,
            results,
            |term| self.doc_freq(term),
            |term| self.patterns.get(&term).map(Vec::as_slice),
        )
    }

    /// Executes a typed [`Query`]: the canonical entry point of the serving
    /// API.
    ///
    /// Scoring follows Eq. 10–11 restricted to the patterns that pass the
    /// query's time/region filters (see the [`crate::query`] module docs
    /// for the exact filter semantics). Results come from the result cache
    /// when the *full* canonical query — terms, `k`, effective
    /// configuration, and filters — was answered before; otherwise the
    /// evaluation walks the prebuilt index (unfiltered queries on a
    /// finalized engine) or scores the query terms' filtered posting lists
    /// on the fly. Either way [`QueryResponse::stats`] says which path ran.
    pub fn query(&self, query: &Query) -> Result<QueryResponse, QueryError> {
        match self.obs.get() {
            None => self.query_plain(query),
            Some(obs) => self.query_observed(query, &Arc::clone(obs)),
        }
    }

    fn query_plain(&self, query: &Query) -> Result<QueryResponse, QueryError> {
        let plan = self.plan(query)?;
        if plan.vacuous {
            return Ok(vacuous_response(&plan));
        }
        let key = plan_key(&plan);
        if let Some(hit) = self.cache.get(&key) {
            return Ok(self.respond(&plan, hit, cache_hit_stats(&plan)));
        }
        let (results, stats) = self.evaluate(&plan);
        self.cache.put(key, results.clone());
        Ok(self.respond(&plan, results, stats))
    }

    /// [`query_plain`](Self::query_plain) with span instrumentation: same
    /// calls in the same order, plus `Instant` reads between stages and
    /// lock-free metric recording at the end. The whole `evaluate` step is
    /// timed as one [`SpanKind::TaScan`] span (this tier has no shard
    /// gather to split out).
    fn query_observed(
        &self,
        query: &Query,
        obs: &Arc<SearchObs>,
    ) -> Result<QueryResponse, QueryError> {
        let mut clock = SpanClock::start();
        let plan = match self.plan(query) {
            Ok(plan) => plan,
            Err(e) => {
                obs.record_error();
                return Err(e);
            }
        };
        clock.lap(SpanKind::Plan);
        if plan.vacuous {
            let response = vacuous_response(&plan);
            obs.record_query(clock, &plan_key(&plan), &response.stats);
            return Ok(response);
        }
        let key = plan_key(&plan);
        if let Some(hit) = self.cache.get(&key) {
            clock.lap(SpanKind::CacheLookup);
            let response = self.respond(&plan, hit, cache_hit_stats(&plan));
            clock.lap(SpanKind::Respond);
            obs.record_query(clock, &key, &response.stats);
            return Ok(response);
        }
        clock.lap(SpanKind::CacheLookup);
        let (results, stats) = self.evaluate(&plan);
        clock.lap(SpanKind::TaScan);
        self.cache.put(key.clone(), results.clone());
        let response = self.respond(&plan, results, stats);
        clock.lap(SpanKind::Respond);
        obs.record_query(clock, &key, &response.stats);
        Ok(response)
    }

    /// Executes a batch of typed queries, returning one response per query
    /// (same order as the input). Each query fails or succeeds on its own.
    ///
    /// On a cold engine the batch scores each *distinct* (configuration,
    /// filter) group's term union once instead of once per query — queries
    /// with different filters never share an index, since a pattern
    /// surviving one query's window/region may be excluded by another's.
    /// On a finalized engine the prebuilt index already amortizes the
    /// unfiltered work, and repeated queries in the batch hit the cache.
    pub fn query_many(&self, queries: &[Query]) -> Vec<Result<QueryResponse, QueryError>> {
        if self.prebuilt.is_some() {
            return queries.iter().map(|q| self.query(q)).collect();
        }
        let plans: Vec<Result<QueryPlan, QueryError>> =
            queries.iter().map(|q| self.plan(q)).collect();
        // Settle everything that needs no evaluation: invalid queries,
        // vacuous queries, and cache hits.
        let mut responses: Vec<Option<Result<QueryResponse, QueryError>>> = plans
            .iter()
            .map(|p| match p {
                Err(e) => Some(Err(e.clone())),
                Ok(plan) if plan.vacuous => Some(Ok(vacuous_response(plan))),
                Ok(plan) => self
                    .cache
                    .get(&plan_key(plan))
                    .map(|hit| Ok(self.respond(plan, hit, cache_hit_stats(plan)))),
            })
            .collect();
        // Group the queries that missed by their effective (config, filter)
        // pair: only queries scored under identical restrictions may share
        // an index.
        let mut groups: Vec<((EngineConfig, PatternFilter), Vec<usize>)> = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            let (Ok(plan), None) = (plan, &responses[i]) else {
                continue;
            };
            let fingerprint = (plan.config, plan.filter);
            match groups.iter_mut().find(|(g, _)| *g == fingerprint) {
                Some((_, members)) => members.push(i),
                None => groups.push((fingerprint, vec![i])),
            }
        }
        for ((config, filter), members) in groups {
            let mut union: Vec<TermId> = members
                .iter()
                .flat_map(|&i| {
                    plans[i]
                        .as_ref()
                        .expect("grouped plans are Ok")
                        .terms
                        .clone()
                })
                .collect();
            union.sort();
            union.dedup();
            let index = self.build_index_with(&union, config, filter);
            for &i in &members {
                let plan = plans[i].as_ref().expect("grouped plans are Ok");
                let key = plan_key(plan);
                // Re-check the cache: an identical query earlier in this
                // batch may have just been evaluated and stored.
                let response = match self.cache.get(&key) {
                    Some(hit) => self.respond(plan, hit, cache_hit_stats(plan)),
                    None => {
                        let (results, ta) = threshold_topk_with_stats(
                            &index,
                            &plan.terms,
                            plan.k,
                            config.no_pattern,
                        );
                        self.cache.put(key, results.clone());
                        let stats = evaluated_stats(plan, ta, false);
                        self.respond(plan, results, stats)
                    }
                };
                responses[i] = Some(Ok(response));
            }
        }
        responses
            .into_iter()
            .map(|r| r.expect("every query settled"))
            .collect()
    }

    /// Answers a query: the top-`k` documents by Eq. 10, best first.
    ///
    /// Legacy shim: errors (empty query, `k == 0`) collapse to an empty
    /// result list, as this entry point always did.
    ///
    /// **Behavior change (0.3):** repeated terms in `query` now collapse
    /// to one occurrence before scoring, matching Eq. 10's sum over the
    /// query's *distinct* terms — `[t, t]` scores exactly like `[t]`
    /// everywhere (planner, cache key, TA scan, subscriptions). Earlier
    /// releases summed the repeated term's factor twice through this
    /// shim.
    #[deprecated(
        since = "0.2.0",
        note = "build a typed `Query` and call `BurstySearchEngine::query`"
    )]
    pub fn search(&self, query: &[TermId], k: usize) -> Vec<SearchResult> {
        self.query(&Query::terms(query.iter().copied()).top_k(k))
            .map(|response| response.results)
            .unwrap_or_default()
    }

    /// Answers a batch of queries with one shared index, returning one
    /// result list per query (same order as the input).
    ///
    /// Legacy shim over [`BurstySearchEngine::query_many`].
    #[deprecated(
        since = "0.2.0",
        note = "build typed `Query` values and call `BurstySearchEngine::query_many`"
    )]
    pub fn search_many(&self, queries: &[Vec<TermId>], k: usize) -> Vec<Vec<SearchResult>> {
        let typed: Vec<Query> = queries
            .iter()
            .map(|q| Query::terms(q.iter().copied()).top_k(k))
            .collect();
        self.query_many(&typed)
            .into_iter()
            .map(|r| r.map(|response| response.results).unwrap_or_default())
            .collect()
    }

    /// Convenience: answers a query given as raw strings, resolving them
    /// against the engine's collection snapshot.
    ///
    /// Legacy shim: unknown words follow the engine's no-pattern policy
    /// (under [`NoPatternPolicy::Exclude`] a query containing an unknown
    /// word matches nothing; under [`NoPatternPolicy::Zero`] unknown words
    /// are dropped), and the call never fails — malformed queries collapse
    /// to an empty result list.
    #[deprecated(
        since = "0.2.0",
        note = "build a typed `Query::text(..)` and call `BurstySearchEngine::query`"
    )]
    pub fn search_text(&self, query: &str, k: usize) -> Vec<SearchResult> {
        let unknown = match self.config.no_pattern {
            NoPatternPolicy::Exclude => UnknownWords::EmptyResponse,
            NoPatternPolicy::Zero => UnknownWords::Drop,
        };
        self.query(&Query::text(query).top_k(k).unknown_words(unknown))
            .map(|response| response.results)
            .unwrap_or_default()
    }
}

/// A validated, dictionary-resolved query ready for execution.
pub(crate) struct QueryPlan {
    /// Resolved distinct query terms, in first-occurrence order (repeated
    /// terms are collapsed by [`plan_query`], the one place every
    /// downstream identity — cache keys, TA scans, subscription keys —
    /// derives its term set from).
    pub(crate) terms: Vec<TermId>,
    pub(crate) k: usize,
    /// The engine configuration with per-query overrides applied.
    pub(crate) config: EngineConfig,
    pub(crate) filter: PatternFilter,
    pub(crate) explain: bool,
    /// The query is vacuously unmatchable (unknown word under
    /// [`UnknownWords::EmptyResponse`]): respond empty without evaluating.
    pub(crate) vacuous: bool,
}

// ---------------------------------------------------------------------------
// Shared query-execution machinery.
//
// These free functions are the single implementation of planning, scoring,
// stats assembly, and explanation used by BOTH `BurstySearchEngine` (above)
// and the sharded lock-free serving tier (`crate::shard`). Sharing them is
// what makes the two paths bit-identical: every float operation a query
// triggers runs through exactly this code, in exactly this order, no matter
// which tier executes it.
// ---------------------------------------------------------------------------

/// Validates and resolves a [`Query`] against a collection snapshot under a
/// base configuration (per-query overrides applied on top).
pub(crate) fn plan_query(
    collection: &Collection,
    base_config: EngineConfig,
    query: &Query,
) -> Result<QueryPlan, QueryError> {
    if query.top_k == 0 {
        return Err(QueryError::ZeroTopK);
    }
    let window = match &query.time_window {
        Some(w) => {
            let (start, end) = (*w.start(), *w.end());
            if start > end {
                return Err(QueryError::EmptyTimeWindow { start, end });
            }
            Some(TimeInterval::new(start, end))
        }
        None => None,
    };
    let region = match query.region {
        Some(r) => {
            if [r.min_x, r.min_y, r.max_x, r.max_y]
                .iter()
                .any(|v| v.is_nan())
            {
                return Err(QueryError::InvalidRegion { region: r });
            }
            Some(r)
        }
        None => None,
    };
    let mut config = base_config;
    if let Some(relevance) = query.relevance {
        config.relevance = relevance;
    }
    let mut vacuous = false;
    let terms = match &query.terms {
        QueryTerms::Ids(ids) => ids.clone(),
        QueryTerms::Text(text) => {
            let mut terms = Vec::new();
            for word in text.split_whitespace() {
                let lower = word.to_lowercase();
                match collection.dict().get(&lower) {
                    Some(term) => terms.push(term),
                    None => match query.unknown_words {
                        UnknownWords::Error => return Err(QueryError::UnknownWord { word: lower }),
                        UnknownWords::Drop => {}
                        UnknownWords::EmptyResponse => vacuous = true,
                    },
                }
            }
            terms
        }
    };
    // Canonical duplicate handling, in exactly one place: Eq. 10 sums one
    // relevance×burstiness factor per *distinct* term, so a repeated term
    // collapses to its first occurrence here. Every consumer of a plan
    // (cache keys via `plan_key`, the TA scan over `plan.terms`,
    // explanations, subscription registrations) therefore agrees on the
    // deduplicated term set.
    let mut deduped = Vec::with_capacity(terms.len());
    for term in terms {
        if !deduped.contains(&term) {
            deduped.push(term);
        }
    }
    let terms = deduped;
    if terms.is_empty() && !vacuous {
        return Err(QueryError::EmptyQuery);
    }
    Ok(QueryPlan {
        terms,
        k: query.top_k,
        config,
        filter: PatternFilter { window, region },
        explain: query.explain,
        vacuous,
    })
}

/// The canonical cache key of a plan.
pub(crate) fn plan_key(plan: &QueryPlan) -> QueryKey {
    QueryKey::canonical(
        &plan.terms,
        plan.k,
        plan.config,
        plan.filter.window,
        plan.filter.region,
    )
}

/// Stats template for a query answered from the result cache.
pub(crate) fn cache_hit_stats(plan: &QueryPlan) -> QueryStats {
    QueryStats {
        cache_hit: true,
        terms: plan.terms.len(),
        filtered: !plan.filter.is_none(),
        ..QueryStats::default()
    }
}

/// Stats of an evaluated (non-cached) query.
pub(crate) fn evaluated_stats(plan: &QueryPlan, ta: TopkStats, from_prebuilt: bool) -> QueryStats {
    QueryStats {
        cache_hit: false,
        served_from_prebuilt: from_prebuilt,
        postings_scanned: ta.postings_scanned,
        candidates_pruned: ta.candidates_pruned,
        terms: plan.terms.len(),
        filtered: !plan.filter.is_none(),
    }
}

/// The empty response of a vacuously unmatchable plan.
pub(crate) fn vacuous_response(plan: &QueryPlan) -> QueryResponse {
    QueryResponse {
        results: Vec::new(),
        explanations: Vec::new(),
        stats: QueryStats {
            terms: plan.terms.len(),
            filtered: !plan.filter.is_none(),
            ..QueryStats::default()
        },
    }
}

/// Eq. 11 for one (term, document) pair: aggregates the scores of the
/// term's patterns that survive `filter` and overlap the document.
pub(crate) fn burstiness_of(
    patterns: Option<&[StoredPattern]>,
    stream: StreamId,
    timestamp: Timestamp,
    aggregation: BurstinessAgg,
    filter: PatternFilter,
) -> Option<f64> {
    let overlapping: Vec<f64> = patterns?
        .iter()
        .filter(|p| filter.passes(p) && p.overlaps(stream, timestamp))
        .map(|p| p.score)
        .collect();
    aggregation.aggregate(&overlapping)
}

/// The Eq. 10–11 scored posting list of one term (unsorted) over an explicit
/// term→documents list and pattern set.
pub(crate) fn scored_postings(
    collection: &Collection,
    term: TermId,
    docs: Option<&[DocId]>,
    patterns: Option<&[StoredPattern]>,
    config: EngineConfig,
    filter: PatternFilter,
) -> Vec<Posting> {
    let n_docs = collection.documents().len();
    let Some(docs) = docs else {
        return Vec::new();
    };
    let doc_freq = docs.len();
    let mut list = Vec::new();
    for &doc_id in docs {
        let doc = collection.document(doc_id);
        let relevance = config.relevance.score(doc.freq(term), doc_freq, n_docs);
        match burstiness_of(
            patterns,
            doc.stream,
            doc.timestamp,
            config.aggregation,
            filter,
        ) {
            Some(burst) => list.push(Posting {
                doc: doc_id,
                score: relevance * burst,
            }),
            None => {
                if config.no_pattern == NoPatternPolicy::Zero {
                    // The term contributes nothing but the document stays
                    // eligible for the rest of the query.
                    list.push(Posting {
                        doc: doc_id,
                        score: 0.0,
                    });
                }
                // Under Exclude the document is simply absent from this
                // term's posting list, which the Threshold Algorithm
                // interprets as -inf.
            }
        }
    }
    list
}

/// Builds and finalizes a per-query index from a posting-list source.
pub(crate) fn query_index(
    query: &[TermId],
    mut postings_of: impl FnMut(TermId) -> Vec<Posting>,
) -> InvertedIndex {
    let mut terms = query.to_vec();
    terms.sort();
    terms.dedup();
    let mut index = InvertedIndex::new();
    for term in terms {
        index.set_postings(term, postings_of(term));
    }
    index.finalize();
    index
}

/// Per-document Eq. 10–11 breakdown of a result list under a plan's
/// effective configuration and filters, over explicit doc-frequency and
/// pattern sources.
pub(crate) fn explain_results_with<'p>(
    collection: &Collection,
    plan: &QueryPlan,
    results: &[SearchResult],
    doc_freq: impl Fn(TermId) -> usize,
    patterns_of: impl Fn(TermId) -> Option<&'p [StoredPattern]>,
) -> Vec<DocExplanation> {
    let n_docs = collection.documents().len();
    results
        .iter()
        .map(|r| {
            let doc = collection.document(r.doc);
            let mut total = 0.0;
            let terms = plan
                .terms
                .iter()
                .map(|&term| {
                    let relevance =
                        plan.config
                            .relevance
                            .score(doc.freq(term), doc_freq(term), n_docs);
                    let patterns: Vec<PatternMatch> = patterns_of(term)
                        .map(|ps| {
                            ps.iter()
                                .filter(|p| {
                                    plan.filter.passes(p) && p.overlaps(doc.stream, doc.timestamp)
                                })
                                .map(|p| PatternMatch {
                                    interval: p.timeframe,
                                    region: p.region,
                                    score: p.score,
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    let scores: Vec<f64> = patterns.iter().map(|p| p.score).collect();
                    let burstiness = plan.config.aggregation.aggregate(&scores);
                    let contribution = burstiness.map_or(0.0, |b| relevance * b);
                    total += contribution;
                    TermExplanation {
                        term,
                        relevance,
                        burstiness,
                        contribution,
                        patterns,
                    }
                })
                .collect();
            DocExplanation {
                doc: r.doc,
                total,
                terms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stb_core::CombinatorialPattern;
    use stb_corpus::CollectionBuilder;
    use stb_geo::GeoPoint;
    use std::collections::HashMap as StdHashMap;

    /// Three streams, 10 timestamps. "flood" bursts in streams 0 and 1
    /// during timestamps 4..=6; documents elsewhere mention it sporadically.
    fn build_fixture() -> (Collection, TermId) {
        let mut b = CollectionBuilder::new(10);
        let flood = b.dict_mut().intern("flood");
        let other = b.dict_mut().intern("cricket");
        let s0 = b.add_stream("A", GeoPoint::new(0.0, 0.0));
        let s1 = b.add_stream("B", GeoPoint::new(1.0, 1.0));
        let s2 = b.add_stream("C", GeoPoint::new(50.0, 50.0));
        for ts in 0..10 {
            for &s in &[s0, s1, s2] {
                let mut counts = StdHashMap::new();
                counts.insert(other, 3);
                if ts % 3 == 0 {
                    counts.insert(flood, 1);
                }
                b.add_document(s, ts, counts);
            }
        }
        // Burst documents.
        for ts in 4..=6 {
            for &s in &[s0, s1] {
                let mut counts = StdHashMap::new();
                counts.insert(flood, 10);
                b.add_document(s, ts, counts);
            }
        }
        (b.build(), flood)
    }

    fn flood_pattern() -> CombinatorialPattern {
        CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1)],
            TimeInterval::new(4, 6),
            1.5,
            vec![],
        )
    }

    fn assert_same_results(a: &[SearchResult], b: &[SearchResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.doc, y.doc);
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    /// Unfiltered term query through the typed API (the tests' equivalent
    /// of the legacy `search`). Degenerate queries resolve to no results.
    fn run(engine: &BurstySearchEngine, terms: &[TermId], k: usize) -> Vec<SearchResult> {
        engine
            .query(&Query::terms(terms.iter().copied()).top_k(k))
            .map(|response| response.results)
            .unwrap_or_default()
    }

    #[test]
    fn search_returns_burst_documents_first() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        let results = run(&engine, &[flood], 6);
        assert_eq!(results.len(), 6);
        for r in &results {
            let d = c.document(r.doc);
            // Under the Exclude policy every returned document must overlap
            // the pattern.
            assert!((4..=6).contains(&d.timestamp));
            assert!(d.stream == StreamId(0) || d.stream == StreamId(1));
            assert!(r.score > 0.0);
        }
        // The strongest hits are the high-frequency burst documents.
        let top_doc = c.document(results[0].doc);
        assert_eq!(top_doc.freq(flood), 10);
    }

    #[test]
    fn zero_policy_keeps_non_overlapping_documents() {
        let (c, flood) = build_fixture();
        let config = EngineConfig {
            no_pattern: NoPatternPolicy::Zero,
            ..Default::default()
        };
        let mut engine = BurstySearchEngine::new(&c, config);
        engine.set_patterns(flood, &[flood_pattern()]);
        let strict_count = {
            let mut strict = BurstySearchEngine::new(&c, EngineConfig::default());
            strict.set_patterns(flood, &[flood_pattern()]);
            run(&strict, &[flood], 100).len()
        };
        let lenient_count = run(&engine, &[flood], 100).len();
        // Zero policy can only return at least as many documents; documents
        // outside the pattern score 0 and are still filtered from the top-k
        // (non-positive scores are never returned), so the counts match here.
        assert!(lenient_count >= strict_count);
    }

    #[test]
    fn no_patterns_means_no_results_under_exclude() {
        let (c, flood) = build_fixture();
        let engine = BurstySearchEngine::new(&c, EngineConfig::default());
        assert!(run(&engine, &[flood], 10).is_empty());
    }

    #[test]
    fn document_burstiness_uses_max_aggregation() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        let weak = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1)],
            TimeInterval::new(4, 6),
            0.5,
            vec![],
        );
        engine.set_patterns(flood, &[weak, flood_pattern()]);
        // Find a burst document.
        let doc = c
            .documents()
            .iter()
            .find(|d| d.freq(flood) == 10)
            .unwrap()
            .id;
        assert_eq!(engine.document_burstiness(flood, doc), Some(1.5));
    }

    #[test]
    fn search_text_resolves_terms() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        let by_id = run(&engine, &[flood], 5);
        let by_text = engine.query(&Query::text("Flood").top_k(5)).unwrap();
        assert_eq!(by_id.len(), by_text.results.len());
        for (a, b) in by_id.iter().zip(&by_text.results) {
            assert_eq!(a.doc, b.doc);
        }
    }

    #[test]
    fn text_query_unknown_word_policies() {
        let (c, flood) = build_fixture();
        for finalized in [false, true] {
            let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
            engine.set_patterns(flood, &[flood_pattern()]);
            if finalized {
                engine.finalize_with_threads(2);
            }
            // Error (default): the unknown word is surfaced.
            assert_eq!(
                engine.query(&Query::text("flood UNKNOWNTERM").top_k(5)),
                Err(QueryError::UnknownWord {
                    word: "unknownterm".into()
                })
            );
            // EmptyResponse: the whole query is unmatchable, successfully.
            let vacuous = engine
                .query(
                    &Query::text("flood unknownterm")
                        .top_k(5)
                        .unknown_words(UnknownWords::EmptyResponse),
                )
                .unwrap();
            assert!(vacuous.results.is_empty());
            assert!(!vacuous.stats.cache_hit);
            // Drop: unknown words contribute nothing; all-unknown queries
            // resolve to no terms at all.
            let dropped = engine
                .query(
                    &Query::text("Flood unknownterm")
                        .top_k(5)
                        .unknown_words(UnknownWords::Drop),
                )
                .unwrap();
            assert_eq!(dropped.results, run(&engine, &[flood], 5));
            assert_eq!(
                engine.query(
                    &Query::text("unknownterm")
                        .top_k(5)
                        .unknown_words(UnknownWords::Drop)
                ),
                Err(QueryError::EmptyQuery)
            );
        }
    }

    #[test]
    fn unseen_term_id_never_panics() {
        let (c, flood) = build_fixture();
        // A TermId the collection has never seen (e.g. interned into a newer
        // dictionary snapshot than the engine's) must yield empty results on
        // cold and finalized engines alike — not a panic or debug-assert.
        let ghost = TermId(4242);
        for finalized in [false, true] {
            let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
            engine.set_patterns(flood, &[flood_pattern()]);
            if finalized {
                engine.finalize_with_threads(2);
            }
            assert!(run(&engine, &[ghost], 5).is_empty());
            assert!(run(&engine, &[flood, ghost], 5).is_empty());
            assert_eq!(engine.doc_freq(ghost), 0);
            assert_eq!(engine.document_burstiness(ghost, DocId(0)), None);
        }
    }

    #[test]
    fn update_collection_scores_newly_arrived_documents() {
        let (c, flood) = build_fixture();
        let shared: Arc<Collection> = Arc::new(c);
        let mut engine = BurstySearchEngine::new(Arc::clone(&shared), EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.finalize_with_threads(2);
        let before = run(&engine, &[flood], 50).len();

        // A new burst document and a brand-new term arrive.
        let mut next = Collection::clone(&shared);
        let surge = next.dict_mut().intern("surge");
        let mut counts = StdHashMap::new();
        counts.insert(flood, 10);
        counts.insert(surge, 3);
        let new_doc = next.push_document(StreamId(0), 5, counts);
        let next = Arc::new(next);
        engine.update_collection(Arc::clone(&next), &[new_doc]);
        engine.refresh_term(flood); // same patterns, one more overlapping doc
        engine.set_patterns(
            surge,
            &[CombinatorialPattern::new(
                vec![StreamId(0)],
                TimeInterval::new(4, 6),
                1.0,
                vec![],
            )],
        );

        let after = run(&engine, &[flood], 50);
        assert_eq!(after.len(), before + 1);
        assert!(after.iter().any(|r| r.doc == new_doc));
        let surge_hits = run(&engine, &[surge], 10);
        assert_eq!(surge_hits.len(), 1);
        assert_eq!(surge_hits[0].doc, new_doc);
        // The refreshed engine agrees with a cold engine over the new
        // snapshot.
        let mut reference = BurstySearchEngine::new(next, EngineConfig::default());
        reference.set_cache_capacity(0);
        reference.set_patterns(flood, &[flood_pattern()]);
        assert_same_results(&run(&reference, &[flood], 50), &after);
    }

    #[test]
    fn metrics_snapshot_tracks_counters() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        let cold = engine.metrics();
        assert!(!cold.finalized);
        assert_eq!(cold.finalize_count, 0);
        assert_eq!(cold.last_finalize_ms, None);
        assert_eq!(cold.n_docs, engine.collection().documents().len());

        engine.set_patterns(flood, &[flood_pattern()]);
        engine.finalize_with_threads(2);
        let _ = run(&engine, &[flood], 5);
        let _ = run(&engine, &[flood], 5);
        engine.set_patterns(flood, &[flood_pattern()]);

        let m = engine.metrics();
        assert!(m.finalized);
        assert_eq!(m.finalize_count, 1);
        assert!(m.last_finalize_ms.is_some());
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert!(m.term_rescore_count >= 1);
        assert!(m.indexed_terms >= 1);
        assert!(m.indexed_postings >= m.indexed_terms);
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BurstySearchEngine>();
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let (c, flood) = build_fixture();
        let engine = BurstySearchEngine::new(&c, EngineConfig::default());
        // "flood" appears in documents at ts 0,3,6,9 for 3 streams (12 docs)
        // plus 6 burst documents.
        assert_eq!(engine.doc_freq(flood), 18);
    }

    #[test]
    fn multi_term_query_requires_all_terms_under_exclude() {
        let (c, flood) = build_fixture();
        let cricket = c.dict().get("cricket").unwrap();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.set_patterns(
            cricket,
            &[CombinatorialPattern::new(
                vec![StreamId(0), StreamId(1), StreamId(2)],
                TimeInterval::new(0, 9),
                0.3,
                vec![],
            )],
        );
        let results = run(&engine, &[flood, cricket], 10);
        // Burst documents contain only "flood", background documents contain
        // "cricket" and sometimes "flood": only documents containing both
        // terms and overlapping both patterns qualify.
        for r in &results {
            let d = c.document(r.doc);
            assert!(d.freq(flood) > 0 && d.freq(cricket) > 0);
        }
    }

    #[test]
    fn finalized_engine_matches_cold_engine() {
        let (c, flood) = build_fixture();
        let cricket = c.dict().get("cricket").unwrap();
        let all_streams = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1), StreamId(2)],
            TimeInterval::new(0, 9),
            0.3,
            vec![],
        );
        for config in [
            EngineConfig::default(),
            EngineConfig {
                no_pattern: NoPatternPolicy::Zero,
                ..Default::default()
            },
        ] {
            let mut cold = BurstySearchEngine::new(&c, config);
            cold.set_cache_capacity(0);
            cold.set_patterns(flood, &[flood_pattern()]);
            cold.set_patterns(cricket, std::slice::from_ref(&all_streams));

            let mut hot = BurstySearchEngine::new(&c, config);
            hot.set_patterns(flood, &[flood_pattern()]);
            hot.set_patterns(cricket, std::slice::from_ref(&all_streams));
            hot.finalize_with_threads(3);
            assert!(hot.is_finalized());

            for query in [vec![flood], vec![cricket], vec![flood, cricket]] {
                for k in [1, 5, 50] {
                    assert_same_results(&run(&cold, &query, k), &run(&hot, &query, k));
                }
            }
        }
    }

    #[test]
    fn finalize_thread_count_does_not_change_results() {
        let (c, flood) = build_fixture();
        let mut one = BurstySearchEngine::new(&c, EngineConfig::default());
        one.set_patterns(flood, &[flood_pattern()]);
        one.finalize_with_threads(1);
        let mut many = BurstySearchEngine::new(&c, EngineConfig::default());
        many.set_patterns(flood, &[flood_pattern()]);
        many.finalize_with_threads(8);
        assert_same_results(&run(&one, &[flood], 10), &run(&many, &[flood], 10));
        // The prebuilt indexes are structurally identical too.
        let (a, b) = (
            one.prebuilt_index().unwrap(),
            many.prebuilt_index().unwrap(),
        );
        assert_eq!(a.n_terms(), b.n_terms());
        assert_eq!(a.n_postings(), b.n_postings());
    }

    #[test]
    fn repeated_search_hits_the_cache() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.finalize();
        let first = run(&engine, &[flood], 5);
        assert_eq!(engine.metrics().cache_hits, 0);
        let second = run(&engine, &[flood], 5);
        assert_eq!(engine.metrics().cache_hits, 1);
        assert_same_results(&first, &second);
        // Different k is a different cache entry.
        let _ = run(&engine, &[flood], 6);
        assert_eq!(engine.metrics().cache_hits, 1);
        assert_eq!(engine.metrics().cache_len, 2);
    }

    #[test]
    fn set_patterns_after_finalize_rebuilds_incrementally() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.finalize();
        let before = run(&engine, &[flood], 10);
        assert!(!before.is_empty());

        // Strengthen the pattern: cached results must not survive.
        let stronger = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1)],
            TimeInterval::new(4, 6),
            3.0,
            vec![],
        );
        engine.set_patterns(flood, &[stronger]);
        let after = run(&engine, &[flood], 10);
        assert_eq!(before.len(), after.len());
        for (b, a) in before.iter().zip(&after) {
            assert!(
                (a.score - 2.0 * b.score).abs() < 1e-9,
                "doubled pattern score"
            );
        }

        // Dropping the patterns empties the term's posting list in place.
        engine.set_patterns(flood, &[] as &[CombinatorialPattern]);
        assert!(run(&engine, &[flood], 10).is_empty());
    }

    #[test]
    fn query_many_cold_reuses_cache_on_repeat() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        let queries = vec![
            Query::terms([flood]).top_k(5),
            Query::terms([flood]).top_k(5),
        ];
        let first: Vec<_> = engine
            .query_many(&queries)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        // Within one batch the second (identical) query hits the cache.
        assert_eq!(engine.metrics().cache_hits, 1);
        assert!(!first[0].stats.cache_hit);
        assert!(first[1].stats.cache_hit);
        // A repeated batch is answered entirely from the cache — no index
        // is rebuilt for it.
        let second: Vec<_> = engine
            .query_many(&queries)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(engine.metrics().cache_hits, 3);
        assert_eq!(first[0].results, second[0].results);
        assert_eq!(first[1].results, second[1].results);
    }

    #[test]
    fn set_patterns_from_duplicate_terms_last_wins() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        let source = vec![
            (flood, vec![flood_pattern()]),
            (flood, Vec::new()), // a later run retracts the pattern
        ];
        engine.set_patterns_from(&source);
        assert!(run(&engine, &[flood], 10).is_empty());
    }

    #[test]
    fn query_many_matches_one_by_one_filtered_and_unfiltered() {
        // Regression guard for the batched union-scoring path: a batch
        // mixing unfiltered, windowed, and regioned queries must return
        // exactly what issuing them one by one returns — one query's
        // filters must never leak into another's scoring.
        let (c, flood) = build_fixture();
        let cricket = c.dict().get("cricket").unwrap();
        let all_streams = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1), StreamId(2)],
            TimeInterval::new(0, 9),
            0.3,
            vec![],
        );
        let queries = vec![
            Query::terms([flood]).top_k(7),
            Query::terms([cricket]).top_k(7),
            Query::terms([flood, cricket]).top_k(7),
            Query::terms([flood]).top_k(7), // repeat: in-batch cache hit
            Query::terms([flood]).top_k(7).time_window(0..=3),
            Query::terms([flood, cricket]).top_k(7).time_window(4..=9),
            // Region around streams A/B only (stream C sits at (50, 50)).
            Query::terms([flood])
                .top_k(7)
                .region(Rect::new(-1.0, -1.0, 2.0, 2.0)),
            Query::terms([cricket])
                .top_k(7)
                .time_window(2..=8)
                .region(Rect::new(40.0, 40.0, 60.0, 60.0)),
        ];
        for finalized in [false, true] {
            let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
            engine.set_patterns(flood, &[flood_pattern()]);
            engine.set_patterns(cricket, std::slice::from_ref(&all_streams));
            if finalized {
                engine.finalize();
            }
            let batch = engine.query_many(&queries);
            assert_eq!(batch.len(), queries.len());
            let mut reference = BurstySearchEngine::new(&c, EngineConfig::default());
            reference.set_cache_capacity(0);
            reference.set_patterns(flood, &[flood_pattern()]);
            reference.set_patterns(cricket, std::slice::from_ref(&all_streams));
            for (q, got) in queries.iter().zip(batch) {
                let one_by_one = reference.query(q).unwrap();
                assert_same_results(&got.unwrap().results, &one_by_one.results);
            }
        }
    }

    #[test]
    fn time_window_restricts_to_intersecting_patterns() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]); // timeframe 4..=6
        let all = run(&engine, &[flood], 50);
        // A window intersecting the pattern keeps every supported document
        // (filters select patterns, not documents).
        let overlapping = engine
            .query(&Query::terms([flood]).top_k(50).time_window(6..=9))
            .unwrap();
        assert_same_results(&overlapping.results, &all);
        assert!(overlapping.stats.filtered);
        // A disjoint window removes the pattern and with it every result.
        let disjoint = engine
            .query(&Query::terms([flood]).top_k(50).time_window(7..=9))
            .unwrap();
        assert!(disjoint.results.is_empty());
    }

    #[test]
    fn region_filter_uses_pattern_geometry() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        // Pattern over streams A(0,0) and B(1,1): its MBR is [0,1]x[0,1].
        engine.set_patterns(flood, &[flood_pattern()]);
        let all = run(&engine, &[flood], 50);
        let near = engine
            .query(
                &Query::terms([flood])
                    .top_k(50)
                    .region(Rect::new(0.5, 0.5, 3.0, 3.0)),
            )
            .unwrap();
        assert_same_results(&near.results, &all);
        // A rectangle far from both streams excludes the pattern entirely.
        let far = engine
            .query(
                &Query::terms([flood])
                    .top_k(50)
                    .region(Rect::new(40.0, 40.0, 60.0, 60.0)),
            )
            .unwrap();
        assert!(far.results.is_empty());
    }

    #[test]
    fn filters_select_among_multiple_patterns() {
        // Two patterns of the same term with different windows and regions:
        // filtering picks the right burstiness per document.
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        let early_ab = flood_pattern(); // streams 0,1 / 4..=6 / score 1.5
        let late_c =
            CombinatorialPattern::new(vec![StreamId(2)], TimeInterval::new(0, 9), 0.7, vec![]);
        engine.set_patterns(flood, &[early_ab, late_c]);

        // Window+region matching only the C pattern: every hit is from
        // stream C and scored by the weaker pattern.
        let only_c = engine
            .query(
                &Query::terms([flood])
                    .top_k(50)
                    .time_window(0..=3)
                    .region(Rect::new(45.0, 45.0, 55.0, 55.0))
                    .explain(true),
            )
            .unwrap();
        assert!(!only_c.results.is_empty());
        for (r, e) in only_c.results.iter().zip(&only_c.explanations) {
            assert_eq!(c.document(r.doc).stream, StreamId(2));
            assert_eq!(e.terms[0].burstiness, Some(0.7));
            assert_eq!(e.terms[0].patterns.len(), 1);
        }
    }

    #[test]
    fn explanations_break_down_the_score() {
        let (c, flood) = build_fixture();
        let cricket = c.dict().get("cricket").unwrap();
        let all_streams = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1), StreamId(2)],
            TimeInterval::new(0, 9),
            0.3,
            vec![],
        );
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.set_patterns(cricket, std::slice::from_ref(&all_streams));
        engine.finalize_with_threads(2);

        let response = engine
            .query(&Query::terms([flood, cricket]).top_k(10).explain(true))
            .unwrap();
        assert!(!response.results.is_empty());
        assert_eq!(response.results.len(), response.explanations.len());
        for (r, e) in response.results.iter().zip(&response.explanations) {
            assert_eq!(r.doc, e.doc);
            // The per-term contributions reconstruct the score exactly.
            assert_eq!(e.total, r.score);
            assert_eq!(e.terms.len(), 2);
            let sum: f64 = e.terms.iter().map(|t| t.contribution).sum();
            assert_eq!(sum, e.total);
            for t in &e.terms {
                let b = t.burstiness.expect("Exclude policy: every term matched");
                assert_eq!(t.contribution, t.relevance * b);
                assert!(!t.patterns.is_empty());
                for p in &t.patterns {
                    assert!(p.region.is_some(), "stored geometry must be exposed");
                }
            }
        }
        // A cache hit still explains (explanations are never cached).
        let again = engine
            .query(&Query::terms([flood, cricket]).top_k(10).explain(true))
            .unwrap();
        assert!(again.stats.cache_hit);
        assert_eq!(again.explanations, response.explanations);
    }

    #[test]
    fn structured_errors_cover_malformed_queries() {
        let (c, flood) = build_fixture();
        let engine = BurstySearchEngine::new(&c, EngineConfig::default());
        assert_eq!(
            engine.query(&Query::terms([] as [TermId; 0])),
            Err(QueryError::EmptyQuery)
        );
        assert_eq!(
            engine.query(&Query::terms([flood]).top_k(0)),
            Err(QueryError::ZeroTopK)
        );
        #[allow(clippy::reversed_empty_ranges)] // the empty window IS the case under test
        let inverted = Query::terms([flood]).time_window(7..=3);
        assert_eq!(
            engine.query(&inverted),
            Err(QueryError::EmptyTimeWindow { start: 7, end: 3 })
        );
        // `Rect::new`'s min/max normalization absorbs a single NaN corner,
        // so build the pathological rectangle field by field.
        let nan_rect = Rect {
            min_x: f64::NAN,
            min_y: 0.0,
            max_x: 1.0,
            max_y: 1.0,
        };
        assert!(matches!(
            engine.query(&Query::terms([flood]).region(nan_rect)),
            Err(QueryError::InvalidRegion { .. })
        ));
    }

    #[test]
    fn per_query_relevance_override_matches_reconfigured_engine() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.finalize_with_threads(2);

        let mut raw_engine = BurstySearchEngine::new(
            &c,
            EngineConfig::builder()
                .relevance(Relevance::RawFreq)
                .build(),
        );
        raw_engine.set_cache_capacity(0);
        raw_engine.set_patterns(flood, &[flood_pattern()]);

        let overridden = engine
            .query(
                &Query::terms([flood])
                    .top_k(10)
                    .relevance(Relevance::RawFreq),
            )
            .unwrap();
        // The override bypasses the prebuilt lists (they embed LogFreq).
        assert!(!overridden.stats.served_from_prebuilt);
        assert_same_results(&overridden.results, &run(&raw_engine, &[flood], 10));
        // The default-config query is unaffected and still served prebuilt.
        let default = engine.query(&Query::terms([flood]).top_k(10)).unwrap();
        assert!(default.stats.served_from_prebuilt);
        assert_same_results(&default.results, &run(&engine, &[flood], 10));
    }

    #[test]
    fn stats_report_execution_path() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        let q = Query::terms([flood]).top_k(3);

        let cold = engine.query(&q).unwrap();
        assert!(!cold.stats.cache_hit);
        assert!(!cold.stats.served_from_prebuilt);
        assert!(cold.stats.postings_scanned > 0);
        assert_eq!(cold.stats.terms, 1);

        let hit = engine.query(&q).unwrap();
        assert!(hit.stats.cache_hit);
        assert_eq!(hit.stats.postings_scanned, 0);

        engine.finalize_with_threads(2);
        let prebuilt = engine.query(&q).unwrap();
        assert!(prebuilt.stats.served_from_prebuilt);
        assert!(!prebuilt.stats.cache_hit);
    }

    #[test]
    fn engine_config_builder_defaults_match_default() {
        assert_eq!(EngineConfig::builder().build(), EngineConfig::default());
        let custom = EngineConfig::builder()
            .relevance(Relevance::TfIdf)
            .aggregation(BurstinessAgg::Mean)
            .no_pattern(NoPatternPolicy::Zero)
            .build();
        assert_eq!(custom.relevance, Relevance::TfIdf);
        assert_eq!(custom.aggregation, BurstinessAgg::Mean);
        assert_eq!(custom.no_pattern, NoPatternPolicy::Zero);
    }

    /// The legacy trio must keep compiling and behaving exactly as before
    /// while the workspace migrates to the typed API.
    #[allow(deprecated)]
    mod deprecated_shims {
        use super::*;

        #[test]
        fn search_matches_query() {
            let (c, flood) = build_fixture();
            let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
            engine.set_patterns(flood, &[flood_pattern()]);
            assert_same_results(&engine.search(&[flood], 6), &run(&engine, &[flood], 6));
            // Degenerate inputs collapse to empty results, as they always did.
            assert!(engine.search(&[], 5).is_empty());
            assert!(engine.search(&[flood], 0).is_empty());
        }

        #[test]
        fn search_text_follows_no_pattern_policy() {
            let (c, flood) = build_fixture();
            // Exclude: a query containing an unknown word matches nothing.
            let mut strict = BurstySearchEngine::new(&c, EngineConfig::default());
            strict.set_patterns(flood, &[flood_pattern()]);
            assert!(!strict.search_text("flood", 5).is_empty());
            assert!(strict.search_text("flood unknownterm", 5).is_empty());
            // Zero: unknown words are dropped.
            let mut lenient = BurstySearchEngine::new(
                &c,
                EngineConfig::builder()
                    .no_pattern(NoPatternPolicy::Zero)
                    .build(),
            );
            lenient.set_patterns(flood, &[flood_pattern()]);
            assert_eq!(
                lenient.search_text("Flood unknownterm", 5).len(),
                lenient.search_text("Flood", 5).len()
            );
            assert!(lenient.search_text("unknownterm", 5).is_empty());
        }

        #[test]
        fn search_many_matches_individual_searches() {
            let (c, flood) = build_fixture();
            let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
            engine.set_patterns(flood, &[flood_pattern()]);
            let queries = vec![vec![flood], vec![], vec![flood]];
            let batch = engine.search_many(&queries, 5);
            assert_eq!(batch.len(), 3);
            assert_same_results(&batch[0], &engine.search(&[flood], 5));
            assert!(batch[1].is_empty());
            assert_same_results(&batch[2], &batch[0]);
        }

        #[test]
        fn cache_counter_forwarders_agree_with_metrics() {
            let (c, flood) = build_fixture();
            let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
            engine.set_patterns(flood, &[flood_pattern()]);
            let _ = engine.search(&[flood], 5);
            let _ = engine.search(&[flood], 5);
            let m = engine.metrics();
            assert_eq!(engine.cache_hits(), m.cache_hits);
            assert_eq!(engine.cache_misses(), m.cache_misses);
            assert_eq!(engine.cache_len(), m.cache_len);
        }
    }
}
