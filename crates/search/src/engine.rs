//! The bursty-document search engine (Section 5, Problem 2).
//!
//! The engine combines three ingredients:
//!
//! 1. a document collection (for term frequencies and document metadata),
//! 2. the spatiotemporal patterns mined per term by one of the miners
//!    (`STComb`, `STLocal`, or the temporal-only `TB` baseline) — the engine
//!    handles one pattern source at a time, as in the paper,
//! 3. a scoring configuration (relevance strategy, burstiness aggregation,
//!    no-pattern policy).
//!
//! For every query term it builds a posting list whose per-document score is
//! `relevance(d, t) × burstiness(d, t)` (Eq. 10–11) and evaluates the top-k
//! with Fagin's Threshold Algorithm.

use crate::burstiness::{BurstinessAgg, NoPatternPolicy};
use crate::index::InvertedIndex;
use crate::relevance::Relevance;
use crate::threshold::{threshold_topk, ScoredDoc};
use std::collections::HashMap;

use stb_core::Pattern;
use stb_corpus::StreamId;
use stb_corpus::{Collection, DocId, TermId, Timestamp};
use stb_timeseries::TimeInterval;

/// A search hit: a document and its total score for the query.
pub type SearchResult = ScoredDoc;

/// Scoring configuration of the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Relevance strategy (default: `log(freq + 1)`).
    pub relevance: Relevance,
    /// Burstiness aggregation over overlapping patterns (default: maximum).
    pub aggregation: BurstinessAgg,
    /// Behaviour for documents with no overlapping pattern (default:
    /// exclude, per Eq. 11).
    pub no_pattern: NoPatternPolicy,
}

/// A pattern reduced to what the engine needs: which stream/timestamp pairs
/// it covers and how strong it is.
#[derive(Debug, Clone)]
struct StoredPattern {
    streams: Vec<StreamId>,
    timeframe: TimeInterval,
    score: f64,
}

impl StoredPattern {
    fn overlaps(&self, stream: StreamId, ts: Timestamp) -> bool {
        self.timeframe.contains(ts) && self.streams.binary_search(&stream).is_ok()
    }
}

/// The bursty-document search engine.
pub struct BurstySearchEngine<'a> {
    collection: &'a Collection,
    config: EngineConfig,
    patterns: HashMap<TermId, Vec<StoredPattern>>,
    /// Corpus-level inverted lists: term → documents containing it.
    term_docs: HashMap<TermId, Vec<DocId>>,
}

impl<'a> BurstySearchEngine<'a> {
    /// Creates an engine over a collection with the given scoring
    /// configuration. Patterns must be registered per term with
    /// [`BurstySearchEngine::set_patterns`] before searching.
    pub fn new(collection: &'a Collection, config: EngineConfig) -> Self {
        let mut term_docs: HashMap<TermId, Vec<DocId>> = HashMap::new();
        for doc in collection.documents() {
            for &term in doc.counts.keys() {
                term_docs.entry(term).or_default().push(doc.id);
            }
        }
        for docs in term_docs.values_mut() {
            docs.sort();
            docs.dedup();
        }
        Self {
            collection,
            config,
            patterns: HashMap::new(),
            term_docs,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers the mined patterns of a term, replacing any previous ones.
    /// Accepts any pattern type (`CombinatorialPattern`, `RegionalPattern`, …).
    pub fn set_patterns<P: Pattern>(&mut self, term: TermId, patterns: &[P]) {
        let stored = patterns
            .iter()
            .map(|p| StoredPattern {
                streams: p.streams().to_vec(),
                timeframe: p.timeframe(),
                score: p.score(),
            })
            .collect();
        self.patterns.insert(term, stored);
    }

    /// Number of documents that contain the term.
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.term_docs.get(&term).map(Vec::len).unwrap_or(0)
    }

    /// `burstiness(d, t)` of Eq. 11: aggregates the scores of the patterns of
    /// `term` that overlap the document, or `None` if no pattern overlaps.
    pub fn document_burstiness(&self, term: TermId, doc: DocId) -> Option<f64> {
        let document = self.collection.document(doc);
        let overlapping: Vec<f64> = self
            .patterns
            .get(&term)?
            .iter()
            .filter(|p| p.overlaps(document.stream, document.timestamp))
            .map(|p| p.score)
            .collect();
        self.config.aggregation.aggregate(&overlapping)
    }

    /// Builds the per-term inverted index (Eq. 10 per-term scores) for a set
    /// of query terms.
    pub fn build_index(&self, query: &[TermId]) -> InvertedIndex {
        let n_docs = self.collection.documents().len();
        let mut index = InvertedIndex::new();
        for &term in query {
            let Some(docs) = self.term_docs.get(&term) else {
                continue;
            };
            let doc_freq = docs.len();
            for &doc_id in docs {
                let doc = self.collection.document(doc_id);
                let relevance = self
                    .config
                    .relevance
                    .score(doc.freq(term), doc_freq, n_docs);
                match self.document_burstiness(term, doc_id) {
                    Some(burst) => index.insert(term, doc_id, relevance * burst),
                    None => {
                        if self.config.no_pattern == NoPatternPolicy::Zero {
                            // The term contributes nothing but the document
                            // stays eligible for the rest of the query.
                            index.insert(term, doc_id, 0.0);
                        }
                        // Under Exclude the document is simply absent from
                        // this term's posting list, which the Threshold
                        // Algorithm interprets as -inf.
                    }
                }
            }
        }
        index.finalize();
        index
    }

    /// Answers a query: the top-`k` documents by Eq. 10, best first.
    pub fn search(&self, query: &[TermId], k: usize) -> Vec<SearchResult> {
        let index = self.build_index(query);
        threshold_topk(&index, query, k, self.config.no_pattern)
    }

    /// Convenience: answers a query given as raw strings, resolving them
    /// against the collection's dictionary (unknown terms are dropped).
    pub fn search_text(&self, query: &str, k: usize) -> Vec<SearchResult> {
        let terms: Vec<TermId> = query
            .split_whitespace()
            .filter_map(|w| self.collection.dict().get(&w.to_lowercase()))
            .collect();
        self.search(&terms, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stb_core::CombinatorialPattern;
    use stb_corpus::CollectionBuilder;
    use stb_geo::GeoPoint;
    use std::collections::HashMap as StdHashMap;

    /// Three streams, 10 timestamps. "flood" bursts in streams 0 and 1
    /// during timestamps 4..=6; documents elsewhere mention it sporadically.
    fn build_fixture() -> (Collection, TermId) {
        let mut b = CollectionBuilder::new(10);
        let flood = b.dict_mut().intern("flood");
        let other = b.dict_mut().intern("cricket");
        let s0 = b.add_stream("A", GeoPoint::new(0.0, 0.0));
        let s1 = b.add_stream("B", GeoPoint::new(1.0, 1.0));
        let s2 = b.add_stream("C", GeoPoint::new(50.0, 50.0));
        for ts in 0..10 {
            for &s in &[s0, s1, s2] {
                let mut counts = StdHashMap::new();
                counts.insert(other, 3);
                if ts % 3 == 0 {
                    counts.insert(flood, 1);
                }
                b.add_document(s, ts, counts);
            }
        }
        // Burst documents.
        for ts in 4..=6 {
            for &s in &[s0, s1] {
                let mut counts = StdHashMap::new();
                counts.insert(flood, 10);
                b.add_document(s, ts, counts);
            }
        }
        (b.build(), flood)
    }

    fn flood_pattern() -> CombinatorialPattern {
        CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1)],
            TimeInterval::new(4, 6),
            1.5,
            vec![],
        )
    }

    #[test]
    fn search_returns_burst_documents_first() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        let results = engine.search(&[flood], 6);
        assert_eq!(results.len(), 6);
        for r in &results {
            let d = c.document(r.doc);
            // Under the Exclude policy every returned document must overlap
            // the pattern.
            assert!((4..=6).contains(&d.timestamp));
            assert!(d.stream == StreamId(0) || d.stream == StreamId(1));
            assert!(r.score > 0.0);
        }
        // The strongest hits are the high-frequency burst documents.
        let top_doc = c.document(results[0].doc);
        assert_eq!(top_doc.freq(flood), 10);
    }

    #[test]
    fn zero_policy_keeps_non_overlapping_documents() {
        let (c, flood) = build_fixture();
        let config = EngineConfig {
            no_pattern: NoPatternPolicy::Zero,
            ..Default::default()
        };
        let mut engine = BurstySearchEngine::new(&c, config);
        engine.set_patterns(flood, &[flood_pattern()]);
        let strict_count = {
            let mut strict = BurstySearchEngine::new(&c, EngineConfig::default());
            strict.set_patterns(flood, &[flood_pattern()]);
            strict.search(&[flood], 100).len()
        };
        let lenient_count = engine.search(&[flood], 100).len();
        // Zero policy can only return at least as many documents; documents
        // outside the pattern score 0 and are still filtered from the top-k
        // (non-positive scores are never returned), so the counts match here.
        assert!(lenient_count >= strict_count);
    }

    #[test]
    fn no_patterns_means_no_results_under_exclude() {
        let (c, flood) = build_fixture();
        let engine = BurstySearchEngine::new(&c, EngineConfig::default());
        assert!(engine.search(&[flood], 10).is_empty());
    }

    #[test]
    fn document_burstiness_uses_max_aggregation() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        let weak = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1)],
            TimeInterval::new(4, 6),
            0.5,
            vec![],
        );
        engine.set_patterns(flood, &[weak, flood_pattern()]);
        // Find a burst document.
        let doc = c
            .documents()
            .iter()
            .find(|d| d.freq(flood) == 10)
            .unwrap()
            .id;
        assert_eq!(engine.document_burstiness(flood, doc), Some(1.5));
    }

    #[test]
    fn search_text_resolves_terms() {
        let (c, flood) = build_fixture();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        let by_id = engine.search(&[flood], 5);
        let by_text = engine.search_text("Flood unknownterm", 5);
        assert_eq!(by_id.len(), by_text.len());
        for (a, b) in by_id.iter().zip(&by_text) {
            assert_eq!(a.doc, b.doc);
        }
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let (c, flood) = build_fixture();
        let engine = BurstySearchEngine::new(&c, EngineConfig::default());
        // "flood" appears in documents at ts 0,3,6,9 for 3 streams (12 docs)
        // plus 6 burst documents.
        assert_eq!(engine.doc_freq(flood), 18);
    }

    #[test]
    fn multi_term_query_requires_all_terms_under_exclude() {
        let (c, flood) = build_fixture();
        let cricket = c.dict().get("cricket").unwrap();
        let mut engine = BurstySearchEngine::new(&c, EngineConfig::default());
        engine.set_patterns(flood, &[flood_pattern()]);
        engine.set_patterns(
            cricket,
            &[CombinatorialPattern::new(
                vec![StreamId(0), StreamId(1), StreamId(2)],
                TimeInterval::new(0, 9),
                0.3,
                vec![],
            )],
        );
        let results = engine.search(&[flood, cricket], 10);
        // Burst documents contain only "flood", background documents contain
        // "cricket" and sometimes "flood": only documents containing both
        // terms and overlapping both patterns qualify.
        for r in &results {
            let d = c.document(r.doc);
            assert!(d.freq(flood) > 0 && d.freq(cricket) > 0);
        }
    }
}
