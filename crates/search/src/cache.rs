//! LRU cache of query results for the serving path.
//!
//! The prebuilt posting index (see [`crate::engine::BurstySearchEngine`])
//! makes individual queries cheap; real query workloads are additionally
//! highly repetitive, so the engine keeps a small LRU cache of fully
//! evaluated top-k result lists. Entries are keyed on the complete query
//! identity — the (sorted) term multiset, `k`, and the scoring
//! configuration — and are invalidated per term whenever
//! [`crate::engine::BurstySearchEngine::set_patterns`] changes that term's
//! patterns, so a hit is always equivalent to re-running the query.
//!
//! The cache is internally synchronized (a `Mutex` around the map, atomic
//! hit/miss counters), so a finalized engine can serve `&self` queries from
//! multiple threads.

use crate::engine::{EngineConfig, SearchResult};
use stb_obs::Counter;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use stb_corpus::TermId;
use stb_geo::Rect;
use stb_timeseries::TimeInterval;

/// Identity of a cached query: term multiset (sorted), result size, the
/// effective engine configuration, and the spatiotemporal filters — the
/// full canonicalized query. Two queries differing only in their time
/// window or region hash to different keys, so filtered and unfiltered
/// results can never collide.
///
/// Terms are sorted because Eq. 10 sums per-term contributions — queries
/// that are permutations of each other have identical results. The key
/// itself stores whatever term list it is given (it stays usable as a raw
/// multiset key), but planned queries never contain duplicates: the
/// planner collapses repeated terms canonically before any key is built,
/// so cache keys, TA scans, and subscription keys always agree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    terms: Vec<TermId>,
    k: usize,
    config: EngineConfig,
    /// Closed time window as `(start, end)`, if filtered.
    window: Option<(usize, usize)>,
    /// Region corners as IEEE-754 bit patterns `[min_x, min_y, max_x,
    /// max_y]` — bitwise identity, so the key stays `Eq + Hash` without
    /// giving distinct float values (e.g. `0.0` vs `-0.0`) the same key.
    region: Option<[u64; 4]>,
}

impl QueryKey {
    /// Builds the key for an unfiltered query, normalizing term order.
    pub fn new(query: &[TermId], k: usize, config: EngineConfig) -> Self {
        Self::canonical(query, k, config, None, None)
    }

    /// Builds the full canonical key: sorted terms, result size, effective
    /// configuration, and the query's time/region filters.
    pub fn canonical(
        query: &[TermId],
        k: usize,
        config: EngineConfig,
        window: Option<TimeInterval>,
        region: Option<Rect>,
    ) -> Self {
        let mut terms = query.to_vec();
        terms.sort();
        Self {
            terms,
            k,
            config,
            window: window.map(|w| (w.start, w.end)),
            region: region.map(|r| {
                [
                    r.min_x.to_bits(),
                    r.min_y.to_bits(),
                    r.max_x.to_bits(),
                    r.max_y.to_bits(),
                ]
            }),
        }
    }

    /// Whether the key's query involves `term` (used for invalidation).
    fn involves(&self, term: TermId) -> bool {
        self.terms.binary_search(&term).is_ok()
    }

    /// The key's term set, sorted ascending. For keys built from a planned
    /// query this is the canonical deduplicated term set — the
    /// subscription registry indexes registrations by exactly these terms.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Stable single-line rendering of the canonical query identity for
    /// the slow-query log, e.g. `terms=[3,17] k=10 window=2..=5`.
    ///
    /// Covers the fields an operator triages on — sorted terms, `k`, and
    /// the spatiotemporal filters; the scoring configuration (also part of
    /// the key's identity) is omitted for brevity.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("terms=[");
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", t.0);
        }
        let _ = write!(out, "] k={}", self.k);
        if let Some((start, end)) = self.window {
            let _ = write!(out, " window={start}..={end}");
        }
        if let Some(bits) = self.region {
            let [min_x, min_y, max_x, max_y] = bits.map(f64::from_bits);
            let _ = write!(out, " region=({min_x},{min_y})..({max_x},{max_y})");
        }
        out
    }
}

#[derive(Debug)]
struct Entry {
    results: Vec<SearchResult>,
    /// Logical timestamp of the last access (monotone counter, not wall
    /// clock), used for least-recently-used eviction.
    last_used: u64,
    /// Serving generation the results were computed from (0 for unversioned
    /// callers). A reader serving generation `g` may only consume entries
    /// with `generation <= g` — see [`QueryCache::get_at`].
    generation: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<QueryKey, Entry>,
    clock: u64,
}

/// An LRU cache of top-k query results with per-term invalidation.
///
/// Capacity 0 disables the cache entirely (every lookup misses, nothing is
/// stored). Eviction scans for the least-recently-used entry, which is
/// `O(capacity)` per insertion past capacity — fine for the intended
/// capacities (hundreds to a few thousand distinct queries).
#[derive(Debug)]
pub struct QueryCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` distinct queries.
    pub fn new(capacity: usize) -> Self {
        Self::with_counters(capacity, Arc::new(Counter::new()), Arc::new(Counter::new()))
    }

    /// Creates a cache that counts hits and misses into the given shared
    /// cells.
    ///
    /// The sharded serving tier passes the *same* two cells to every
    /// per-shard cache, so the tier-wide totals are maintained by the hot
    /// path itself — and an `ObsRegistry` that adopts the cells renders
    /// them live, making `EngineMetrics` a thin view over the registry
    /// rather than a separate tally.
    pub fn with_counters(capacity: usize, hits: Arc<Counter>, misses: Arc<Counter>) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
            hits,
            misses,
        }
    }

    /// Maximum number of cached queries (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a query, refreshing its recency on a hit.
    pub fn get(&self, key: &QueryKey) -> Option<Vec<SearchResult>> {
        self.get_at(key, u64::MAX)
    }

    /// Looks up a query on behalf of a reader serving `generation`.
    ///
    /// A hit is returned only when the entry was computed from that
    /// generation *or an older one* — older surviving entries are exact
    /// because every intervening publish invalidated the queries its dirty
    /// terms touched. Entries from a **newer** generation are rejected (and
    /// counted as a miss): a reader still holding generation `g` while
    /// `g+1` is being published must not serve results referencing state
    /// (e.g. documents) that `g` does not contain.
    pub fn get_at(&self, key: &QueryKey, generation: u64) -> Option<Vec<SearchResult>> {
        if self.capacity == 0 {
            self.misses.inc();
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) if entry.generation <= generation => {
                entry.last_used = clock;
                self.hits.inc();
                Some(entry.results.clone())
            }
            _ => {
                self.misses.inc();
                None
            }
        }
    }

    /// Stores a query's results, evicting the least-recently-used entry if
    /// the cache is full.
    pub fn put(&self, key: QueryKey, results: Vec<SearchResult>) {
        self.put_tagged(key, results, 0, || true);
    }

    /// Stores a query's results only if `valid` still holds once the cache
    /// lock is taken. The entry is untagged (generation 0), so every
    /// [`QueryCache::get_at`] reader may consume it.
    pub fn put_if(&self, key: QueryKey, results: Vec<SearchResult>, valid: impl FnOnce() -> bool) {
        self.put_tagged(key, results, 0, valid);
    }

    /// Stores a query's results computed from serving generation
    /// `generation`, only if `valid` still holds once the cache lock is
    /// taken.
    ///
    /// This closes the lock-free serving tier's staleness race: a reader
    /// evaluates against generation `g`, then calls `put_tagged` with a
    /// check that the published generation is still `g`. Because the check
    /// runs *under the same mutex* the writer's per-term invalidation
    /// takes, a stale result either observes the bumped generation here
    /// (and is not inserted) or is inserted before the writer invalidates —
    /// in which case the writer's invalidation removes it.
    pub fn put_tagged(
        &self,
        key: QueryKey,
        results: Vec<SearchResult>,
        generation: u64,
        valid: impl FnOnce() -> bool,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if !valid() {
            return;
        }
        inner.clock += 1;
        let clock = inner.clock;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
            }
        }
        inner.map.insert(
            key,
            Entry {
                results,
                last_used: clock,
                generation,
            },
        );
    }

    /// Drops every cached query that involves `term`.
    pub fn invalidate_term(&self, term: TermId) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.retain(|key, _| !key.involves(term));
    }

    /// Drops every cached entry.
    pub fn clear(&self) {
        self.inner.lock().unwrap().map.clear();
    }

    /// Number of currently cached queries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lookups answered from the cache since construction (the
    /// shared cell's total when constructed via
    /// [`QueryCache::with_counters`]).
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of lookups that missed since construction (the shared
    /// cell's total when constructed via [`QueryCache::with_counters`]).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stb_corpus::DocId;

    fn key(terms: &[u32], k: usize) -> QueryKey {
        let terms: Vec<TermId> = terms.iter().map(|&t| TermId(t)).collect();
        QueryKey::new(&terms, k, EngineConfig::default())
    }

    fn results(n: u32) -> Vec<SearchResult> {
        (0..n)
            .map(|i| SearchResult {
                doc: DocId(i),
                score: f64::from(n),
            })
            .collect()
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = QueryCache::new(4);
        assert_eq!(cache.get(&key(&[1], 5)), None);
        cache.put(key(&[1], 5), results(2));
        assert_eq!(cache.get(&key(&[1], 5)), Some(results(2)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn key_is_order_insensitive_but_k_sensitive() {
        let cache = QueryCache::new(4);
        cache.put(key(&[2, 1], 5), results(1));
        assert!(cache.get(&key(&[1, 2], 5)).is_some());
        assert!(cache.get(&key(&[1, 2], 6)).is_none());
        // Duplicate terms are a different query than the deduplicated one.
        assert!(cache.get(&key(&[1, 2, 2], 5)).is_none());
    }

    #[test]
    fn filters_are_part_of_the_key() {
        let cache = QueryCache::new(8);
        let terms = [TermId(1), TermId(2)];
        let config = EngineConfig::default();
        let unfiltered = QueryKey::canonical(&terms, 5, config, None, None);
        let windowed = QueryKey::canonical(&terms, 5, config, Some(TimeInterval::new(0, 3)), None);
        let other_window =
            QueryKey::canonical(&terms, 5, config, Some(TimeInterval::new(4, 9)), None);
        let regioned =
            QueryKey::canonical(&terms, 5, config, None, Some(Rect::new(0.0, 0.0, 1.0, 1.0)));
        let other_region =
            QueryKey::canonical(&terms, 5, config, None, Some(Rect::new(0.0, 0.0, 2.0, 2.0)));
        let keys = [unfiltered, windowed, other_window, regioned, other_region];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "two queries differing only in filters collided");
            }
        }
        for (i, key) in keys.iter().enumerate() {
            cache.put(key.clone(), results(i as u32 + 1));
        }
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(cache.get(key), Some(results(i as u32 + 1)));
        }
        // The unfiltered constructor and the canonical one agree.
        assert_eq!(
            QueryKey::new(&terms, 5, config),
            QueryKey::canonical(&terms, 5, config, None, None)
        );
        // Per-term invalidation still drops filtered entries.
        cache.invalidate_term(TermId(2));
        assert!(cache.is_empty());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = QueryCache::new(0);
        cache.put(key(&[1], 5), results(1));
        assert_eq!(cache.get(&key(&[1], 5)), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let cache = QueryCache::new(2);
        cache.put(key(&[1], 5), results(1));
        cache.put(key(&[2], 5), results(2));
        // Touch [1] so [2] becomes the LRU entry.
        assert!(cache.get(&key(&[1], 5)).is_some());
        cache.put(key(&[3], 5), results(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(&[1], 5)).is_some());
        assert!(cache.get(&key(&[2], 5)).is_none());
        assert!(cache.get(&key(&[3], 5)).is_some());
    }

    #[test]
    fn invalidate_term_drops_only_involving_queries() {
        let cache = QueryCache::new(8);
        cache.put(key(&[1, 2], 5), results(1));
        cache.put(key(&[2, 3], 5), results(2));
        cache.put(key(&[3, 4], 5), results(3));
        cache.invalidate_term(TermId(2));
        assert!(cache.get(&key(&[1, 2], 5)).is_none());
        assert!(cache.get(&key(&[2, 3], 5)).is_none());
        assert!(cache.get(&key(&[3, 4], 5)).is_some());
    }

    #[test]
    fn get_at_rejects_entries_from_newer_generations() {
        let cache = QueryCache::new(4);
        cache.put_tagged(key(&[1], 5), results(1), 7, || true);
        // A reader still serving an older generation must not see it...
        assert_eq!(cache.get_at(&key(&[1], 5), 6), None);
        // ...while readers at or past the entry's generation do.
        assert_eq!(cache.get_at(&key(&[1], 5), 7), Some(results(1)));
        assert_eq!(cache.get_at(&key(&[1], 5), 8), Some(results(1)));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        // Untagged `put` entries are visible to every reader.
        cache.put(key(&[2], 5), results(2));
        assert_eq!(cache.get_at(&key(&[2], 5), 0), Some(results(2)));
    }

    #[test]
    fn put_if_respects_the_validity_check() {
        let cache = QueryCache::new(4);
        cache.put_if(key(&[1], 5), results(1), || false);
        assert!(cache.is_empty());
        cache.put_if(key(&[1], 5), results(1), || true);
        assert_eq!(cache.get(&key(&[1], 5)), Some(results(1)));
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = QueryCache::new(8);
        cache.put(key(&[1], 5), results(1));
        cache.clear();
        assert!(cache.is_empty());
    }
}
