//! Bursty-document search engine (Section 5 of the paper).
//!
//! Given the spatiotemporal burstiness patterns mined for each term (by
//! `STComb`, `STLocal`, or the temporal-only `TB` baseline), this crate
//! ranks documents for a multi-term query by
//!
//! ```text
//! score(q, d) = Σ_{t ∈ q} relevance(d, t) × burstiness(d, t)      (Eq. 10)
//! ```
//!
//! where `relevance` is a normalized term frequency (the paper found
//! `log(freq + 1)` to work best) and `burstiness(d, t)` aggregates the
//! scores of the patterns of `t` that *overlap* the document — i.e. contain
//! both its stream of origin and its timestamp (Eq. 11; the paper found the
//! maximum to work best).
//!
//! Queries enter through the typed spatiotemporal DSL ([`Query`] →
//! [`BurstySearchEngine::query`] → `Result<QueryResponse, QueryError>`):
//! term or text queries with optional `time_window`/`region` filters that
//! restrict scoring to the patterns intersecting both, per-document
//! explanations of the Eq. 10–11 factors, and execution statistics. The
//! historical `search`/`search_many`/`search_text` trio remains as thin
//! deprecated shims over the DSL.
//!
//! Retrieval uses a classic IR architecture: an [`InvertedIndex`] with
//! per-term postings sorted by score, queried with Fagin's Threshold
//! Algorithm ([`threshold_topk`]) for early-terminating top-k evaluation.
//! For serving repeated query traffic, [`BurstySearchEngine::finalize`]
//! prebuilds the whole collection's scored posting lists in parallel, an
//! LRU [`cache::QueryCache`] short-circuits repeated queries (keyed on the
//! full canonical query, filters included), and
//! [`BurstySearchEngine::query_many`] batches whole workloads.
//!
//! The engine owns its collection as an `Arc` snapshot, so queries can be
//! served concurrently with ingestion: the `stb-ingest` pipeline swaps in
//! newer snapshots with [`BurstySearchEngine::update_collection`] and
//! re-scores only the affected terms
//! ([`BurstySearchEngine::refresh_term`]); serving counters are exposed
//! through [`EngineMetrics`].
//!
//! For concurrent serving under live ingestion, the [`shard`] module adds a
//! lock-free tier on top: a [`ShardedEngine`] write side that shards every
//! term's derived state by hash ([`shard_of`]) and publishes generational
//! snapshots through an [`EpochCell`], and a [`ServingFront`] read side
//! whose queries never take a lock yet answer bit-identically to the
//! unsharded engine.

// `deny` rather than `forbid`: the epoch-based snapshot cell (`epoch`
// module) opts back in locally with a reviewed, documented unsafe core;
// everything else in the crate remains lint-enforced safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod burstiness;
pub mod cache;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod index;
pub mod obs;
pub mod query;
pub mod relevance;
pub mod shard;
pub mod threshold;

pub use burstiness::{BurstinessAgg, NoPatternPolicy};
pub use cache::{QueryCache, QueryKey};
pub use engine::{
    BurstySearchEngine, EngineConfig, EngineConfigBuilder, EngineMetrics, EngineState,
    SearchResult, DEFAULT_CACHE_CAPACITY,
};
pub use epoch::EpochCell;
pub use error::QueryError;
pub use index::{InvertedIndex, Posting};
pub use obs::{SearchObs, SearchObsConfig};
pub use query::{
    DocExplanation, PatternMatch, Query, QueryResponse, QueryStats, ResponseSnapshot,
    TermExplanation, UnknownWords, DEFAULT_TOP_K,
};
pub use relevance::Relevance;
pub use shard::{shard_of, ServingFront, ShardedEngine, DEFAULT_SHARDS};
pub use threshold::{threshold_topk, threshold_topk_with_stats, PostingAccess, TopkStats};
