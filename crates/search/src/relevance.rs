//! Relevance component of the document score (Eq. 10).
//!
//! `relevance(d, t)` is "any normalized version of `freq(t, d)`"; the paper
//! reports that `log(freq(t, d) + 1)` worked best on their corpora, so that
//! is the default here, with the raw frequency and a tf-idf weighting as
//! alternatives.

/// Strategy for computing `relevance(d, t)` from the term frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Relevance {
    /// `ln(freq + 1)` — the paper's best-performing choice (default).
    #[default]
    LogFreq,
    /// The raw term frequency `freq(t, d)`.
    RawFreq,
    /// `freq * ln(N / df)`: raw frequency damped by inverse document
    /// frequency (`N` documents in total, `df` containing the term).
    TfIdf,
}

impl Relevance {
    /// Computes the relevance of a document for a term.
    ///
    /// * `freq` — occurrences of the term in the document.
    /// * `doc_freq` — number of documents containing the term (used by
    ///   [`Relevance::TfIdf`] only).
    /// * `n_docs` — total number of documents (used by [`Relevance::TfIdf`]
    ///   only).
    pub fn score(&self, freq: u32, doc_freq: usize, n_docs: usize) -> f64 {
        match self {
            Relevance::LogFreq => (freq as f64 + 1.0).ln(),
            Relevance::RawFreq => freq as f64,
            Relevance::TfIdf => {
                if doc_freq == 0 || n_docs == 0 {
                    0.0
                } else {
                    freq as f64 * ((n_docs as f64 / doc_freq as f64).ln()).max(0.0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logfreq_is_monotone_and_damped() {
        let r = Relevance::LogFreq;
        assert_eq!(r.score(0, 1, 10), (1.0f64).ln());
        assert!(r.score(1, 1, 10) < r.score(10, 1, 10));
        // Damping: doubling the frequency less than doubles the relevance.
        assert!(r.score(20, 1, 10) < 2.0 * r.score(10, 1, 10));
    }

    #[test]
    fn rawfreq_is_identity() {
        assert_eq!(Relevance::RawFreq.score(7, 3, 100), 7.0);
    }

    #[test]
    fn tfidf_downweights_common_terms() {
        let r = Relevance::TfIdf;
        let rare = r.score(3, 2, 1000);
        let common = r.score(3, 900, 1000);
        assert!(rare > common);
    }

    #[test]
    fn tfidf_handles_degenerate_inputs() {
        let r = Relevance::TfIdf;
        assert_eq!(r.score(3, 0, 100), 0.0);
        assert_eq!(r.score(3, 10, 0), 0.0);
        // df == N gives ln(1) = 0: a term in every document carries no signal.
        assert_eq!(r.score(3, 100, 100), 0.0);
    }

    #[test]
    fn default_is_logfreq() {
        assert_eq!(Relevance::default(), Relevance::LogFreq);
    }
}
