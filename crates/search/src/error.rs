//! Structured errors of the typed query API.
//!
//! [`crate::Query`] construction is infallible (the builder is fluent);
//! validation happens when the query is executed, and every way a query can
//! be malformed is a distinct [`QueryError`] variant. The legacy
//! `search`/`search_text`/`search_many` shims swallow these errors into
//! empty result lists — exactly their historical behaviour — while new
//! callers get to `match` on what actually went wrong.

use std::fmt;

use stb_corpus::Timestamp;
use stb_geo::Rect;

/// Why a [`crate::Query`] could not be executed.
///
/// Marked `#[non_exhaustive]`: future query features may add new failure
/// modes without a breaking change, so downstream `match`es need a
/// wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryError {
    /// The query resolved to no terms at all — it was built from an empty
    /// term list, or every word was dropped by
    /// [`crate::UnknownWords::Drop`].
    EmptyQuery,
    /// `top_k` was 0: the query can never return anything.
    ZeroTopK,
    /// A text query contained a word missing from the collection's
    /// dictionary, under [`crate::UnknownWords::Error`].
    UnknownWord {
        /// The offending (lowercased) word.
        word: String,
    },
    /// The time window `start..=end` covers no timestamp (`start > end`).
    EmptyTimeWindow {
        /// Requested window start.
        start: Timestamp,
        /// Requested window end.
        end: Timestamp,
    },
    /// The region filter has a NaN coordinate, which can intersect nothing.
    InvalidRegion {
        /// The offending rectangle.
        region: Rect,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyQuery => write!(f, "query resolved to no terms"),
            QueryError::ZeroTopK => write!(f, "top_k is 0; no result can be returned"),
            QueryError::UnknownWord { word } => {
                write!(f, "word {word:?} is not in the collection's dictionary")
            }
            QueryError::EmptyTimeWindow { start, end } => {
                write!(f, "time window {start}..={end} covers no timestamp")
            }
            QueryError::InvalidRegion { region } => {
                write!(f, "region filter {region} has a NaN coordinate")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let errors: Vec<QueryError> = vec![
            QueryError::EmptyQuery,
            QueryError::ZeroTopK,
            QueryError::UnknownWord { word: "zzz".into() },
            QueryError::EmptyTimeWindow { start: 9, end: 2 },
            QueryError::InvalidRegion {
                region: Rect::new(0.0, 0.0, 1.0, 1.0),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(QueryError::UnknownWord { word: "abc".into() }
            .to_string()
            .contains("abc"));
    }
}
