//! The sharded, lock-free serving tier.
//!
//! [`BurstySearchEngine`] is internally synchronized for `&self` queries,
//! but live ingestion needs `&mut self` — so the previous serving design
//! put the whole engine behind one `RwLock`, and every `commit_tick`
//! stalled every in-flight query. This module splits the two roles:
//!
//! * [`ShardedEngine`] is the **write side**: it owns a private
//!   `BurstySearchEngine`, applies pattern/collection updates to it, and on
//!   [`ShardedEngine::publish`] copies the dirty terms' derived state
//!   (score-sorted posting lists, stored patterns, term→documents lists)
//!   into per-shard snapshots, sharded by term hash ([`shard_of`]).
//! * [`ServingFront`] is the **read side**: an [`EpochCell`] holding the
//!   current `ServingState` — one generation number, one collection
//!   snapshot, and the full shard set. A query `load`s the cell once and
//!   runs entirely against that state, so it never takes a lock and never
//!   observes a torn generation (state mixing pre- and post-tick postings):
//!   the only mutation readers can see is the single atomic swap.
//!
//! Per-shard LRU result caches sit in front of evaluation. A cache insert
//! is guarded by [`QueryCache::put_if`] on the published generation, and the
//! writer invalidates dirty terms in every shard cache *after* bumping the
//! generation, which together make a cached hit always equivalent to
//! re-evaluating against the current state.
//!
//! # Bit-identical serving
//!
//! Queries against the front must be byte-identical to the same queries on
//! the unsharded engine. Scatter-gather therefore happens at the *posting
//! list* level, not the result level: the front gathers each query term's
//! list from its shard and runs the very same Threshold Algorithm
//! (via [`crate::threshold::PostingAccess`]) that the engine runs — a
//! per-shard top-k merge would be wrong for multi-term sum scoring, because
//! no shard sees a document's full score. Planning, scoring, stats, and
//! explanations all run through the shared free functions in
//! [`crate::engine`], so both tiers execute the same float operations in
//! the same order.

use crate::cache::{QueryCache, QueryKey};
use crate::engine::{
    burstiness_of, cache_hit_stats, evaluated_stats, explain_results_with, plan_key, plan_query,
    query_index, scored_postings, vacuous_response, BurstySearchEngine, EngineConfig,
    EngineMetrics, EngineState, QueryPlan, SearchResult, StoredPattern,
};
use crate::epoch::EpochCell;
use crate::error::QueryError;
use crate::index::Posting;
use crate::obs::SearchObs;
use crate::query::{Query, QueryResponse, QueryStats, QueryTerms, ResponseSnapshot};
use crate::threshold::{threshold_topk_with_stats, PostingAccess};
use stb_obs::{Counter, SpanClock, SpanKind};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, OnceLock};

use stb_core::{PatternGeometry, PatternSource};
use stb_corpus::{Collection, DocId, TermId};

/// Default number of serving shards.
pub const DEFAULT_SHARDS: usize = 8;

/// The shard a term's derived state (and cache traffic) lives on.
///
/// A multiplicative hash of the term id, so consecutively interned terms
/// spread across shards instead of clustering.
pub fn shard_of(term: TermId, n_shards: usize) -> usize {
    debug_assert!(n_shards > 0);
    let h = u64::from(term.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % n_shards
}

/// One term's prebuilt posting list in a shard snapshot: the score-sorted
/// list for sorted access plus a by-document map for random access —
/// exactly the two views `InvertedIndex` maintains, copied bit-for-bit
/// from the write-side engine's finalized index.
#[derive(Debug, Clone)]
struct TermPostings {
    sorted: Vec<Posting>,
    by_doc: HashMap<DocId, f64>,
}

impl TermPostings {
    fn from_sorted(sorted: &[Posting]) -> Self {
        let by_doc = sorted.iter().map(|p| (p.doc, p.score)).collect();
        Self {
            sorted: sorted.to_vec(),
            by_doc,
        }
    }
}

/// The derived state of one shard: every term hashed to it.
#[derive(Debug, Clone, Default)]
struct ShardState {
    /// Prebuilt posting lists (present only when the engine is finalized
    /// and the term's list is non-empty).
    postings: HashMap<TermId, Arc<TermPostings>>,
    /// Registered patterns, mirroring the engine's pattern store.
    patterns: HashMap<TermId, Arc<Vec<StoredPattern>>>,
    /// Corpus-level term→documents lists.
    term_docs: HashMap<TermId, Arc<Vec<DocId>>>,
}

impl ShardState {
    /// Copies one term's derived state from the write-side engine,
    /// removing entries the engine no longer has.
    fn sync_term(&mut self, engine: &BurstySearchEngine, term: TermId) {
        match engine.prebuilt_index().map(|i| i.postings(term)) {
            Some(list) if !list.is_empty() => {
                self.postings
                    .insert(term, Arc::new(TermPostings::from_sorted(list)));
            }
            _ => {
                self.postings.remove(&term);
            }
        }
        match engine.patterns_of(term) {
            Some(ps) => {
                self.patterns.insert(term, Arc::new(ps.to_vec()));
            }
            None => {
                self.patterns.remove(&term);
            }
        }
        match engine.term_docs_of(term) {
            Some(ds) => {
                self.term_docs.insert(term, Arc::new(ds.to_vec()));
            }
            None => {
                self.term_docs.remove(&term);
            }
        }
    }
}

/// One published generation of the serving tier: a consistent set of shard
/// snapshots over one collection snapshot. Readers obtain it with a single
/// atomic load, so every query runs against exactly one generation.
#[derive(Debug)]
pub(crate) struct ServingState {
    generation: u64,
    collection: Arc<Collection>,
    config: EngineConfig,
    finalized: bool,
    shards: Vec<Arc<ShardState>>,
    /// Write-side engine counters captured at publish time (cache fields
    /// are overridden live by the front's shard caches).
    base: EngineMetrics,
}

impl ServingState {
    fn shard(&self, term: TermId) -> &ShardState {
        &self.shards[shard_of(term, self.shards.len())]
    }
}

/// Per-term posting lists gathered from shard snapshots for one query,
/// presented to the Threshold Algorithm through [`PostingAccess`] — the
/// sharded counterpart of walking the engine's prebuilt `InvertedIndex`.
struct Gathered<'a> {
    lists: Vec<(TermId, Option<&'a TermPostings>)>,
}

impl<'a> Gathered<'a> {
    fn new(state: &'a ServingState, terms: &[TermId]) -> Self {
        let lists = terms
            .iter()
            .map(|&t| (t, state.shard(t).postings.get(&t).map(Arc::as_ref)))
            .collect();
        Self { lists }
    }

    fn lookup(&self, term: TermId) -> Option<&'a TermPostings> {
        self.lists
            .iter()
            .find(|(t, _)| *t == term)
            .and_then(|(_, tp)| *tp)
    }
}

impl PostingAccess for Gathered<'_> {
    fn postings(&self, term: TermId) -> &[Posting] {
        self.lookup(term).map_or(&[], |tp| tp.sorted.as_slice())
    }

    fn score(&self, term: TermId, doc: DocId) -> Option<f64> {
        self.lookup(term)?.by_doc.get(&doc).copied()
    }
}

/// The lock-free read side of the sharded serving tier.
///
/// Obtained from [`ShardedEngine::front`] and freely shared across reader
/// threads (`Arc<ServingFront>`); every query loads the current
/// `ServingState` from an [`EpochCell`] and runs without taking a lock.
/// Results are byte-identical to the same query on the unsharded
/// [`BurstySearchEngine`] holding the same state.
pub struct ServingFront {
    cell: EpochCell<ServingState>,
    /// One LRU result cache per shard, routed by the query's minimum term.
    caches: Vec<QueryCache>,
    /// Tier-wide hit/miss cells shared by every shard cache, so the totals
    /// are maintained lock-free by the hot path itself (and renderable
    /// live by an adopting `ObsRegistry`).
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    /// Generation whose results may be inserted into the caches; bumped by
    /// the writer *after* swapping the cell (see [`QueryCache::put_if`]).
    published: AtomicU64,
    /// The configured result-cache capacity, as reported by metrics.
    declared_capacity: usize,
    /// Observability hooks, set once via [`ServingFront::attach_obs`];
    /// unset means queries skip instrumentation entirely.
    obs: OnceLock<Arc<SearchObs>>,
}

impl ServingFront {
    fn new(initial: Arc<ServingState>, n_shards: usize, cache_capacity: usize) -> Self {
        let per_shard = if cache_capacity == 0 {
            0
        } else {
            cache_capacity.div_ceil(n_shards).max(1)
        };
        let cache_hits = Arc::new(Counter::new());
        let cache_misses = Arc::new(Counter::new());
        Self {
            cell: EpochCell::new(initial),
            caches: (0..n_shards)
                .map(|_| {
                    QueryCache::with_counters(
                        per_shard,
                        Arc::clone(&cache_hits),
                        Arc::clone(&cache_misses),
                    )
                })
                .collect(),
            cache_hits,
            cache_misses,
            published: AtomicU64::new(0),
            declared_capacity: cache_capacity,
            obs: OnceLock::new(),
        }
    }

    /// Attaches observability hooks: query latencies, span traces, and the
    /// slow-query log start recording, and the result cache's live
    /// hit/miss cells are adopted into the obs registry (as
    /// `search_cache_hits` / `search_cache_misses`).
    ///
    /// Attach once at wiring time; later calls are ignored. Un-attached
    /// fronts pay one atomic load and a branch per query — the baseline
    /// arm of the `bench_obs` overhead gate.
    pub fn attach_obs(&self, obs: Arc<SearchObs>) {
        obs.adopt_cache_counters(&self.cache_hits, &self.cache_misses);
        let _ = self.obs.set(obs);
    }

    /// The attached observability hooks, if any.
    pub fn obs(&self) -> Option<&Arc<SearchObs>> {
        self.obs.get()
    }

    /// The generation of the currently published serving state.
    ///
    /// Generations are monotone: if two calls straddling a query return the
    /// same value, the query ran against exactly that generation.
    pub fn generation(&self) -> u64 {
        self.cell.load().generation
    }

    /// Number of serving shards.
    pub fn n_shards(&self) -> usize {
        self.caches.len()
    }

    /// The collection snapshot of the current generation.
    pub fn collection(&self) -> Arc<Collection> {
        Arc::clone(&self.cell.load().collection)
    }

    /// The scoring configuration of the currently published generation.
    pub fn config(&self) -> EngineConfig {
        self.cell.load().config
    }

    /// A point-in-time snapshot of the serving counters: the write-side
    /// engine counters captured at the last publish, with the cache fields
    /// read live from the per-shard caches' atomic counters.
    pub fn metrics(&self) -> EngineMetrics {
        let state = self.cell.load();
        let mut m = state.base;
        let (hits, misses, len) = self.cache_counters();
        m.cache_hits = hits;
        m.cache_misses = misses;
        m.cache_len = len;
        m.cache_capacity = self.declared_capacity;
        m
    }

    pub(crate) fn cache_counters(&self) -> (u64, u64, usize) {
        // Hit/miss cells are shared across every shard cache (see
        // `QueryCache::with_counters`), so the totals are single reads.
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        let len = self.caches.iter().map(QueryCache::len).sum();
        (hits, misses, len)
    }

    pub(crate) fn declared_capacity(&self) -> usize {
        self.declared_capacity
    }

    /// Executes a typed [`Query`] against the current generation without
    /// taking a lock. Semantics (and bits) match
    /// [`BurstySearchEngine::query`] over the same state.
    pub fn query(&self, query: &Query) -> Result<QueryResponse, QueryError> {
        let state = self.cell.load();
        self.query_on(&state, query)
    }

    /// Executes a typed [`Query`] and returns the response *bracketed to
    /// the generation it was evaluated against*.
    ///
    /// The epoch cell is loaded exactly once, so the pair is never torn:
    /// the generation is the one whose collection, postings, and patterns
    /// produced the results — the invariant the subscription tier's diff
    /// evaluation relies on. Bits match [`ServingFront::query`] over the
    /// same state.
    pub fn query_snapshot(&self, query: &Query) -> Result<ResponseSnapshot, QueryError> {
        let state = self.cell.load();
        let response = self.query_on(&state, query)?;
        Ok(ResponseSnapshot {
            generation: state.generation,
            response,
        })
    }

    /// Resolves a query into its *standing form* plus its canonical key
    /// against the current generation, without executing it.
    ///
    /// The standing form is the same query with its terms replaced by the
    /// planner's resolved, deduplicated term ids — text words are looked
    /// up in the dictionary *now* and frozen, so a standing registration
    /// keeps meaning the same terms even as new words are interned later.
    /// The key is exactly the cache key the query would evaluate under
    /// ([`QueryKey`]), which is what makes subscription identities,
    /// cache identities, and TA scans agree.
    pub fn canonicalize(&self, query: &Query) -> Result<(Query, QueryKey), QueryError> {
        let state = self.cell.load();
        let plan = plan_query(&state.collection, state.config, query)?;
        let key = plan_key(&plan);
        let mut standing = query.clone();
        standing.terms = QueryTerms::Ids(plan.terms);
        Ok((standing, key))
    }

    /// Executes a batch of typed queries against **one** consistent
    /// generation (the batch never straddles a concurrent publish), one
    /// response per query in input order.
    pub fn query_many(&self, queries: &[Query]) -> Vec<Result<QueryResponse, QueryError>> {
        let state = self.cell.load();
        queries.iter().map(|q| self.query_on(&state, q)).collect()
    }

    fn query_on(&self, state: &ServingState, query: &Query) -> Result<QueryResponse, QueryError> {
        match self.obs.get() {
            None => self.query_on_plain(state, query),
            Some(obs) => self.query_on_observed(state, query, obs),
        }
    }

    fn query_on_plain(
        &self,
        state: &ServingState,
        query: &Query,
    ) -> Result<QueryResponse, QueryError> {
        let plan = plan_query(&state.collection, state.config, query)?;
        if plan.vacuous {
            return Ok(vacuous_response(&plan));
        }
        let key = plan_key(&plan);
        let min_term = *plan
            .terms
            .iter()
            .min()
            .expect("non-vacuous plans have terms");
        let cache = &self.caches[shard_of(min_term, self.caches.len())];
        // Hits are gated on the entry's generation: entries computed from a
        // *newer* generation than the state this reader holds are rejected
        // (their results may reference documents this generation lacks);
        // older surviving entries are exact because every intervening
        // publish invalidated the queries its dirty terms touched.
        if let Some(hit) = cache.get_at(&key, state.generation) {
            return Ok(Self::respond(state, &plan, hit, cache_hit_stats(&plan)));
        }
        let (results, stats) = Self::evaluate(state, &plan);
        // Only cache results while the generation they were computed from
        // is still the published one; the check runs under the cache mutex,
        // so a stale insert either sees the bumped generation here or is
        // removed by the writer's subsequent per-term invalidation.
        let generation = state.generation;
        cache.put_tagged(key, results.clone(), generation, || {
            self.published.load(SeqCst) == generation
        });
        Ok(Self::respond(state, &plan, results, stats))
    }

    /// [`query_on_plain`](Self::query_on_plain) with span instrumentation.
    ///
    /// Identical control flow and float operations — the generation
    /// gating, tagged insert, and evaluation all call the same shared
    /// functions, so responses stay bit-identical to the unsharded engine
    /// (enforced by the serve-equivalence suite, which runs with obs
    /// attached). The only additions are `Instant` reads between stages
    /// and lock-free metric recording at the end.
    fn query_on_observed(
        &self,
        state: &ServingState,
        query: &Query,
        obs: &Arc<SearchObs>,
    ) -> Result<QueryResponse, QueryError> {
        let mut clock = SpanClock::start();
        let plan = match plan_query(&state.collection, state.config, query) {
            Ok(plan) => plan,
            Err(e) => {
                obs.record_error();
                return Err(e);
            }
        };
        clock.lap(SpanKind::Plan);
        if plan.vacuous {
            let response = vacuous_response(&plan);
            obs.record_query(clock, &plan_key(&plan), &response.stats);
            return Ok(response);
        }
        let key = plan_key(&plan);
        let min_term = *plan
            .terms
            .iter()
            .min()
            .expect("non-vacuous plans have terms");
        let cache = &self.caches[shard_of(min_term, self.caches.len())];
        if let Some(hit) = cache.get_at(&key, state.generation) {
            clock.lap(SpanKind::CacheLookup);
            let response = Self::respond(state, &plan, hit, cache_hit_stats(&plan));
            clock.lap(SpanKind::Respond);
            obs.record_query(clock, &key, &response.stats);
            return Ok(response);
        }
        clock.lap(SpanKind::CacheLookup);
        let (results, stats) = Self::evaluate_spanned(state, &plan, &mut clock);
        let generation = state.generation;
        cache.put_tagged(key.clone(), results.clone(), generation, || {
            self.published.load(SeqCst) == generation
        });
        let response = Self::respond(state, &plan, results, stats);
        clock.lap(SpanKind::Respond);
        obs.record_query(clock, &key, &response.stats);
        Ok(response)
    }

    /// [`evaluate`](Self::evaluate) with a [`SpanKind::ShardGather`] /
    /// [`SpanKind::TaScan`] split on the clock. Same calls in the same
    /// order as the untimed version.
    fn evaluate_spanned(
        state: &ServingState,
        plan: &QueryPlan,
        clock: &mut SpanClock,
    ) -> (Vec<SearchResult>, QueryStats) {
        let direct = plan.filter.is_none() && plan.config == state.config && state.finalized;
        if direct {
            let gathered = Gathered::new(state, &plan.terms);
            clock.lap(SpanKind::ShardGather);
            let (results, ta) =
                threshold_topk_with_stats(&gathered, &plan.terms, plan.k, plan.config.no_pattern);
            clock.lap(SpanKind::TaScan);
            (results, evaluated_stats(plan, ta, true))
        } else {
            let index = query_index(&plan.terms, |term| {
                let shard = state.shard(term);
                scored_postings(
                    &state.collection,
                    term,
                    shard.term_docs.get(&term).map(|d| d.as_slice()),
                    shard.patterns.get(&term).map(|p| p.as_slice()),
                    plan.config,
                    plan.filter,
                )
            });
            clock.lap(SpanKind::ShardGather);
            let (results, ta) =
                threshold_topk_with_stats(&index, &plan.terms, plan.k, plan.config.no_pattern);
            clock.lap(SpanKind::TaScan);
            (results, evaluated_stats(plan, ta, false))
        }
    }

    fn evaluate(state: &ServingState, plan: &QueryPlan) -> (Vec<SearchResult>, QueryStats) {
        let direct = plan.filter.is_none() && plan.config == state.config && state.finalized;
        if direct {
            let gathered = Gathered::new(state, &plan.terms);
            let (results, ta) =
                threshold_topk_with_stats(&gathered, &plan.terms, plan.k, plan.config.no_pattern);
            (results, evaluated_stats(plan, ta, true))
        } else {
            let index = query_index(&plan.terms, |term| {
                let shard = state.shard(term);
                scored_postings(
                    &state.collection,
                    term,
                    shard.term_docs.get(&term).map(|d| d.as_slice()),
                    shard.patterns.get(&term).map(|p| p.as_slice()),
                    plan.config,
                    plan.filter,
                )
            });
            let (results, ta) =
                threshold_topk_with_stats(&index, &plan.terms, plan.k, plan.config.no_pattern);
            (results, evaluated_stats(plan, ta, false))
        }
    }

    fn respond(
        state: &ServingState,
        plan: &QueryPlan,
        results: Vec<SearchResult>,
        stats: QueryStats,
    ) -> QueryResponse {
        let explanations = if plan.explain {
            explain_results_with(
                &state.collection,
                plan,
                &results,
                |term| {
                    state
                        .shard(term)
                        .term_docs
                        .get(&term)
                        .map_or(0, |d| d.len())
                },
                |term| state.shard(term).patterns.get(&term).map(|p| p.as_slice()),
            )
        } else {
            Vec::new()
        };
        QueryResponse {
            results,
            explanations,
            stats,
        }
    }

    /// `burstiness(d, t)` of Eq. 11 against the current generation's
    /// pattern store (the front-side counterpart of
    /// [`BurstySearchEngine::document_burstiness`]).
    pub fn document_burstiness(&self, term: TermId, doc: DocId) -> Option<f64> {
        let state = self.cell.load();
        let document = state.collection.document(doc);
        burstiness_of(
            state.shard(term).patterns.get(&term).map(|p| p.as_slice()),
            document.stream,
            document.timestamp,
            state.config.aggregation,
            crate::engine::PatternFilter::NONE,
        )
    }

    /// Publishes `state` as the new serving generation. The ordering is
    /// load-bearing:
    ///
    /// 1. Bump `published` — from here on, no reader can insert results
    ///    computed from an older generation ([`QueryCache::put_tagged`]
    ///    checks under the cache mutex).
    /// 2. Invalidate the dirty terms' cached queries. Any stale entry was
    ///    either inserted before this (removed here) or its insert attempt
    ///    observes the bumped `published` and is rejected.
    /// 3. Swap the cell. Only now can readers observe (and tag entries
    ///    with) the new generation, so by the time a reader serves
    ///    generation `g`, every invalidation for generations `<= g` has
    ///    completed — which is what makes older surviving cache entries
    ///    exact for newer readers (see [`QueryCache::get_at`]).
    fn publish_state(&self, state: Arc<ServingState>, dirty: &BTreeSet<TermId>, clear: bool) {
        self.published.store(state.generation, SeqCst);
        if clear {
            for cache in &self.caches {
                cache.clear();
            }
        } else {
            // A query involving term t may be cached on any shard (routing
            // follows the query's minimum term), so invalidate everywhere.
            for &term in dirty {
                for cache in &self.caches {
                    cache.invalidate_term(term);
                }
            }
        }
        self.cell.store(state);
    }
}

/// The write side of the sharded serving tier.
///
/// Owns a private [`BurstySearchEngine`] that mutators
/// ([`set_patterns`](Self::set_patterns),
/// [`update_collection`](Self::update_collection), …) apply to while
/// tracking which terms they dirtied; [`publish`](Self::publish) then copies
/// the dirty terms' derived state into fresh shard snapshots and swaps them
/// into the [`ServingFront`] as one new generation. Readers holding the
/// front never block on any of this.
pub struct ShardedEngine {
    engine: BurstySearchEngine,
    n_shards: usize,
    front: Arc<ServingFront>,
    /// The writer's working copy of the current shard set; `publish` clones
    /// it (cheap `Arc` clones) and copy-on-writes only the dirty shards.
    shards: Vec<Arc<ShardState>>,
    generation: u64,
    dirty: BTreeSet<TermId>,
    all_dirty: bool,
}

impl ShardedEngine {
    /// Creates a sharded engine over a collection with the given scoring
    /// configuration, shard count, and result-cache capacity (total across
    /// shards; 0 disables caching).
    ///
    /// The initial generation (0) is empty and unfinalized; register
    /// patterns, [`finalize`](Self::finalize_with_threads), and
    /// [`publish`](Self::publish) to begin serving.
    pub fn new(
        collection: impl Into<Arc<Collection>>,
        config: EngineConfig,
        n_shards: usize,
        cache_capacity: usize,
    ) -> Self {
        assert!(n_shards > 0, "at least one shard is required");
        let mut engine = BurstySearchEngine::new(collection, config);
        // The write-side engine is never queried; the front's per-shard
        // caches replace its result cache entirely.
        engine.set_cache_capacity(0);
        let shards: Vec<Arc<ShardState>> = (0..n_shards)
            .map(|_| Arc::new(ShardState::default()))
            .collect();
        let initial = ServingState {
            generation: 0,
            collection: Arc::clone(engine.collection()),
            config: *engine.config(),
            finalized: false,
            shards: shards.clone(),
            base: engine.metrics(),
        };
        let front = Arc::new(ServingFront::new(
            Arc::new(initial),
            n_shards,
            cache_capacity,
        ));
        Self {
            engine,
            n_shards,
            front,
            shards,
            generation: 0,
            dirty: BTreeSet::new(),
            all_dirty: false,
        }
    }

    /// The shared lock-free read front.
    pub fn front(&self) -> Arc<ServingFront> {
        Arc::clone(&self.front)
    }

    /// Attaches observability hooks to the read front. See
    /// [`ServingFront::attach_obs`].
    pub fn attach_obs(&self, obs: Arc<SearchObs>) {
        self.front.attach_obs(obs);
    }

    /// Read access to the write-side engine (its state trails the front by
    /// whatever has not been [`publish`](Self::publish)ed yet).
    pub fn engine(&self) -> &BurstySearchEngine {
        &self.engine
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The generation of the last publish.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Registers the mined patterns of a term on the write side (visible to
    /// readers after the next [`publish`](Self::publish)). See
    /// [`BurstySearchEngine::set_patterns`].
    pub fn set_patterns<P: PatternGeometry>(&mut self, term: TermId, patterns: &[P]) {
        self.engine.set_patterns(term, patterns);
        self.dirty.insert(term);
    }

    /// Registers the patterns of every term of a [`PatternSource`]. See
    /// [`BurstySearchEngine::set_patterns_from`].
    pub fn set_patterns_from<S: PatternSource>(&mut self, source: &S)
    where
        S::P: PatternGeometry,
    {
        source.for_each_term(&mut |term, patterns| self.set_patterns(term, patterns));
    }

    /// Re-derives one term's posting list on the write side. See
    /// [`BurstySearchEngine::refresh_term`].
    pub fn refresh_term(&mut self, term: TermId) {
        self.engine.refresh_term(term);
        self.dirty.insert(term);
    }

    /// Swaps in a newer collection snapshot, marking the new documents'
    /// terms dirty. See [`BurstySearchEngine::update_collection`].
    pub fn update_collection(&mut self, collection: Arc<Collection>, new_docs: &[DocId]) {
        self.engine
            .update_collection(Arc::clone(&collection), new_docs);
        for &doc_id in new_docs {
            for &term in collection.document(doc_id).counts.keys() {
                self.dirty.insert(term);
            }
        }
    }

    /// Prebuilds the full-collection posting index on the write side and
    /// marks every term dirty. See
    /// [`BurstySearchEngine::finalize_with_threads`].
    pub fn finalize_with_threads(&mut self, n_threads: usize) {
        self.engine.finalize_with_threads(n_threads);
        self.all_dirty = true;
    }

    /// Exports the write-side engine's derived state (for snapshots). See
    /// [`BurstySearchEngine::export_state`].
    pub fn export_state(&self) -> EngineState {
        self.engine.export_state()
    }

    /// Replaces the write-side engine's derived state with a previously
    /// exported one and marks everything dirty. See
    /// [`BurstySearchEngine::import_state`].
    pub fn import_state(&mut self, state: EngineState) {
        self.engine.import_state(state);
        self.all_dirty = true;
    }

    /// Crash-recovery restore: replaces the write side with a fresh engine
    /// over `collection` (re-deriving the corpus-level term→documents
    /// lists), imports the persisted derived state bit-for-bit, and
    /// publishes the result as a new generation on the *same* front, so
    /// existing [`ServingFront`] handles keep working.
    pub fn restore(&mut self, collection: impl Into<Arc<Collection>>, state: EngineState) {
        let config = *self.engine.config();
        let mut engine = BurstySearchEngine::new(collection, config);
        engine.set_cache_capacity(0);
        engine.import_state(state);
        self.engine = engine;
        self.all_dirty = true;
        self.publish();
    }

    /// A snapshot of the serving counters: the write-side engine's live
    /// counters with the cache fields read from the front's shard caches.
    pub fn metrics(&self) -> EngineMetrics {
        let mut m = self.engine.metrics();
        let (hits, misses, len) = self.front.cache_counters();
        m.cache_hits = hits;
        m.cache_misses = misses;
        m.cache_len = len;
        m.cache_capacity = self.front.declared_capacity();
        m
    }

    /// Publishes the write side's current state to the front as one new
    /// generation: copies every dirty term's derived state into fresh shard
    /// snapshots (copy-on-write — clean shards are shared with the previous
    /// generation), swaps the [`EpochCell`], and invalidates the dirty
    /// terms in every shard result cache.
    pub fn publish(&mut self) {
        self.generation += 1;
        if self.all_dirty {
            let mut fresh: Vec<ShardState> =
                (0..self.n_shards).map(|_| ShardState::default()).collect();
            for term in self.engine.known_terms() {
                fresh[shard_of(term, self.n_shards)].sync_term(&self.engine, term);
            }
            self.shards = fresh.into_iter().map(Arc::new).collect();
        } else {
            for &term in &self.dirty {
                let shard = &mut self.shards[shard_of(term, self.n_shards)];
                Arc::make_mut(shard).sync_term(&self.engine, term);
            }
        }
        let state = ServingState {
            generation: self.generation,
            collection: Arc::clone(self.engine.collection()),
            config: *self.engine.config(),
            finalized: self.engine.is_finalized(),
            shards: self.shards.clone(),
            base: self.engine.metrics(),
        };
        self.front
            .publish_state(Arc::new(state), &self.dirty, self.all_dirty);
        self.dirty.clear();
        self.all_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relevance::Relevance;
    use stb_core::CombinatorialPattern;
    use stb_corpus::{CollectionBuilder, StreamId};
    use stb_geo::GeoPoint;
    use stb_timeseries::TimeInterval;
    use std::collections::HashMap as StdHashMap;
    use std::sync::atomic::AtomicBool;

    fn build_fixture() -> (Collection, TermId, TermId) {
        let mut b = CollectionBuilder::new(10);
        let flood = b.dict_mut().intern("flood");
        let other = b.dict_mut().intern("cricket");
        let s0 = b.add_stream("A", GeoPoint::new(0.0, 0.0));
        let s1 = b.add_stream("B", GeoPoint::new(1.0, 1.0));
        let s2 = b.add_stream("C", GeoPoint::new(50.0, 50.0));
        for ts in 0..10 {
            for &s in &[s0, s1, s2] {
                let mut counts = StdHashMap::new();
                counts.insert(other, 3);
                if ts % 3 == 0 {
                    counts.insert(flood, 1);
                }
                b.add_document(s, ts, counts);
            }
        }
        for ts in 4..=6 {
            for &s in &[s0, s1] {
                let mut counts = StdHashMap::new();
                counts.insert(flood, 10);
                b.add_document(s, ts, counts);
            }
        }
        (b.build(), flood, other)
    }

    fn flood_pattern() -> CombinatorialPattern {
        CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1)],
            TimeInterval::new(4, 6),
            1.5,
            vec![],
        )
    }

    fn assert_bit_identical(a: &QueryResponse, b: &QueryResponse) {
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    /// Builds an unsharded reference engine and a sharded front over the
    /// same fixture state, both finalized.
    fn build_pair(n_shards: usize) -> (BurstySearchEngine, ShardedEngine, TermId, TermId) {
        let (c, flood, other) = build_fixture();
        let shared = Arc::new(c);
        let mut reference = BurstySearchEngine::new(Arc::clone(&shared), EngineConfig::default());
        reference.set_patterns(flood, &[flood_pattern()]);
        reference.finalize_with_threads(1);
        let mut sharded = ShardedEngine::new(shared, EngineConfig::default(), n_shards, 64);
        sharded.set_patterns(flood, &[flood_pattern()]);
        sharded.finalize_with_threads(1);
        sharded.publish();
        (reference, sharded, flood, other)
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in [1, 2, 8, 13] {
            for t in 0..100u32 {
                let s = shard_of(TermId(t), n);
                assert!(s < n);
                assert_eq!(s, shard_of(TermId(t), n));
            }
        }
        // Terms actually spread over shards.
        let hit: std::collections::HashSet<usize> =
            (0..100u32).map(|t| shard_of(TermId(t), 8)).collect();
        assert!(hit.len() > 4);
    }

    #[test]
    fn front_matches_engine_bit_for_bit() {
        let (reference, sharded, flood, other) = build_pair(4);
        let front = sharded.front();
        let queries = [
            Query::terms([flood]).top_k(5),
            Query::terms([flood, other]).top_k(10),
            Query::terms([other]).top_k(3),
            Query::terms([flood]).top_k(5).time_window(2..=5),
            Query::terms([flood]).top_k(5).relevance(Relevance::TfIdf),
            Query::text("flood").top_k(4),
        ];
        for q in &queries {
            let a = reference.query(q).unwrap();
            let b = front.query(q).unwrap();
            assert_bit_identical(&a, &b);
            assert_eq!(a.stats.served_from_prebuilt, b.stats.served_from_prebuilt);
            assert_eq!(a.stats.postings_scanned, b.stats.postings_scanned);
            assert_eq!(a.stats.candidates_pruned, b.stats.candidates_pruned);
        }
        // Errors match too.
        assert_eq!(
            reference
                .query(&Query::terms([flood]).top_k(0))
                .unwrap_err(),
            front.query(&Query::terms([flood]).top_k(0)).unwrap_err(),
        );
    }

    #[test]
    fn front_explanations_match_engine() {
        let (reference, sharded, flood, other) = build_pair(3);
        let front = sharded.front();
        let q = Query::terms([flood, other]).top_k(5).explain(true);
        let a = reference.query(&q).unwrap();
        let b = front.query(&q).unwrap();
        assert_eq!(a.explanations.len(), b.explanations.len());
        for (x, y) in a.explanations.iter().zip(&b.explanations) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.total.to_bits(), y.total.to_bits());
            assert_eq!(x.terms.len(), y.terms.len());
        }
    }

    #[test]
    fn publish_swaps_generations_and_serves_updates() {
        let (_, mut sharded, flood, _) = build_pair(4);
        let front = sharded.front();
        assert_eq!(front.generation(), 1);
        let before = front.query(&Query::terms([flood]).top_k(50)).unwrap();

        // Stronger pattern: same docs, higher scores, next generation.
        let strong = CombinatorialPattern::new(
            vec![StreamId(0), StreamId(1)],
            TimeInterval::new(4, 6),
            3.0,
            vec![],
        );
        sharded.set_patterns(flood, &[strong]);
        sharded.publish();
        assert_eq!(front.generation(), 2);
        let after = front.query(&Query::terms([flood]).top_k(50)).unwrap();
        assert_eq!(before.results.len(), after.results.len());
        assert!(after.results[0].score > before.results[0].score);
    }

    #[test]
    fn cache_hits_are_recorded_and_invalidated_per_term() {
        let (_, mut sharded, flood, other) = build_pair(4);
        let front = sharded.front();
        let q_flood = Query::terms([flood]).top_k(5);
        let q_other = Query::terms([other]).top_k(5);
        assert!(!front.query(&q_flood).unwrap().stats.cache_hit);
        assert!(front.query(&q_flood).unwrap().stats.cache_hit);
        // "other" has no patterns; still cacheable (empty result set).
        assert!(!front.query(&q_other).unwrap().stats.cache_hit);
        assert!(front.query(&q_other).unwrap().stats.cache_hit);

        // Dirtying flood invalidates its queries but not other's.
        sharded.refresh_term(flood);
        sharded.publish();
        assert!(!front.query(&q_flood).unwrap().stats.cache_hit);
        assert!(front.query(&q_other).unwrap().stats.cache_hit);
        let m = front.metrics();
        assert_eq!(m.cache_hits + m.cache_misses, 6);
    }

    #[test]
    fn document_burstiness_matches_engine() {
        let (reference, sharded, flood, _) = build_pair(2);
        let front = sharded.front();
        let collection = front.collection();
        for doc in collection.documents() {
            assert_eq!(
                reference.document_burstiness(flood, doc.id),
                front.document_burstiness(flood, doc.id),
            );
        }
    }

    #[test]
    fn restore_preserves_front_handles() {
        let (_, mut sharded, flood, _) = build_pair(4);
        let front = sharded.front();
        let expected = front.query(&Query::terms([flood]).top_k(10)).unwrap();
        let state = sharded.export_state();
        let collection = front.collection();
        sharded.restore(collection, state);
        let after = front.query(&Query::terms([flood]).top_k(10)).unwrap();
        assert_bit_identical(&expected, &after);
    }

    /// Satellite: concurrent recording through the lock-free read path
    /// loses no cache hit/miss counts.
    #[test]
    fn concurrent_metrics_lose_no_counts() {
        let (_, sharded, flood, other) = build_pair(4);
        let front = sharded.front();
        let n_threads = 8;
        let per_thread = 200;
        let start = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..n_threads)
            .map(|i| {
                let front = Arc::clone(&front);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    while !start.load(SeqCst) {
                        std::hint::spin_loop();
                    }
                    for j in 0..per_thread {
                        // Mix of repeated (cacheable) and distinct queries.
                        let k = 1 + ((i + j) % 7);
                        let q = if j % 2 == 0 {
                            Query::terms([flood]).top_k(k)
                        } else {
                            Query::terms([flood, other]).top_k(k)
                        };
                        front.query(&q).unwrap();
                    }
                })
            })
            .collect();
        start.store(true, SeqCst);
        for h in handles {
            h.join().unwrap();
        }
        let m = front.metrics();
        assert_eq!(
            m.cache_hits + m.cache_misses,
            (n_threads * per_thread) as u64,
            "lost cache counter updates: {m:?}"
        );
    }

    #[test]
    fn front_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServingFront>();
        assert_send_sync::<ShardedEngine>();
        assert_send_sync::<Arc<ServingFront>>();
    }
}
