//! Fagin's Threshold Algorithm (TA) for top-k aggregation.
//!
//! Given one sorted posting list per query term and random access to the
//! per-term scores, TA retrieves the `k` documents with the highest *summed*
//! score while reading as few postings as possible: it walks the lists in
//! parallel (sorted access), fully scores every newly seen document (random
//! access), and stops as soon as the `k`-th best score so far is at least
//! the *threshold* — the sum of the scores at the current read depth, which
//! upper-bounds the score of any document not yet seen.
//!
//! The index handed in must be finalized (see [`InvertedIndex::finalize`]):
//! the early-termination bound is only sound over score-sorted posting
//! lists, which unfinalized indexes do not guarantee — in debug builds the
//! index asserts this on sorted access. Both the engine's per-query indexes
//! and its prebuilt full-collection index satisfy the invariant; the
//! algorithm itself is agnostic to which one it walks, since it only ever
//! touches the query terms' lists.

use crate::burstiness::NoPatternPolicy;
use crate::index::{InvertedIndex, Posting};
use std::collections::{BinaryHeap, HashSet};

use stb_corpus::{DocId, TermId};

/// Sorted + random access to per-term posting lists, as TA requires.
///
/// The algorithm is agnostic to where the lists live: the engine hands it an
/// [`InvertedIndex`], while the sharded serving tier gathers per-term lists
/// from shard snapshots and exposes them through this trait so both paths
/// execute the *same* float operations in the same order (bit-identical
/// results).
pub trait PostingAccess {
    /// The posting list of `term`, sorted by score descending (doc id
    /// ascending on ties); empty for unknown terms.
    fn postings(&self, term: TermId) -> &[Posting];
    /// Random access: the score of `doc` under `term`, if present.
    fn score(&self, term: TermId, doc: DocId) -> Option<f64>;
}

impl PostingAccess for InvertedIndex {
    fn postings(&self, term: TermId) -> &[Posting] {
        InvertedIndex::postings(self, term)
    }

    fn score(&self, term: TermId, doc: DocId) -> Option<f64> {
        InvertedIndex::score(self, term, doc)
    }
}

/// A scored document returned by the top-k evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredDoc {
    /// The document.
    pub doc: DocId,
    /// Its total score over the query terms.
    pub score: f64,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    score: f64,
    doc: DocId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by score (reverse), ties by doc id for determinism.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(other.doc.cmp(&self.doc))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Full score of a document over the query terms via random access.
///
/// Under [`NoPatternPolicy::Exclude`] a document missing from any query
/// term's posting list scores `-inf` (it can never enter the results);
/// under [`NoPatternPolicy::Zero`] missing terms simply contribute nothing.
fn full_score<I: PostingAccess + ?Sized>(
    index: &I,
    query: &[TermId],
    doc: DocId,
    policy: NoPatternPolicy,
) -> f64 {
    let mut total = 0.0;
    for &t in query {
        match index.score(t, doc) {
            Some(s) => total += s,
            None => match policy {
                NoPatternPolicy::Exclude => return f64::NEG_INFINITY,
                NoPatternPolicy::Zero => {}
            },
        }
    }
    total
}

/// How much work one top-k evaluation did — and, thanks to early
/// termination, did not do.
///
/// The counters are exact for the sorted-access phase: `postings_scanned`
/// counts every posting visited in depth order, `candidates_pruned` counts
/// the postings left unread when the threshold bound allowed the algorithm
/// to stop. The two always sum to the total length of the query terms'
/// posting lists, so the pair doubles as a direct measure of how effective
/// the early termination was — filtered queries shrink the lists *before*
/// the scan, so the bound applies to filtered lists unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TopkStats {
    /// Postings read by sorted access.
    pub postings_scanned: usize,
    /// Postings never read because the algorithm terminated early.
    pub candidates_pruned: usize,
}

/// Runs the Threshold Algorithm over the query terms and returns the top-`k`
/// documents by total score, best first.
///
/// Documents with non-positive or `-inf` total scores are never returned.
pub fn threshold_topk<I: PostingAccess + ?Sized>(
    index: &I,
    query: &[TermId],
    k: usize,
    policy: NoPatternPolicy,
) -> Vec<ScoredDoc> {
    threshold_topk_with_stats(index, query, k, policy).0
}

/// [`threshold_topk`] plus the [`TopkStats`] of the evaluation — the
/// serving path uses this to report per-query execution statistics.
pub fn threshold_topk_with_stats<I: PostingAccess + ?Sized>(
    index: &I,
    query: &[TermId],
    k: usize,
    policy: NoPatternPolicy,
) -> (Vec<ScoredDoc>, TopkStats) {
    let mut stats = TopkStats::default();
    if k == 0 || query.is_empty() {
        return (Vec::new(), stats);
    }
    let lists: Vec<&[Posting]> = query.iter().map(|&t| index.postings(t)).collect();
    let total_postings: usize = lists.iter().map(|l| l.len()).sum();
    let max_depth = lists.iter().map(|l| l.len()).max().unwrap_or(0);

    let mut seen: HashSet<DocId> = HashSet::new();
    // Min-heap of the current best k documents.
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();

    for depth in 0..max_depth {
        // Sorted access: one posting per list at this depth. The threshold
        // upper-bounds the total score of any document not seen yet: from
        // each list it can gain at most the score at the current depth —
        // except that under the Zero policy a document *absent* from a list
        // contributes 0, so a negative current score must be clamped to 0,
        // and an exhausted list (all of whose documents have already been
        // seen) also bounds the gain of unseen documents by 0.
        let mut threshold = 0.0;
        for list in &lists {
            if let Some(p) = list.get(depth) {
                stats.postings_scanned += 1;
                threshold += match policy {
                    NoPatternPolicy::Zero => p.score.max(0.0),
                    NoPatternPolicy::Exclude => p.score,
                };
                if seen.insert(p.doc) {
                    let score = full_score(index, query, p.doc, policy);
                    if score.is_finite() && score > 0.0 {
                        heap.push(HeapEntry { score, doc: p.doc });
                        if heap.len() > k {
                            heap.pop();
                        }
                    }
                }
            }
        }
        // Early termination: the k-th best score already meets the bound on
        // every unseen document.
        if heap.len() == k {
            let kth = heap.peek().map(|e| e.score).unwrap_or(f64::NEG_INFINITY);
            if kth >= threshold {
                break;
            }
        }
    }

    stats.candidates_pruned = total_postings - stats.postings_scanned;
    let mut results: Vec<ScoredDoc> = heap
        .into_iter()
        .map(|e| ScoredDoc {
            doc: e.doc,
            score: e.score,
        })
        .collect();
    results.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc.cmp(&b.doc))
    });
    (results, stats)
}

/// Exhaustive top-k evaluation (scores every document appearing in any query
/// term's posting list). Test oracle for [`threshold_topk`].
pub fn exhaustive_topk<I: PostingAccess + ?Sized>(
    index: &I,
    query: &[TermId],
    k: usize,
    policy: NoPatternPolicy,
) -> Vec<ScoredDoc> {
    let mut docs: HashSet<DocId> = HashSet::new();
    for &t in query {
        for p in index.postings(t) {
            docs.insert(p.doc);
        }
    }
    let mut scored: Vec<ScoredDoc> = docs
        .into_iter()
        .map(|doc| ScoredDoc {
            doc,
            score: full_score(index, query, doc, policy),
        })
        .filter(|s| s.score.is_finite() && s.score > 0.0)
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc.cmp(&b.doc))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(i: u32) -> TermId {
        TermId(i)
    }

    fn doc(i: u32) -> DocId {
        DocId(i)
    }

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        // term 0 postings
        idx.insert(term(0), doc(1), 3.0);
        idx.insert(term(0), doc(2), 2.0);
        idx.insert(term(0), doc(3), 1.0);
        // term 1 postings
        idx.insert(term(1), doc(2), 4.0);
        idx.insert(term(1), doc(3), 2.5);
        idx.insert(term(1), doc(4), 0.5);
        idx.finalize();
        idx
    }

    #[test]
    fn single_term_query_returns_posting_order() {
        let idx = sample_index();
        let top = threshold_topk(&idx, &[term(0)], 2, NoPatternPolicy::Zero);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].doc, doc(1));
        assert_eq!(top[1].doc, doc(2));
    }

    #[test]
    fn multi_term_zero_policy_sums_scores() {
        let idx = sample_index();
        let top = threshold_topk(&idx, &[term(0), term(1)], 10, NoPatternPolicy::Zero);
        // doc2: 2+4=6, doc3: 1+2.5=3.5, doc1: 3, doc4: 0.5
        assert_eq!(top[0].doc, doc(2));
        assert!((top[0].score - 6.0).abs() < 1e-12);
        assert_eq!(top[1].doc, doc(3));
        assert_eq!(top[2].doc, doc(1));
        assert_eq!(top[3].doc, doc(4));
    }

    #[test]
    fn exclude_policy_requires_all_terms() {
        let idx = sample_index();
        let top = threshold_topk(&idx, &[term(0), term(1)], 10, NoPatternPolicy::Exclude);
        // Only docs 2 and 3 appear in both lists.
        let docs: Vec<DocId> = top.iter().map(|s| s.doc).collect();
        assert_eq!(docs, vec![doc(2), doc(3)]);
    }

    #[test]
    fn matches_exhaustive_oracle() {
        let idx = sample_index();
        for k in 1..=5 {
            for policy in [NoPatternPolicy::Zero, NoPatternPolicy::Exclude] {
                let ta = threshold_topk(&idx, &[term(0), term(1)], k, policy);
                let ex = exhaustive_topk(&idx, &[term(0), term(1)], k, policy);
                assert_eq!(ta.len(), ex.len(), "k={k}");
                for (a, b) in ta.iter().zip(&ex) {
                    assert_eq!(a.doc, b.doc, "k={k}");
                    assert!((a.score - b.score).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn k_larger_than_corpus() {
        let idx = sample_index();
        let top = threshold_topk(&idx, &[term(0)], 100, NoPatternPolicy::Zero);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn empty_query_or_zero_k() {
        let idx = sample_index();
        assert!(threshold_topk(&idx, &[], 5, NoPatternPolicy::Zero).is_empty());
        assert!(threshold_topk(&idx, &[term(0)], 0, NoPatternPolicy::Zero).is_empty());
    }

    #[test]
    fn unknown_term_exclude_gives_empty() {
        let idx = sample_index();
        let top = threshold_topk(&idx, &[term(0), term(9)], 5, NoPatternPolicy::Exclude);
        assert!(top.is_empty());
    }

    #[test]
    fn unknown_term_zero_policy_ignores_it() {
        let idx = sample_index();
        let top = threshold_topk(&idx, &[term(0), term(9)], 5, NoPatternPolicy::Zero);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].doc, doc(1));
    }

    #[test]
    fn stats_partition_the_posting_lists() {
        let idx = sample_index();
        for k in [1, 2, 5] {
            for policy in [NoPatternPolicy::Zero, NoPatternPolicy::Exclude] {
                let (results, stats) =
                    threshold_topk_with_stats(&idx, &[term(0), term(1)], k, policy);
                assert_eq!(
                    results,
                    threshold_topk(&idx, &[term(0), term(1)], k, policy)
                );
                // Scanned + pruned always account for every posting.
                assert_eq!(stats.postings_scanned + stats.candidates_pruned, 6);
                assert!(stats.postings_scanned >= results.len().min(k));
            }
        }
        // k=1 under Zero terminates early: doc2 (score 6) beats the depth-1
        // threshold (3 + 2.5), so depth 2 is never read.
        let (_, stats) =
            threshold_topk_with_stats(&idx, &[term(0), term(1)], 1, NoPatternPolicy::Zero);
        assert!(stats.candidates_pruned > 0);
        // Degenerate queries do no work at all.
        let (_, stats) = threshold_topk_with_stats(&idx, &[], 5, NoPatternPolicy::Zero);
        assert_eq!(stats, TopkStats::default());
    }

    #[test]
    fn negative_scores_are_not_returned() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(0), doc(0), -1.0);
        idx.insert(term(0), doc(1), 2.0);
        idx.finalize();
        let top = threshold_topk(&idx, &[term(0)], 5, NoPatternPolicy::Zero);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].doc, doc(1));
    }
}
