//! The typed spatiotemporal query DSL.
//!
//! The paper's whole point is that burstiness is *spatiotemporal*: every
//! mined pattern carries a temporal interval and a spatial region. This
//! module makes that queryable. A [`Query`] is built fluently —
//!
//! ```text
//! Query::text("earthquake damage")
//!     .time_window(12..=16)
//!     .region(Rect::new(-85.0, 9.0, -83.0, 11.0))
//!     .top_k(5)
//!     .explain(true)
//! ```
//!
//! — and executed with [`crate::BurstySearchEngine::query`], which returns
//! `Result<QueryResponse, QueryError>`: the canonical question "which
//! documents were bursty for these terms *in this window, in this region*"
//! is one call.
//!
//! # Filter semantics
//!
//! Filters select **patterns**, not documents: a document qualifies through
//! the patterns of Eq. 11 that overlap it, and a filtered query simply
//! restricts that pattern set to those whose timeframe intersects the time
//! window and whose region (an `STLocal` rectangle, or the stream MBR of an
//! `STComb` pattern — see `stb_core::PatternGeometry`) intersects the query
//! rectangle. A document whose every supporting pattern is filtered out has
//! no burstiness left and drops out exactly as Eq. 11 prescribes for
//! pattern-less documents.
//!
//! # Explanations
//!
//! With [`Query::explain`] the response carries one [`DocExplanation`] per
//! result: the per-term relevance and burstiness factors of Eq. 10–11 and
//! the concrete patterns (interval, region, score) that produced them.

use crate::engine::SearchResult;
use crate::relevance::Relevance;
use std::ops::RangeInclusive;

use stb_corpus::{DocId, TermId, Timestamp};
use stb_geo::Rect;
use stb_timeseries::TimeInterval;

/// How a text query treats words missing from the collection's dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UnknownWords {
    /// Fail the query with [`crate::QueryError::UnknownWord`] (default):
    /// the caller asked for a word the collection has never seen, which is
    /// worth surfacing rather than guessing around.
    #[default]
    Error,
    /// Drop unknown words and run the query over the known remainder. If
    /// every word is unknown the query fails with
    /// [`crate::QueryError::EmptyQuery`].
    Drop,
    /// Treat the whole query as unmatchable and return an empty (but
    /// successful) response — the behaviour of the legacy `search_text`
    /// under [`crate::NoPatternPolicy::Exclude`], where a document can
    /// never contain the unknown word.
    EmptyResponse,
}

/// The query's terms: resolved ids, or raw text resolved at execution time
/// against the engine's current dictionary snapshot.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum QueryTerms {
    /// Already-interned term ids.
    Ids(Vec<TermId>),
    /// Whitespace-separated words, lowercased and resolved per
    /// [`UnknownWords`].
    Text(String),
}

/// Default number of results a [`Query`] returns.
pub const DEFAULT_TOP_K: usize = 10;

/// A typed, immutable description of one search: terms, spatiotemporal
/// filters, result size, and scoring/diagnostic options.
///
/// # Example
///
/// ```
/// use std::collections::HashMap;
/// use stb_core::CombinatorialPattern;
/// use stb_corpus::CollectionBuilder;
/// use stb_geo::{GeoPoint, Rect};
/// use stb_search::{BurstySearchEngine, EngineConfig, Query};
/// use stb_timeseries::TimeInterval;
///
/// // "earthquake" bursts in Athens during timestamps 2..=3.
/// let mut b = CollectionBuilder::new(5);
/// let quake = b.dict_mut().intern("earthquake");
/// let athens = b.add_stream("Athens", GeoPoint::new(38.0, 23.7));
/// let lima = b.add_stream("Lima", GeoPoint::new(-12.0, -77.0));
/// for ts in 0..5 {
///     let f = if ts == 2 || ts == 3 { 8 } else { 1 };
///     b.add_document(athens, ts, HashMap::from([(quake, f)]));
///     b.add_document(lima, ts, HashMap::from([(quake, 1)]));
/// }
/// let mut engine = BurstySearchEngine::new(b.build(), EngineConfig::default());
/// let pattern =
///     CombinatorialPattern::new(vec![athens], TimeInterval::new(2, 3), 2.0, vec![]);
/// engine.set_patterns(quake, &[pattern]);
/// engine.finalize();
///
/// // The canonical spatiotemporal question, one typed call: bursty
/// // documents for "earthquake", inside this window and this map region.
/// let query = Query::text("earthquake")
///     .time_window(2..=3)
///     .region(Rect::new(20.0, 35.0, 30.0, 40.0)) // around Athens
///     .top_k(2)
///     .explain(true);
/// let response = engine.query(&query).unwrap();
/// assert_eq!(response.results.len(), 2);
///
/// // Each result is explained: which pattern matched, where and when.
/// let explanation = &response.explanations[0];
/// assert_eq!(explanation.total, response.results[0].score);
/// let matched = &explanation.terms[0].patterns[0];
/// assert_eq!(matched.interval, TimeInterval::new(2, 3));
///
/// // A region elsewhere on the map matches nothing.
/// let elsewhere = Query::text("earthquake")
///     .time_window(2..=3)
///     .region(Rect::new(-80.0, -15.0, -75.0, -10.0)); // around Lima
/// assert!(engine.query(&elsewhere).unwrap().results.is_empty());
///
/// // Malformed queries fail with a structured error, not a panic.
/// assert!(engine.query(&Query::text("earthquake").top_k(0)).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub(crate) terms: QueryTerms,
    pub(crate) time_window: Option<RangeInclusive<Timestamp>>,
    pub(crate) region: Option<Rect>,
    pub(crate) top_k: usize,
    pub(crate) relevance: Option<Relevance>,
    pub(crate) unknown_words: UnknownWords,
    pub(crate) explain: bool,
}

impl Query {
    fn with_terms(terms: QueryTerms) -> Self {
        Self {
            terms,
            time_window: None,
            region: None,
            top_k: DEFAULT_TOP_K,
            relevance: None,
            unknown_words: UnknownWords::default(),
            explain: false,
        }
    }

    /// A query over already-interned term ids. Repeated terms are
    /// harmless: planning deduplicates them canonically (Eq. 10 sums one
    /// factor per *distinct* term), so `[t, t]` plans, caches, and scores
    /// exactly like `[t]` — through `query()`, the legacy `search` shims,
    /// and standing subscriptions alike.
    pub fn terms<I: IntoIterator<Item = TermId>>(terms: I) -> Self {
        Self::with_terms(QueryTerms::Ids(terms.into_iter().collect()))
    }

    /// A query over whitespace-separated words, lowercased and resolved
    /// against the engine's dictionary at execution time (see
    /// [`Query::unknown_words`]).
    pub fn text(text: impl Into<String>) -> Self {
        Self::with_terms(QueryTerms::Text(text.into()))
    }

    /// Restricts scoring to patterns whose timeframe intersects the closed
    /// window `start..=end`. A window covering no timestamp fails execution
    /// with [`crate::QueryError::EmptyTimeWindow`].
    pub fn time_window(mut self, window: RangeInclusive<Timestamp>) -> Self {
        self.time_window = Some(window);
        self
    }

    /// Restricts scoring to patterns whose spatial footprint intersects
    /// `region` (closed rectangle on the collection's planar map). Patterns
    /// that cannot be located spatially never pass a region filter.
    pub fn region(mut self, region: Rect) -> Self {
        self.region = Some(region);
        self
    }

    /// Number of results to return (default [`DEFAULT_TOP_K`]). Zero fails
    /// execution with [`crate::QueryError::ZeroTopK`].
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Overrides the engine's relevance strategy for this query only.
    /// Overridden queries are scored per query (never from the prebuilt
    /// index, whose lists embed the engine's own relevance) but are cached
    /// under the effective configuration like any other query.
    pub fn relevance(mut self, relevance: Relevance) -> Self {
        self.relevance = Some(relevance);
        self
    }

    /// How unknown words in a [`Query::text`] query are handled (default:
    /// [`UnknownWords::Error`]). Ignored for [`Query::terms`] queries —
    /// unseen `TermId`s simply have empty posting lists.
    pub fn unknown_words(mut self, policy: UnknownWords) -> Self {
        self.unknown_words = policy;
        self
    }

    /// Requests per-document explanations in the response (default off).
    /// Explanation does not change the results and is recomputed even on a
    /// cache hit.
    pub fn explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// Whether the query carries a time or region filter.
    pub fn is_filtered(&self) -> bool {
        self.time_window.is_some() || self.region.is_some()
    }
}

/// One pattern that contributed to a document's burstiness: where it lives,
/// when, and how strong it is.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternMatch {
    /// The pattern's temporal interval.
    pub interval: TimeInterval,
    /// The pattern's spatial footprint (`None` when the pattern cannot be
    /// located spatially).
    pub region: Option<Rect>,
    /// The pattern's burstiness score.
    pub score: f64,
}

/// One query term's contribution to a document's score (one factor pair of
/// Eq. 10).
#[derive(Debug, Clone, PartialEq)]
pub struct TermExplanation {
    /// The query term.
    pub term: TermId,
    /// `relevance(d, t)` under the query's effective configuration.
    pub relevance: f64,
    /// `burstiness(d, t)` (Eq. 11) aggregated over the matching patterns,
    /// or `None` when no (filter-surviving) pattern overlaps the document.
    pub burstiness: Option<f64>,
    /// `relevance × burstiness`, or `0.0` when no pattern matched (the
    /// term contributes nothing under [`crate::NoPatternPolicy::Zero`];
    /// under [`crate::NoPatternPolicy::Exclude`] such a document never
    /// appears in the results at all).
    pub contribution: f64,
    /// The patterns of the term that overlap the document *and* pass the
    /// query's filters — the set Eq. 11 aggregates over.
    pub patterns: Vec<PatternMatch>,
}

/// Why one result document scored what it scored.
#[derive(Debug, Clone, PartialEq)]
pub struct DocExplanation {
    /// The explained document.
    pub doc: DocId,
    /// Sum of the per-term contributions — equals the result's score.
    pub total: f64,
    /// One entry per distinct query term, in first-occurrence order.
    pub terms: Vec<TermExplanation>,
}

/// Execution statistics of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// The result list came straight from the query cache (no posting was
    /// touched).
    pub cache_hit: bool,
    /// The query walked the prebuilt full-collection index; `false` means
    /// its posting lists were scored per query (cold engine, active
    /// filters, or a per-query relevance override).
    pub served_from_prebuilt: bool,
    /// Postings read by sorted access during top-k evaluation.
    pub postings_scanned: usize,
    /// Postings the Threshold Algorithm's early termination never had to
    /// read.
    pub candidates_pruned: usize,
    /// Distinct resolved query terms (duplicates collapse in planning).
    pub terms: usize,
    /// Whether a time or region filter restricted the pattern set.
    pub filtered: bool,
}

/// The outcome of a successfully executed [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The top-k documents, best first.
    pub results: Vec<SearchResult>,
    /// One explanation per result (same order), when the query asked for
    /// them with [`Query::explain`]; empty otherwise.
    pub explanations: Vec<DocExplanation>,
    /// How the query was executed.
    pub stats: QueryStats,
}

/// A [`QueryResponse`] bracketed to the serving generation it was computed
/// from — the diffable unit of the subscription tier.
///
/// Produced by [`crate::ServingFront::query_snapshot`], which loads the
/// epoch cell exactly once: the results and the generation always belong
/// together, so consumers comparing two snapshots (e.g. the standing-query
/// diff evaluator) can never observe a torn pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseSnapshot {
    /// The serving generation the response was evaluated against.
    pub generation: u64,
    /// The response itself.
    pub response: QueryResponse,
}

impl ResponseSnapshot {
    /// The ranked results, best first.
    pub fn results(&self) -> &[SearchResult] {
        &self.response.results
    }

    /// Whether two snapshots rank the same documents with bit-identical
    /// scores (generation and stats are *not* compared — two generations
    /// may legitimately serve identical results).
    pub fn same_results(&self, other: &Self) -> bool {
        self.results().len() == other.results().len()
            && self
                .results()
                .iter()
                .zip(other.results())
                .all(|(a, b)| a.doc == b.doc && a.score.to_bits() == b.score.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_options() {
        let q = Query::terms([TermId(3), TermId(1)])
            .time_window(2..=9)
            .region(Rect::new(0.0, 0.0, 1.0, 1.0))
            .top_k(7)
            .relevance(Relevance::RawFreq)
            .unknown_words(UnknownWords::Drop)
            .explain(true);
        assert_eq!(q.top_k, 7);
        assert!(q.is_filtered());
        assert_eq!(q.relevance, Some(Relevance::RawFreq));
        assert_eq!(q.unknown_words, UnknownWords::Drop);
        assert!(q.explain);
        assert_eq!(q.terms, QueryTerms::Ids(vec![TermId(3), TermId(1)]));
    }

    #[test]
    fn defaults_are_unfiltered_top_10() {
        let q = Query::text("flood warning");
        assert_eq!(q.top_k, DEFAULT_TOP_K);
        assert!(!q.is_filtered());
        assert!(!q.explain);
        assert_eq!(q.unknown_words, UnknownWords::Error);
        assert_eq!(q.relevance, None);
    }
}
