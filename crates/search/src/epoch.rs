//! Epoch-based lock-free snapshot cell.
//!
//! [`EpochCell`] publishes an `Arc<T>` that readers can [`load`](EpochCell::load)
//! without ever taking a lock and writers can [`store`](EpochCell::store) to
//! swap in a new snapshot atomically. It is the publication primitive behind
//! the sharded serving tier: `commit_tick` builds the next generation of the
//! serving state off to the side and swaps it in with a single `store`, so a
//! reader always observes one internally-consistent generation — never a mix
//! of pre- and post-tick state.
//!
//! # Design
//!
//! The cell keeps the current snapshot as a raw pointer obtained from
//! [`Arc::into_raw`]. A reader cannot simply `load` the pointer and bump its
//! reference count, because the writer may swap and drop the snapshot between
//! those two steps. Instead the cell uses a small quiescent-state scheme:
//!
//! 1. A fixed array of *pin slots* (one `AtomicU64` each) records which
//!    epochs have active readers. `u64::MAX` means "unpinned".
//! 2. A reader claims a free slot with a CAS, publishes the current epoch in
//!    it, and re-checks the epoch until the published value is current (the
//!    re-check closes the race with a concurrent writer that scanned the slot
//!    before the reader's store became visible). Only then does it load the
//!    pointer and increment the `Arc`'s strong count.
//! 3. A writer swaps the pointer, bumps the epoch, and moves the old pointer
//!    to a graveyard tagged with the *retire epoch*. Retired pointers are
//!    dropped once every pinned slot has advanced past their retire epoch.
//!
//! All atomics use `SeqCst`, which gives the key invariant a simple
//! total-order argument: if the writer's reclamation scan observes a slot as
//! unpinned, then either the reader has finished (and holds its own strong
//! reference), or the reader's epoch re-check is ordered after the writer's
//! epoch bump and will observe the new epoch — so the reader republishes and
//! loads the *new* pointer, never the retired one.
//!
//! The slot array bounds concurrency, not correctness: when all
//! [`PIN_SLOTS`] slots are momentarily taken, additional readers spin until
//! one frees up (loads are a handful of instructions, so slots turn over
//! quickly). Memory is bounded by the graveyard: snapshots retired while a
//! long-running reader stays pinned accumulate until that reader unpins.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Number of concurrent-reader pin slots per cell.
///
/// Loads only hold a slot for a few instructions, so this bounds momentary
/// concurrency, not the number of threads that may use the cell.
pub const PIN_SLOTS: usize = 128;

const UNPINNED: u64 = u64::MAX;

struct Retired<T> {
    ptr: *const T,
    epoch: u64,
}

// SAFETY: `Retired` is an owned `Arc<T>` in disguise (the pointer came from
// `Arc::into_raw`); it is as sendable as the `Arc` it wraps.
unsafe impl<T: Send + Sync> Send for Retired<T> {}

/// A lock-free publication cell holding an `Arc<T>` snapshot.
///
/// Readers call [`load`](Self::load) to obtain a strong reference to the
/// current snapshot without blocking; a single writer (or externally
/// serialized writers) calls [`store`](Self::store) to publish a new
/// snapshot. See the module docs for the reclamation scheme.
pub struct EpochCell<T> {
    current: AtomicPtr<T>,
    epoch: AtomicU64,
    slots: Box<[AtomicU64]>,
    graveyard: Mutex<Vec<Retired<T>>>,
}

// SAFETY: the raw pointers are only ever `Arc<T>` handles; the cell hands out
// `Arc<T>` clones and drops retired snapshots, both of which require
// `T: Send + Sync` exactly as `Arc` sharing does.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// Creates a cell publishing `initial` as generation zero.
    pub fn new(initial: Arc<T>) -> Self {
        let ptr = Arc::into_raw(initial).cast_mut();
        let slots: Vec<AtomicU64> = (0..PIN_SLOTS).map(|_| AtomicU64::new(UNPINNED)).collect();
        Self {
            current: AtomicPtr::new(ptr),
            epoch: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// Returns the current epoch (bumped once per [`store`](Self::store)).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Number of retired snapshots not yet reclaimed (for tests/metrics).
    pub fn reclaimable(&self) -> usize {
        self.graveyard.lock().unwrap().len()
    }

    /// Claims a pin slot and publishes the current epoch in it.
    ///
    /// On return the slot holds an epoch `e` such that no snapshot retired at
    /// epoch `<= e` can be reclaimed while the slot stays pinned, and the
    /// cell's current pointer is guaranteed to be at least as new as `e`.
    fn pin(&self) -> usize {
        // Spread threads across slots so two readers rarely contend on the
        // same CAS; any stable per-thread value works as a starting index.
        let start = {
            let marker: u8 = 0;
            (std::ptr::addr_of!(marker) as usize / 64) % PIN_SLOTS
        };
        let mut i = start;
        loop {
            let slot = &self.slots[i];
            let e = self.epoch.load(SeqCst);
            if slot.compare_exchange(UNPINNED, e, SeqCst, SeqCst).is_ok() {
                // Republish until the pinned epoch is current: a writer that
                // scanned this slot before our store must have bumped the
                // epoch first (SeqCst total order), so the re-check sees it.
                let mut pinned = e;
                loop {
                    let now = self.epoch.load(SeqCst);
                    if now == pinned {
                        return i;
                    }
                    slot.store(now, SeqCst);
                    pinned = now;
                }
            }
            i = (i + 1) % PIN_SLOTS;
            std::hint::spin_loop();
        }
    }

    /// Returns a strong reference to the current snapshot without blocking.
    pub fn load(&self) -> Arc<T> {
        let slot = self.pin();
        let ptr = self.current.load(SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and cannot have been
        // reclaimed: reclamation requires every pinned epoch to exceed the
        // retire epoch, and our slot pins an epoch current at (or after) the
        // time `ptr` was still published.
        let snapshot = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        self.slots[slot].store(UNPINNED, SeqCst);
        snapshot
    }

    /// Publishes `next` as the new snapshot and reclaims retired snapshots
    /// that no reader can still observe.
    ///
    /// Callers are expected to serialize writers externally (the ingest
    /// pipeline has a single committing thread); concurrent `store`s are
    /// memory-safe but may reclaim less eagerly.
    pub fn store(&self, next: Arc<T>) {
        let new_ptr = Arc::into_raw(next).cast_mut();
        let old_ptr = self.current.swap(new_ptr, SeqCst);
        let retire_epoch = self.epoch.fetch_add(1, SeqCst);
        let mut graveyard = self.graveyard.lock().unwrap();
        graveyard.push(Retired {
            ptr: old_ptr,
            epoch: retire_epoch,
        });
        // A slot pinned at epoch `e` may still dereference any pointer that
        // was current at `e`, i.e. any pointer with retire epoch >= e.
        let min_pinned = self
            .slots
            .iter()
            .map(|s| s.load(SeqCst))
            .filter(|&e| e != UNPINNED)
            .min()
            .unwrap_or(u64::MAX);
        graveyard.retain(|r| {
            if r.epoch < min_pinned {
                // SAFETY: no pinned reader can still reach this pointer, and
                // it was produced by `Arc::into_raw` in `new`/`store`.
                unsafe { drop(Arc::from_raw(r.ptr)) };
                false
            } else {
                true
            }
        });
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` means no readers or writers remain; every
        // pointer here was produced by `Arc::into_raw`.
        unsafe {
            drop(Arc::from_raw(self.current.load(SeqCst)));
            for r in self.graveyard.get_mut().unwrap().drain(..) {
                drop(Arc::from_raw(r.ptr));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_returns_stored_value() {
        let cell = EpochCell::new(Arc::new(41));
        assert_eq!(*cell.load(), 41);
        cell.store(Arc::new(42));
        assert_eq!(*cell.load(), 42);
        assert_eq!(cell.epoch(), 1);
    }

    #[test]
    fn stores_reclaim_when_no_readers_pinned() {
        let cell = EpochCell::new(Arc::new(0));
        for i in 1..100 {
            cell.store(Arc::new(i));
        }
        // Each store retires the previous snapshot and, with no pinned
        // readers, frees everything except at most the entry just pushed.
        assert!(
            cell.reclaimable() <= 1,
            "graveyard grew: {}",
            cell.reclaimable()
        );
    }

    #[test]
    fn held_arc_outlives_swap() {
        let cell = EpochCell::new(Arc::new(String::from("old")));
        let held = cell.load();
        cell.store(Arc::new(String::from("new")));
        cell.store(Arc::new(String::from("newer")));
        assert_eq!(*held, "old");
        assert_eq!(*cell.load(), "newer");
    }

    /// Tracks drops so the stress test can prove every snapshot is freed
    /// exactly once.
    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn concurrent_load_store_stress_frees_everything() {
        let drops = Arc::new(AtomicUsize::new(0));
        let n_stores = 2000usize;
        {
            let cell = Arc::new(EpochCell::new(Arc::new(DropCounter(drops.clone()))));
            let stop = Arc::new(AtomicU64::new(0));
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let cell = cell.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || {
                        let mut loads = 0u64;
                        while stop.load(SeqCst) == 0 {
                            let snap = cell.load();
                            // Touch the payload to catch use-after-free under
                            // sanitizers / debug allocators.
                            let _ = &snap.0;
                            loads += 1;
                        }
                        loads
                    })
                })
                .collect();
            for _ in 0..n_stores {
                cell.store(Arc::new(DropCounter(drops.clone())));
            }
            stop.store(1, SeqCst);
            for r in readers {
                assert!(r.join().unwrap() > 0);
            }
        }
        // Cell dropped: initial + every stored snapshot must be freed,
        // exactly once each (the counter would overshoot on double-free).
        assert_eq!(drops.load(SeqCst), n_stores + 1);
    }

    #[test]
    fn many_threads_share_slots() {
        let cell = Arc::new(EpochCell::new(Arc::new(7u64)));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        assert!(*cell.load() >= 7);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            cell.store(Arc::new(8u64));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
