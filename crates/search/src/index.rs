//! Inverted index with sorted and random access.
//!
//! Section 5 of the paper: "An inverted index is first built, mapping each
//! term to the documents that include it, ranked by their respective
//! scores. The popular Threshold Algorithm for top-k evaluation can then be
//! applied." This module is exactly that index: per-term posting lists
//! sorted by score (for sorted access) plus a per-term hash map (for the
//! random access the Threshold Algorithm needs).

use std::collections::HashMap;

use stb_corpus::{DocId, TermId};

/// One entry of a posting list: a document and its score for the term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// The document's per-term score (relevance × burstiness).
    pub score: f64,
}

/// A per-term inverted index over per-document scores.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<TermId, Vec<Posting>>,
    random_access: HashMap<TermId, HashMap<DocId, f64>>,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or overwrites) the score of `doc` for `term`.
    ///
    /// Posting lists are re-sorted lazily by [`InvertedIndex::finalize`];
    /// always call it after the last insertion.
    pub fn insert(&mut self, term: TermId, doc: DocId, score: f64) {
        self.postings
            .entry(term)
            .or_default()
            .push(Posting { doc, score });
        self.random_access
            .entry(term)
            .or_default()
            .insert(doc, score);
    }

    /// Sorts every posting list by descending score (ties broken by doc id
    /// for determinism). Must be called after the last insertion and before
    /// querying.
    pub fn finalize(&mut self) {
        for list in self.postings.values_mut() {
            list.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.doc.cmp(&b.doc))
            });
            // If the same document was inserted twice the random-access map
            // keeps the last value; deduplicate the sorted list accordingly.
            list.dedup_by_key(|p| p.doc);
        }
    }

    /// The posting list of a term, sorted by descending score. Empty slice
    /// for unknown terms.
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings.get(&term).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Random access: the score of `doc` for `term`, if the document appears
    /// in the term's posting list.
    pub fn score(&self, term: TermId, doc: DocId) -> Option<f64> {
        self.random_access
            .get(&term)
            .and_then(|m| m.get(&doc))
            .copied()
    }

    /// Number of terms with at least one posting.
    pub fn n_terms(&self) -> usize {
        self.postings.len()
    }

    /// Number of postings of a term.
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.postings.get(&term).map(Vec::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(i: u32) -> TermId {
        TermId(i)
    }

    fn doc(i: u32) -> DocId {
        DocId(i)
    }

    #[test]
    fn empty_index() {
        let idx = InvertedIndex::new();
        assert_eq!(idx.n_terms(), 0);
        assert!(idx.postings(term(0)).is_empty());
        assert_eq!(idx.score(term(0), doc(0)), None);
        assert_eq!(idx.doc_freq(term(0)), 0);
    }

    #[test]
    fn postings_sorted_by_score_desc() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(1), doc(10), 0.5);
        idx.insert(term(1), doc(11), 2.0);
        idx.insert(term(1), doc(12), 1.0);
        idx.finalize();
        let scores: Vec<f64> = idx.postings(term(1)).iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![2.0, 1.0, 0.5]);
    }

    #[test]
    fn ties_broken_by_doc_id() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(1), doc(7), 1.0);
        idx.insert(term(1), doc(3), 1.0);
        idx.finalize();
        let docs: Vec<DocId> = idx.postings(term(1)).iter().map(|p| p.doc).collect();
        assert_eq!(docs, vec![doc(3), doc(7)]);
    }

    #[test]
    fn random_access_matches_postings() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(2), doc(0), 0.25);
        idx.insert(term(2), doc(1), 0.75);
        idx.finalize();
        assert_eq!(idx.score(term(2), doc(0)), Some(0.25));
        assert_eq!(idx.score(term(2), doc(1)), Some(0.75));
        assert_eq!(idx.score(term(2), doc(2)), None);
        assert_eq!(idx.doc_freq(term(2)), 2);
    }

    #[test]
    fn reinsert_overwrites() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(0), doc(0), 1.0);
        idx.insert(term(0), doc(0), 3.0);
        idx.finalize();
        assert_eq!(idx.score(term(0), doc(0)), Some(3.0));
        assert_eq!(idx.doc_freq(term(0)), 1);
    }

    #[test]
    fn multiple_terms_are_independent() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(0), doc(0), 1.0);
        idx.insert(term(1), doc(1), 2.0);
        idx.finalize();
        assert_eq!(idx.n_terms(), 2);
        assert_eq!(idx.postings(term(0)).len(), 1);
        assert_eq!(idx.postings(term(1)).len(), 1);
    }
}
