//! Inverted index with sorted and random access.
//!
//! Section 5 of the paper: "An inverted index is first built, mapping each
//! term to the documents that include it, ranked by their respective
//! scores. The popular Threshold Algorithm for top-k evaluation can then be
//! applied." This module is exactly that index: per-term posting lists
//! sorted by score (for sorted access) plus a per-term hash map (for the
//! random access the Threshold Algorithm needs).
//!
//! # Lifecycle
//!
//! The index distinguishes a *loading* state from a *finalized* state.
//! [`InvertedIndex::insert`] appends postings without maintaining sort
//! order; [`InvertedIndex::finalize`] sorts and deduplicates every posting
//! list. Sorted access ([`InvertedIndex::postings`]) before finalization is
//! a logic error — the Threshold Algorithm's early-termination bound is
//! only valid over sorted lists — and is caught by a `debug_assert!`.
//! `finalize` is idempotent: calling it twice (or on an empty index) is
//! free, and a fresh index is vacuously finalized.
//!
//! Already-scored whole lists can be bulk-loaded with
//! [`InvertedIndex::set_postings`], which keeps the per-term invariants
//! without touching the rest of the index — this is what the search
//! engine's incremental per-term rebuild uses.
//!
//! ```
//! use stb_search::InvertedIndex;
//! use stb_corpus::{DocId, TermId};
//!
//! let mut idx = InvertedIndex::new();
//! idx.insert(TermId(0), DocId(7), 1.5);
//! idx.insert(TermId(0), DocId(3), 4.0);
//! idx.finalize();
//! // Sorted access: best document first.
//! assert_eq!(idx.postings(TermId(0))[0].doc, DocId(3));
//! // Random access: score lookup by (term, doc).
//! assert_eq!(idx.score(TermId(0), DocId(7)), Some(1.5));
//! ```

use std::collections::HashMap;

use stb_corpus::{DocId, TermId};

/// One entry of a posting list: a document and its score for the term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// The document's per-term score (relevance × burstiness).
    pub score: f64,
}

/// A per-term inverted index over per-document scores.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: HashMap<TermId, Vec<Posting>>,
    random_access: HashMap<TermId, HashMap<DocId, f64>>,
    /// Whether every posting list is currently sorted and deduplicated. A
    /// fresh (empty) index is vacuously finalized; `insert` clears the flag.
    finalized: bool,
}

impl Default for InvertedIndex {
    fn default() -> Self {
        Self {
            postings: HashMap::new(),
            random_access: HashMap::new(),
            finalized: true,
        }
    }
}

/// Sorts a posting list by descending score (ties broken by doc id for
/// determinism) and deduplicates by document, keeping `keep` as the score of
/// a duplicated document.
fn sort_posting_list(list: &mut Vec<Posting>, keep: &HashMap<DocId, f64>) {
    for p in list.iter_mut() {
        // If the same document was inserted twice the random-access map
        // keeps the last value; make every copy agree before deduplicating.
        if let Some(&s) = keep.get(&p.doc) {
            p.score = s;
        }
    }
    list.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc.cmp(&b.doc))
    });
    list.dedup_by_key(|p| p.doc);
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or overwrites) the score of `doc` for `term`.
    ///
    /// Posting lists are re-sorted lazily by [`InvertedIndex::finalize`];
    /// always call it after the last insertion.
    pub fn insert(&mut self, term: TermId, doc: DocId, score: f64) {
        self.finalized = false;
        self.postings
            .entry(term)
            .or_default()
            .push(Posting { doc, score });
        self.random_access
            .entry(term)
            .or_default()
            .insert(doc, score);
    }

    /// Replaces the whole posting list of `term` in one step, keeping the
    /// sorted/deduplicated invariant for that list. An empty `list` removes
    /// the term entirely.
    ///
    /// Unlike [`InvertedIndex::insert`] this does *not* un-finalize the
    /// index: it is the building block of the engine's incremental per-term
    /// rebuild, where the rest of the index stays valid.
    pub fn set_postings(&mut self, term: TermId, mut list: Vec<Posting>) {
        if list.is_empty() {
            self.postings.remove(&term);
            self.random_access.remove(&term);
            return;
        }
        let map: HashMap<DocId, f64> = list.iter().map(|p| (p.doc, p.score)).collect();
        sort_posting_list(&mut list, &map);
        self.postings.insert(term, list);
        self.random_access.insert(term, map);
    }

    /// Sorts every posting list by descending score (ties broken by doc id
    /// for determinism) and deduplicates repeated documents (last inserted
    /// score wins). Must be called after the last insertion and before
    /// sorted access.
    ///
    /// Idempotent: on an already-finalized index this is a no-op.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        for (term, list) in &mut self.postings {
            sort_posting_list(list, &self.random_access[term]);
        }
        self.finalized = true;
    }

    /// Whether the index is finalized (sorted access is allowed).
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// The posting list of a term, sorted by descending score. Empty slice
    /// for unknown terms.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if called before [`InvertedIndex::finalize`]:
    /// sorted access over unsorted lists would silently break the Threshold
    /// Algorithm's early-termination bound.
    pub fn postings(&self, term: TermId) -> &[Posting] {
        debug_assert!(
            self.finalized,
            "sorted access before InvertedIndex::finalize()"
        );
        self.postings.get(&term).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Random access: the score of `doc` for `term`, if the document appears
    /// in the term's posting list. Allowed in any state.
    pub fn score(&self, term: TermId, doc: DocId) -> Option<f64> {
        self.random_access
            .get(&term)
            .and_then(|m| m.get(&doc))
            .copied()
    }

    /// Number of terms with at least one posting.
    pub fn n_terms(&self) -> usize {
        self.postings.len()
    }

    /// Ids of every term with at least one posting, sorted (a deterministic
    /// iteration order for state export).
    pub fn terms(&self) -> Vec<TermId> {
        let mut terms: Vec<TermId> = self.postings.keys().copied().collect();
        terms.sort();
        terms
    }

    /// Total number of postings over all terms.
    pub fn n_postings(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }

    /// Number of postings of a term.
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.postings.get(&term).map(Vec::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(i: u32) -> TermId {
        TermId(i)
    }

    fn doc(i: u32) -> DocId {
        DocId(i)
    }

    #[test]
    fn empty_index() {
        let idx = InvertedIndex::new();
        assert!(idx.is_finalized());
        assert_eq!(idx.n_terms(), 0);
        assert!(idx.postings(term(0)).is_empty());
        assert_eq!(idx.score(term(0), doc(0)), None);
        assert_eq!(idx.doc_freq(term(0)), 0);
    }

    #[test]
    fn postings_sorted_by_score_desc() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(1), doc(10), 0.5);
        idx.insert(term(1), doc(11), 2.0);
        idx.insert(term(1), doc(12), 1.0);
        idx.finalize();
        let scores: Vec<f64> = idx.postings(term(1)).iter().map(|p| p.score).collect();
        assert_eq!(scores, vec![2.0, 1.0, 0.5]);
    }

    #[test]
    fn ties_broken_by_doc_id() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(1), doc(7), 1.0);
        idx.insert(term(1), doc(3), 1.0);
        idx.finalize();
        let docs: Vec<DocId> = idx.postings(term(1)).iter().map(|p| p.doc).collect();
        assert_eq!(docs, vec![doc(3), doc(7)]);
    }

    #[test]
    fn random_access_matches_postings() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(2), doc(0), 0.25);
        idx.insert(term(2), doc(1), 0.75);
        idx.finalize();
        assert_eq!(idx.score(term(2), doc(0)), Some(0.25));
        assert_eq!(idx.score(term(2), doc(1)), Some(0.75));
        assert_eq!(idx.score(term(2), doc(2)), None);
        assert_eq!(idx.doc_freq(term(2)), 2);
    }

    #[test]
    fn reinsert_overwrites() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(0), doc(0), 1.0);
        idx.insert(term(0), doc(0), 3.0);
        idx.finalize();
        assert_eq!(idx.score(term(0), doc(0)), Some(3.0));
        assert_eq!(idx.doc_freq(term(0)), 1);
        // The surviving posting carries the surviving score.
        assert_eq!(idx.postings(term(0))[0].score, 3.0);
    }

    #[test]
    fn multiple_terms_are_independent() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(0), doc(0), 1.0);
        idx.insert(term(1), doc(1), 2.0);
        idx.finalize();
        assert_eq!(idx.n_terms(), 2);
        assert_eq!(idx.postings(term(0)).len(), 1);
        assert_eq!(idx.postings(term(1)).len(), 1);
        assert_eq!(idx.n_postings(), 2);
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(0), doc(1), 1.0);
        idx.insert(term(0), doc(2), 2.0);
        idx.finalize();
        let before: Vec<Posting> = idx.postings(term(0)).to_vec();
        idx.finalize();
        idx.finalize();
        assert_eq!(idx.postings(term(0)), before.as_slice());
    }

    #[test]
    fn insert_unfinalizes() {
        let mut idx = InvertedIndex::new();
        assert!(idx.is_finalized());
        idx.insert(term(0), doc(0), 1.0);
        assert!(!idx.is_finalized());
        idx.finalize();
        assert!(idx.is_finalized());
        idx.insert(term(0), doc(1), 2.0);
        assert!(!idx.is_finalized());
    }

    #[test]
    #[should_panic(expected = "sorted access before")]
    #[cfg(debug_assertions)]
    fn sorted_access_before_finalize_panics() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(0), doc(0), 1.0);
        let _ = idx.postings(term(0));
    }

    #[test]
    fn set_postings_replaces_one_term() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(0), doc(0), 1.0);
        idx.insert(term(1), doc(1), 2.0);
        idx.finalize();
        idx.set_postings(
            term(0),
            vec![
                Posting {
                    doc: doc(5),
                    score: 0.5,
                },
                Posting {
                    doc: doc(6),
                    score: 5.0,
                },
            ],
        );
        assert!(idx.is_finalized());
        let docs: Vec<DocId> = idx.postings(term(0)).iter().map(|p| p.doc).collect();
        assert_eq!(docs, vec![doc(6), doc(5)]);
        assert_eq!(idx.score(term(0), doc(0)), None);
        assert_eq!(idx.score(term(0), doc(5)), Some(0.5));
        // The other term is untouched.
        assert_eq!(idx.score(term(1), doc(1)), Some(2.0));
    }

    #[test]
    fn set_postings_empty_removes_term() {
        let mut idx = InvertedIndex::new();
        idx.insert(term(0), doc(0), 1.0);
        idx.finalize();
        idx.set_postings(term(0), Vec::new());
        assert_eq!(idx.n_terms(), 0);
        assert_eq!(idx.score(term(0), doc(0)), None);
    }
}
