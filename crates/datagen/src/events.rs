//! The Major Events List (Table 9 of the paper).
//!
//! The paper evaluates on 18 real events that took place during the Topix
//! crawl (September 2008 – July 2009), grouped into three loosely-defined
//! impact tiers: global (1–6), multi-country (7–12) and localized (13–18).
//! Each event carries the query a human annotator chose for it, a short
//! description, the country where the event originated (its epicenter), and
//! the approximate week (0-based, week 0 = first week of September 2008)
//! when it happened. The synthetic Topix corpus injects these events so that
//! Table 1, Table 3 and Figure 4 can be reproduced end to end.

/// Impact tier of an event, matching the three groups of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventTier {
    /// Events 1–6: significant global impact.
    Global,
    /// Events 7–12: reported in a significant number of countries.
    MultiCountry,
    /// Events 13–18: localized impact.
    Localized,
}

impl EventTier {
    /// A short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            EventTier::Global => "global",
            EventTier::MultiCountry => "multi-country",
            EventTier::Localized => "localized",
        }
    }
}

/// One entry of the Major Events List.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MajorEvent {
    /// 1-based event number, matching the paper's Table 1/Table 9 rows.
    pub id: usize,
    /// The query a user would submit to find the event (2nd column of
    /// Table 9).
    pub query: &'static str,
    /// Short description of the event (3rd column of Table 9).
    pub description: &'static str,
    /// ISO 3166-1 alpha-2 code of the country where the event originated.
    pub epicenter: &'static str,
    /// Impact tier.
    pub tier: EventTier,
    /// 0-based week (from the start of September 2008) when the event's
    /// burst starts.
    pub start_week: usize,
    /// Duration of the event's burst, in weeks.
    pub duration_weeks: usize,
}

/// The 18 events of the paper's Table 9.
pub fn major_events() -> &'static [MajorEvent] {
    MAJOR_EVENTS
}

/// Looks an event up by its 1-based id.
pub fn event_by_id(id: usize) -> Option<&'static MajorEvent> {
    MAJOR_EVENTS.iter().find(|e| e.id == id)
}

static MAJOR_EVENTS: &[MajorEvent] = &[
    MajorEvent {
        id: 1,
        query: "Obama",
        description: "Events regarding the actions of B. Obama, the new President of the USA since January of 2009.",
        epicenter: "US",
        tier: EventTier::Global,
        start_week: 9,
        duration_weeks: 32,
    },
    MajorEvent {
        id: 2,
        query: "financial crisis",
        description: "Events regarding the global financial crisis.",
        epicenter: "US",
        tier: EventTier::Global,
        start_week: 2,
        duration_weeks: 40,
    },
    MajorEvent {
        id: 3,
        query: "terrorists",
        description: "Events regarding terrorism.",
        epicenter: "IN",
        tier: EventTier::Global,
        start_week: 12,
        duration_weeks: 16,
    },
    MajorEvent {
        id: 4,
        query: "Jackson",
        description: "American entertainer Michael Jackson passes away.",
        epicenter: "US",
        tier: EventTier::Global,
        start_week: 42,
        duration_weeks: 5,
    },
    MajorEvent {
        id: 5,
        query: "swine",
        description: "Events regarding the 2009 swine flu pandemic.",
        epicenter: "MX",
        tier: EventTier::Global,
        start_week: 34,
        duration_weeks: 13,
    },
    MajorEvent {
        id: 6,
        query: "earthquake",
        description: "Events regarding earthquakes.",
        epicenter: "CR",
        tier: EventTier::Global,
        start_week: 18,
        duration_weeks: 6,
    },
    MajorEvent {
        id: 7,
        query: "gaza",
        description: "Events regarding the Israeli Palestinian conflict in the Gaza Strip.",
        epicenter: "IL",
        tier: EventTier::MultiCountry,
        start_week: 16,
        duration_weeks: 7,
    },
    MajorEvent {
        id: 8,
        query: "ceasefire",
        description: "Israel announces a unilateral ceasefire in the Gaza War.",
        epicenter: "IL",
        tier: EventTier::MultiCountry,
        start_week: 20,
        duration_weeks: 3,
    },
    MajorEvent {
        id: 9,
        query: "yemenia",
        description: "Yemenia Flight 626 crashes off the coast of Moroni, Comoros, killing all but one of the 153 passengers and crew.",
        epicenter: "KM",
        tier: EventTier::MultiCountry,
        start_week: 43,
        duration_weeks: 3,
    },
    MajorEvent {
        id: 10,
        query: "piracy",
        description: "Events regarding incidents of Piracy off the Somali coast.",
        epicenter: "SO",
        tier: EventTier::MultiCountry,
        start_week: 30,
        duration_weeks: 12,
    },
    MajorEvent {
        id: 11,
        query: "Air France",
        description: "Air France Flight 447 from Rio de Janeiro to Paris crashes into the Atlantic Ocean killing all 228 on board.",
        epicenter: "BR",
        tier: EventTier::MultiCountry,
        start_week: 39,
        duration_weeks: 4,
    },
    MajorEvent {
        id: 12,
        query: "bush fires",
        description: "Deadly bush fires in Australia kill 173, injure 500 more, and leave 7,500 homeless.",
        epicenter: "AU",
        tier: EventTier::MultiCountry,
        start_week: 22,
        duration_weeks: 4,
    },
    MajorEvent {
        id: 13,
        query: "Nkunda",
        description: "Congolese rebel leader L. Nkunda is captured by Rwandan forces.",
        epicenter: "CD",
        tier: EventTier::Localized,
        start_week: 20,
        duration_weeks: 3,
    },
    MajorEvent {
        id: 14,
        query: "Vieira",
        description: "The President of Guinea-Bissau, J. B. Vieira, is assassinated.",
        epicenter: "GW",
        tier: EventTier::Localized,
        start_week: 26,
        duration_weeks: 3,
    },
    MajorEvent {
        id: 15,
        query: "Tsvangirai",
        description: "M. Tsvangirai is sworn in as the new Prime Minister of Zimbabwe.",
        epicenter: "ZW",
        tier: EventTier::Localized,
        start_week: 23,
        duration_weeks: 3,
    },
    MajorEvent {
        id: 16,
        query: "Rajoelina",
        description: "Andry Rajoelina becomes the new President of Madagascar after a military coup d'etat.",
        epicenter: "MG",
        tier: EventTier::Localized,
        start_week: 28,
        duration_weeks: 4,
    },
    MajorEvent {
        id: 17,
        query: "Fujimori",
        description: "Former Peruvian Pres. Fujimori is sentenced to 25 years in prison for killings and kidnappings by security forces.",
        epicenter: "PE",
        tier: EventTier::Localized,
        start_week: 31,
        duration_weeks: 3,
    },
    MajorEvent {
        id: 18,
        query: "Zelaya",
        description: "The Supreme Court of Honduras orders the arrest and exile of President M. Zelaya.",
        epicenter: "HN",
        tier: EventTier::Localized,
        start_week: 43,
        duration_weeks: 4,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use stb_geo::countries::by_code;

    #[test]
    fn there_are_exactly_18_events() {
        assert_eq!(major_events().len(), 18);
    }

    #[test]
    fn ids_are_1_to_18_in_order() {
        for (i, e) in major_events().iter().enumerate() {
            assert_eq!(e.id, i + 1);
        }
    }

    #[test]
    fn tier_grouping_matches_the_paper() {
        for e in major_events() {
            let expected = if e.id <= 6 {
                EventTier::Global
            } else if e.id <= 12 {
                EventTier::MultiCountry
            } else {
                EventTier::Localized
            };
            assert_eq!(e.tier, expected, "event {}", e.id);
        }
    }

    #[test]
    fn epicenters_exist_in_the_gazetteer() {
        for e in major_events() {
            assert!(
                by_code(e.epicenter).is_some(),
                "missing country {}",
                e.epicenter
            );
        }
    }

    #[test]
    fn events_fit_the_48_week_timeline() {
        for e in major_events() {
            assert!(e.duration_weeks >= 1);
            assert!(
                e.start_week + e.duration_weeks <= 48,
                "event {} overruns the timeline",
                e.id
            );
        }
    }

    #[test]
    fn queries_are_unique_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for e in major_events() {
            assert!(!e.query.is_empty());
            assert!(seen.insert(e.query), "duplicate query {}", e.query);
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(event_by_id(6).unwrap().query, "earthquake");
        assert_eq!(event_by_id(15).unwrap().epicenter, "ZW");
        assert!(event_by_id(0).is_none());
        assert!(event_by_id(19).is_none());
    }

    #[test]
    fn tier_labels() {
        assert_eq!(EventTier::Global.label(), "global");
        assert_eq!(EventTier::MultiCountry.label(), "multi-country");
        assert_eq!(EventTier::Localized.label(), "localized");
    }
}
