//! Random distributions used by the data generators.
//!
//! Appendix B of the paper builds its artificial corpora from three
//! ingredients: exponential background frequencies ("the exponential
//! distribution is a good fit" for the typical frequency of terms), Weibull
//! burst profiles (whose PDF shape "emulates the progress of virtually every
//! type of event" — Figure 9), and a skewed choice of vocabulary, for which
//! we use a Zipf distribution. All three are implemented here on top of the
//! `rand` RNG traits, so every generator in this crate stays deterministic
//! under a fixed seed.

use rand::Rng;

/// Weibull distribution with shape `k` and scale `c` (Eq. 12 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Shape parameter `k` (> 0).
    pub shape: f64,
    /// Scale parameter `c` (> 0).
    pub scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape > 0.0 && scale > 0.0,
            "Weibull parameters must be positive"
        );
        Self { shape, scale }
    }

    /// Probability density at `x` (zero for negative `x`), exactly Eq. 12.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let (k, c) = (self.shape, self.scale);
        (k / c) * (x / c).powf(k - 1.0) * (-(x / c).powf(k)).exp()
    }

    /// The mode of the distribution (the `x` at which the PDF peaks):
    /// `c ((k-1)/k)^(1/k)` for `k > 1`, and 0 otherwise.
    pub fn mode(&self) -> f64 {
        if self.shape > 1.0 {
            self.scale * ((self.shape - 1.0) / self.shape).powf(1.0 / self.shape)
        } else {
            0.0
        }
    }

    /// The PDF value at the mode (the curve's peak height).
    pub fn peak_density(&self) -> f64 {
        // For k <= 1 the density is maximal as x -> 0+, where it diverges for
        // k < 1; clamp to the density at a small positive offset so profile
        // scaling stays finite.
        if self.shape > 1.0 {
            self.pdf(self.mode())
        } else {
            self.pdf(self.scale * 0.01).max(f64::MIN_POSITIVE)
        }
    }

    /// Draws a sample by inverse-CDF transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }

    /// The burst profile used when injecting a pattern: the PDF evaluated at
    /// the (1-based) position of each timestamp within a window of `len`
    /// timestamps, rescaled so the largest value equals `peak`.
    pub fn profile(&self, len: usize, peak: f64) -> Vec<f64> {
        if len == 0 {
            return Vec::new();
        }
        let raw: Vec<f64> = (1..=len).map(|x| self.pdf(x as f64)).collect();
        let max = raw.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
        raw.into_iter().map(|v| v / max * peak).collect()
    }
}

/// Exponential distribution with the given rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter (> 0).
    pub lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "rate must be positive");
        Self { lambda }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// Probability density at `x` (zero for negative `x`).
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.lambda * (-self.lambda * x).exp()
        }
    }

    /// Draws a sample by inverse-CDF transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -(1.0 - u).ln() / self.lambda
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has no ranks (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of rank `rank` (0-based).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        let prev = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - prev
    }

    /// Draws a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|v| v.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn weibull_pdf_matches_known_values() {
        // k=1 reduces to Exponential(1/c).
        let w = Weibull::new(1.0, 2.0);
        let e = Exponential::new(0.5);
        for x in [0.0, 0.5, 1.0, 3.0] {
            assert!((w.pdf(x) - e.pdf(x)).abs() < 1e-12);
        }
        assert_eq!(w.pdf(-1.0), 0.0);
    }

    #[test]
    fn weibull_pdf_integrates_to_one() {
        let w = Weibull::new(2.0, 3.0);
        let dx = 0.001;
        let integral: f64 = (0..40_000).map(|i| w.pdf(i as f64 * dx) * dx).sum();
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn weibull_mode_is_pdf_maximum() {
        let w = Weibull::new(3.0, 5.0);
        let mode = w.mode();
        let at_mode = w.pdf(mode);
        for x in [mode - 0.5, mode + 0.5, mode * 0.5, mode * 1.5] {
            assert!(w.pdf(x) <= at_mode + 1e-12);
        }
    }

    #[test]
    fn weibull_profile_peaks_at_requested_value() {
        let w = Weibull::new(2.0, 6.0);
        let profile = w.profile(15, 40.0);
        assert_eq!(profile.len(), 15);
        let max = profile.iter().copied().fold(f64::MIN, f64::max);
        assert!((max - 40.0).abs() < 1e-9);
        assert!(profile.iter().all(|&v| v >= 0.0));
        assert!(w.profile(0, 10.0).is_empty());
    }

    #[test]
    fn weibull_samples_are_positive_with_expected_spread(/* deterministic */) {
        let w = Weibull::new(2.0, 3.0);
        let mut r = rng();
        let samples: Vec<f64> = (0..5000).map(|_| w.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        // E[X] = c * Gamma(1 + 1/k) = 3 * Gamma(1.5) ≈ 2.659.
        assert!((mean - 2.659).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn exponential_samples_match_mean() {
        let e = Exponential::with_mean(4.0);
        let mut r = rng();
        let mean: f64 = (0..5000).map(|_| e.sample(&mut r)).sum::<f64>() / 5000.0;
        assert!((mean - 4.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn exponential_pdf_properties() {
        let e = Exponential::new(2.0);
        assert_eq!(e.pdf(-0.1), 0.0);
        assert!((e.pdf(0.0) - 2.0).abs() < 1e-12);
        assert!(e.pdf(1.0) < e.pdf(0.1));
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(50, 1.1);
        let total: f64 = (0..z.len()).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..z.len() {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
        assert_eq!(z.pmf(999), 0.0);
    }

    #[test]
    fn zipf_sampling_respects_skew() {
        let z = Zipf::new(100, 1.2);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        // The most popular rank must clearly dominate a middle rank.
        assert!(counts[0] > counts[50] * 5);
        // Every sample is a valid rank (implicitly checked by indexing).
    }

    #[test]
    fn zipf_uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn weibull_rejects_bad_parameters() {
        Weibull::new(0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_zero_ranks() {
        Zipf::new(0, 1.0);
    }
}
