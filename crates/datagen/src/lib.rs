//! Synthetic spatiotemporal data generation.
//!
//! The paper evaluates on (a) a proprietary crawl of Topix.com and (b)
//! artificial corpora produced by two generators, `distGen` and `randGen`
//! (Appendix B). This crate reproduces the generators exactly as described
//! and additionally provides a *synthetic Topix-like corpus* that stands in
//! for the unavailable crawl (see DESIGN.md for the substitution argument).
//!
//! * [`distributions`] — Weibull (the burst-shape profile of Appendix B,
//!   Figure 9), exponential (background frequencies), and Zipf (vocabulary)
//!   samplers built on top of `rand`.
//! * [`pattern_gen`] — `distGen` / `randGen`: inject ground-truth
//!   spatiotemporal patterns into background frequency streams.
//! * [`topix`] — the synthetic Topix-like document corpus: 181 country
//!   streams, 48 weekly snapshots, Zipf background vocabulary, and the 18
//!   Major Events of the paper's Table 9 with ground-truth document labels.
//! * [`events`] — the Major Events List (query, description, epicenter,
//!   impact tier).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod events;
pub mod pattern_gen;
pub mod topix;

pub use distributions::{Exponential, Weibull, Zipf};
pub use events::{major_events, EventTier, MajorEvent};
pub use pattern_gen::{
    GeneratorConfig, GroundTruthPattern, PatternGenerator, StreamSelection, SyntheticDataset,
};
pub use topix::{TopixConfig, TopixCorpus};
